#!/usr/bin/env python3
"""Benchmark the evaluation pipeline (scheduler + artifact cache).

Standalone wrapper around ``python -m repro bench`` for environments that
have the repo checked out but not installed::

    python tools/bench.py --quick --check          # CI smoke matrix
    python tools/bench.py                          # full AWFY + microservices
    python tools/bench.py --only Bounce Queens --strategy cu

Writes ``BENCH_pipeline.json`` (override with ``-o``); ``--check`` makes
the exit status assert a 100% warm-cache hit rate and cross-phase
determinism, which is what the CI ``bench-smoke`` job gates on.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["bench"] + sys.argv[1:]))
