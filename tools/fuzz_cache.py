#!/usr/bin/env python3
"""Fuzz the artifact cache's self-healing read path.

Each case stores a known payload, damages the on-disk entry the way
storage actually fails — bit flips, truncation, appended garbage, a
swapped payload, sidecar rot, or a deleted file half — and then reads it
back through a fresh (memo-free) :class:`ArtifactCache`.  Two things must
hold on every case:

1. the cache never raises and never returns a wrong value: the read is
   either the intact payload (damage the checksum cannot distinguish from
   a faithful write, e.g. an appended-noise case the CRC still covers) or
   a clean miss, and
2. after the miss, the entry is evicted and a recompute (``put`` +
   ``get``) round-trips the true value again — detect, evict, recompute.

Run:  python tools/fuzz_cache.py [--count 200] [--seed 1]

Used by the CI chaos job; exits non-zero on the first violation, printing
the offending case so it reproduces with ``--only <case>``.
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cache.store import ALL_KINDS, ArtifactCache  # noqa: E402


def make_payload(rng: random.Random):
    """A pickle-friendly value with some volume to flip bits in."""
    shape = rng.randrange(3)
    if shape == 0:
        return {f"k{i}": rng.random() for i in range(rng.randrange(4, 40))}
    if shape == 1:
        return [rng.randrange(1 << 30)
                for _ in range(rng.randrange(8, 120))]
    return {"blob": bytes(rng.randrange(256)
                          for _ in range(rng.randrange(64, 512))),
            "meta": {"n": rng.randrange(1000)}}


def damage(rng: random.Random, pkl: Path, meta: Path) -> str:
    """Apply one random damage shape; returns its name for reporting."""
    mode = rng.randrange(6)
    blob = bytearray(pkl.read_bytes())
    if mode == 0 and blob:
        for _ in range(rng.randrange(1, 8)):
            blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
        pkl.write_bytes(bytes(blob))
        return "bit flips"
    if mode == 1:
        pkl.write_bytes(bytes(blob[:rng.randrange(len(blob))]))
        return "truncation"
    if mode == 2:
        noise = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64)))
        pkl.write_bytes(bytes(blob) + noise)
        return "appended garbage"
    if mode == 3:
        pkl.write_bytes(bytes(rng.randrange(256)
                              for _ in range(rng.randrange(0, 256))))
        return "payload swap"
    if mode == 4:
        doc = json.loads(meta.read_text())
        doc["crc32"] = rng.randrange(1 << 32)
        meta.write_text(json.dumps(doc))
        return "sidecar rot"
    if rng.randrange(2):
        pkl.unlink()
        return "payload deleted"
    meta.unlink()
    return "sidecar deleted"


def run_case(case: int, seed: int, root: Path) -> str:
    """One fuzz case; returns an error string ('' = clean)."""
    rng = random.Random((seed << 20) | case)
    kind = rng.choice(ALL_KINDS)
    key = "".join(rng.choice("0123456789abcdef") for _ in range(64))
    value = make_payload(rng)

    writer = ArtifactCache(root, memo_entries=0)
    if not writer.put(kind, key, value):
        return "put refused a pickle-friendly payload"
    pkl = root / kind / key[:2] / f"{key}.pkl"
    meta = pkl.with_suffix(".json")
    shape = damage(rng, pkl, meta)

    reader = ArtifactCache(root, memo_entries=0)
    try:
        got = reader.get(kind, key)
    except Exception as exc:  # the one thing that must never happen
        return f"{shape}: get raised {type(exc).__name__}: {exc}"
    if got is not None and got != value:
        return f"{shape}: get returned a WRONG value"
    if got is None:
        # detect-evict-recompute: the damaged entry must be gone, and the
        # caller's recompute must restore a clean round-trip
        if reader.contains(kind, key) and shape != "sidecar deleted":
            return f"{shape}: damaged entry left in place after the miss"
        if not reader.put(kind, key, value):
            return f"{shape}: recompute put was refused"
        try:
            healed = reader.get(kind, key)
        except Exception as exc:
            return f"{shape}: post-heal get raised {type(exc).__name__}: {exc}"
        if healed != value:
            return f"{shape}: post-heal get did not round-trip"
    return ""


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--count", type=int, default=200)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--only", type=int, help="run a single case index")
    args = parser.parse_args()

    failures = 0
    for case in range(args.count):
        if args.only is not None and case != args.only:
            continue
        scratch = Path(tempfile.mkdtemp(prefix="repro-fuzz-cache-"))
        try:
            error = run_case(case, args.seed, scratch)
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        if error:
            failures += 1
            print(f"FAIL case {case} (seed {args.seed}): {error}")
    if failures:
        print(f"{failures}/{args.count} cases violated the healing contract")
        return 1
    print(f"ok: {args.count} cases, every damaged entry was detected, "
          "evicted, and recomputed (or served intact)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
