#!/usr/bin/env python3
"""Fuzz the salvage parser: feed seeded random/mutated byte strings through
``parse_trace_lenient`` and assert it never raises.

Run:  python tools/fuzz_salvage.py [--count 500] [--seed 1]

Used by the CI fuzz job; exits non-zero on the first crash, printing the
offending seed/case so the failure is reproducible with
``--count 1 --only <case>``.
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.profiling.tracebuf import ThreadTraceBuffer  # noqa: E402
from repro.profiling.tracefile import (  # noqa: E402
    MODE_DUMP_ON_FULL,
    VERSION_V1,
    VERSION_V2,
    encode_method_entry,
    encode_path,
    parse_trace_lenient,
)


def reference_trace(version: int) -> bytes:
    buffer = ThreadTraceBuffer(thread_id=1, mode=MODE_DUMP_ON_FULL,
                               capacity=96, format_version=version)
    for index in range(40):
        buffer.append(encode_method_entry(index))
        if index % 4 == 0:
            buffer.append(encode_path(index, 0, 2, [index, 0, index + 1]))
    buffer.terminate()
    return buffer.data


def make_case(rng: random.Random, bases) -> bytes:
    kind = rng.randrange(3)
    if kind == 0:  # pure noise
        return bytes(rng.randrange(256) for _ in range(rng.randrange(0, 600)))
    blob = bytearray(rng.choice(bases))
    for _ in range(rng.randrange(1, 10)):
        action = rng.randrange(4)
        if action == 0 and blob:
            blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
        elif action == 1 and blob:
            del blob[rng.randrange(len(blob)):]
        elif action == 2 and blob:
            start = rng.randrange(len(blob))
            del blob[start:start + rng.randrange(1, 12)]
        else:
            pos = rng.randrange(len(blob) + 1)
            noise = bytes(rng.randrange(256)
                          for _ in range(rng.randrange(1, 16)))
            blob[pos:pos] = noise
    return bytes(blob)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--count", type=int, default=500)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--only", type=int, help="run a single case index")
    args = parser.parse_args()

    bases = [reference_trace(VERSION_V1), reference_trace(VERSION_V2)]
    failures = 0
    recovered_total = 0
    for case in range(args.count):
        rng = random.Random((args.seed << 20) | case)
        blob = make_case(rng, bases)
        if args.only is not None and case != args.only:
            continue
        try:
            salvaged = parse_trace_lenient(blob)
        except Exception as exc:  # the one thing that must never happen
            failures += 1
            print(f"FAIL case {case} (seed {args.seed}, {len(blob)} bytes): "
                  f"{type(exc).__name__}: {exc}")
            continue
        assert salvaged.report.records_recovered == len(salvaged.trace.records)
        recovered_total += salvaged.report.records_recovered
    if failures:
        print(f"{failures}/{args.count} cases raised")
        return 1
    print(f"ok: {args.count} cases, 0 crashes, "
          f"{recovered_total} records salvaged in total")
    return 0


if __name__ == "__main__":
    sys.exit(main())
