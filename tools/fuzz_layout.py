#!/usr/bin/env python3
"""Fuzz the layout invariant checker with seeded random mutations.

Builds one ordered optimized binary, then for each case snapshots the
layout, applies a random :class:`LayoutMutationPlan`, and asserts that
``verify_layout`` flags at least one of the plan's expected violation
codes; the layout is then restored and must verify clean again.

Run:  python tools/fuzz_layout.py [--count 200] [--seed 1]

Used by the CI ``verify-layouts`` job; exits non-zero on the first miss,
printing the offending case seed so it is reproducible with
``--count 1 --seed <case-seed>``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.eval.pipeline import STRATEGY_COMBINED, WorkloadPipeline  # noqa: E402
from repro.validation import (  # noqa: E402
    LayoutMutationPlan,
    LayoutMutator,
    restore_layout,
    snapshot_layout,
    verify_layout,
)
from repro.workloads.awfy.suite import awfy_workload  # noqa: E402


def build_subject():
    pipeline = WorkloadPipeline(awfy_workload("Bounce", ballast_subsystems=4))
    outcome = pipeline.profile(seed=1)
    binary = pipeline.build_optimized(outcome.profiles, STRATEGY_COMBINED,
                                      seed=1)
    report = verify_layout(binary)
    if not report.ok:
        print("pristine build failed verification?!")
        print(report.summary())
        sys.exit(2)
    return binary


def run_case(binary, case_seed: int) -> str:
    """Returns "caught" | "skipped", or exits on a checker miss."""
    plan = LayoutMutationPlan.random(case_seed,
                                     n_mutations=1 + case_seed % 3)
    saved = snapshot_layout(binary)
    mutator = LayoutMutator(plan)
    log = mutator.mutate(binary)
    applied = [line for line in log if "skipped:" not in line]
    report = verify_layout(binary)
    try:
        if not applied:
            if not report.ok:
                fail(case_seed, plan, log, report,
                     "all mutations skipped but verification failed")
            return "skipped"
        if report.ok:
            fail(case_seed, plan, log, report,
                 "mutated layout passed verification")
        expected = plan.expected_codes()
        # a multi-mutation plan may have some members skipped; require a hit
        # from the union of the applied kinds' codes
        if not any(report.has(code) for code in expected):
            fail(case_seed, plan, log, report,
                 f"no expected code hit (expected any of {expected})")
        return "caught"
    finally:
        restore_layout(binary, saved)
        clean = verify_layout(binary)
        if not clean.ok:
            print(f"case {case_seed}: restore_layout left damage!")
            print(clean.summary())
            sys.exit(2)


def fail(case_seed, plan, log, report, why: str) -> None:
    print(f"case {case_seed}: CHECKER MISS — {why}")
    print(f"  plan: {plan.describe()}")
    for line in log:
        print(f"  applied: {line}")
    print("  " + report.summary().replace("\n", "\n  "))
    print(f"reproduce with: python tools/fuzz_layout.py --count 1 "
          f"--seed {case_seed}")
    sys.exit(1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=200)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    binary = build_subject()
    caught = skipped = 0
    for case in range(args.count):
        outcome = run_case(binary, args.seed + case)
        if outcome == "caught":
            caught += 1
        else:
            skipped += 1
    print(f"fuzzed {args.count} layout mutation plans: "
          f"{caught} caught, {skipped} degenerate-skipped, 0 missed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
