"""Instrumentation planning for the profiling build.

The instrumented binary carries extra code: a method-entry probe, one
path-increment probe per basic block, and an identifier-append probe per
heap-access site (paper Sec. 3/6).  Two artifacts come out of planning:

* an :class:`InstrumentationManifest` — the static side tables (method IDs,
  CFGs with path numbering, per-block heap-access sites, CU IDs) that the
  post-processing framework needs to decode raw traces; in the real system
  this information lives in the compiler and the binary's metadata;
* a **size function** that inflates method sizes by the probe bytes, which
  is what makes the instrumented build's inliner diverge from the regular
  and optimized builds (Sec. 2: "instrumentation code may make the inliner
  behave differently").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..minijava.bytecode import CompiledMethod, Program
from .cfg import MethodCfg, build_cfg

#: Simulated probe sizes in bytes.
METHOD_ENTRY_PROBE_BYTES = 12
BLOCK_PROBE_BYTES = 6
HEAP_ACCESS_PROBE_BYTES = 8
CU_ENTRY_PROBE_BYTES = 10  # lives in the CU prologue


@dataclass
class InstrumentationManifest:
    """Static decode tables for one instrumented build."""

    method_ids: Dict[str, int] = field(default_factory=dict)  # signature -> id
    method_signatures: List[str] = field(default_factory=list)  # id -> signature
    cfgs: Dict[str, MethodCfg] = field(default_factory=dict)  # signature -> cfg
    cu_ids: Dict[str, int] = field(default_factory=dict)  # cu root signature -> id
    cu_signatures: List[str] = field(default_factory=list)  # id -> root signature
    #: snapshot object index -> per-strategy 64-bit IDs (the identifiers
    #: "associated to each object instance" stored in the instrumented image)
    object_ids: Dict[int, Dict[str, int]] = field(default_factory=dict)

    def method_id(self, signature: str) -> int:
        return self.method_ids[signature]

    def cfg_for_id(self, method_id: int) -> MethodCfg:
        return self.cfgs[self.method_signatures[method_id]]

    def register_cus(self, root_signatures: List[str]) -> None:
        for signature in root_signatures:
            if signature not in self.cu_ids:
                self.cu_ids[signature] = len(self.cu_signatures)
                self.cu_signatures.append(signature)


def plan_instrumentation(
    program: Program, methods: List[CompiledMethod]
) -> InstrumentationManifest:
    """Build the manifest for the given (reachable) methods."""
    manifest = InstrumentationManifest()
    for method in sorted(methods, key=lambda m: m.signature):
        if method.signature in manifest.method_ids:
            continue
        manifest.method_ids[method.signature] = len(manifest.method_signatures)
        manifest.method_signatures.append(method.signature)
        manifest.cfgs[method.signature] = build_cfg(method)
    return manifest


def instrumented_size_fn(
    manifest: InstrumentationManifest,
) -> Callable[[CompiledMethod], int]:
    """Machine-code size including probe bytes, for the instrumented build."""

    cache: Dict[str, int] = {}

    def size_of(method: CompiledMethod) -> int:
        signature = method.signature
        cached = cache.get(signature)
        if cached is not None:
            return cached
        base = method.code_size()
        cfg = manifest.cfgs.get(signature)
        if cfg is None:
            cfg = build_cfg(method)
            manifest.cfgs[signature] = cfg
        size = (
            base
            + METHOD_ENTRY_PROBE_BYTES
            + BLOCK_PROBE_BYTES * cfg.block_count
            + HEAP_ACCESS_PROBE_BYTES * cfg.heap_site_count
        )
        cache[signature] = size
        return size

    return size_of


def probe_event_estimate(cfg: MethodCfg) -> int:
    """Rough per-invocation probe count (diagnostics/overhead model)."""
    return 1 + cfg.block_count + cfg.heap_site_count
