"""Control-flow graphs and Ball–Larus path numbering with path cutting.

The tracing profiler (paper Sec. 6.1) builds on the IR-level path-profiling
technique of Basso et al. [7]: every acyclic path gets a unique ID, and the
runtime stores *executed path IDs* instead of individual events.  The
path-cutting optimization bounds the number of paths so the technique stays
practical.

We implement the same machinery over MiniJava bytecode:

* **Blocks** — leaders are the method entry, branch targets, and the
  instructions following branches and calls; calls terminate blocks so that
  callee trace records nest cleanly between the caller's path records.
* **Cut edges** — back edges (loops) and call fall-through edges always cut;
  additional edges are cut when the path count would exceed
  ``MAX_PATHS_PER_REGION`` (path cutting).
* **Numbering** — classic Ball–Larus: over the acyclic non-cut subgraph,
  ``num_paths(v)`` counts maximal paths from ``v``; each ordered out-edge
  gets an increment so every maximal path from a region start has a unique
  accumulated value.  Cut edges count as paths of length 1 (edge to a
  virtual exit).
* **Decoding** — ``(start block, value)`` deterministically replays the
  block sequence, which yields the per-path event list (heap-access sites).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..minijava.bytecode import (
    BRANCH_OPS,
    CALL_OPS,
    HEAP_ACCESS_OPS,
    RETURN_OPS,
    CompiledMethod,
)

#: Path-cutting threshold: max distinct paths per region (paper: keeps the
#: path table from growing exponentially).
MAX_PATHS_PER_REGION = 1 << 16


@dataclass
class Edge:
    """A CFG edge with its Ball–Larus increment."""

    source: int
    target: int
    cut: bool = False
    increment: int = 0


@dataclass
class Block:
    """A basic block: instruction range [start, end) plus derived data."""

    index: int
    start: int
    end: int
    heap_access_pcs: List[int] = field(default_factory=list)

    @property
    def num_heap_accesses(self) -> int:
        return len(self.heap_access_pcs)


class MethodCfg:
    """CFG plus path-numbering tables for one method."""

    def __init__(self, method: CompiledMethod,
                 max_paths: int = MAX_PATHS_PER_REGION) -> None:
        self.method = method
        self.max_paths = max_paths
        self.blocks: List[Block] = []
        self.block_of_pc: Dict[int, int] = {}  # leader pc -> block index
        self.edges: Dict[Tuple[int, int], Edge] = {}
        self.out_edges: Dict[int, List[Edge]] = {}
        self.num_paths: Dict[int, int] = {}
        self.leaders: frozenset = frozenset()
        self._build()
        self._number_paths()

    # -- construction ---------------------------------------------------------

    def _build(self) -> None:
        code = self.method.code
        leaders = {0}
        for pc, instr in enumerate(code):
            if instr.op in BRANCH_OPS:
                leaders.add(instr.args[0])
                if pc + 1 < len(code):
                    leaders.add(pc + 1)
            elif instr.op in CALL_OPS or instr.op == "BUILTIN" or instr.op in RETURN_OPS:
                if pc + 1 < len(code):
                    leaders.add(pc + 1)
        ordered = sorted(leaders)
        self.leaders = frozenset(ordered)
        for index, start in enumerate(ordered):
            end = ordered[index + 1] if index + 1 < len(ordered) else len(code)
            block = Block(index=index, start=start, end=end)
            for pc in range(start, end):
                if code[pc].op in HEAP_ACCESS_OPS:
                    block.heap_access_pcs.append(pc)
            self.blocks.append(block)
            self.block_of_pc[start] = index

        for block in self.blocks:
            self._add_block_edges(block)

    def _add_block_edges(self, block: Block) -> None:
        code = self.method.code
        if block.end == block.start:
            return
        last = code[block.end - 1]
        targets: List[Tuple[int, bool]] = []  # (target block, forced cut)
        if last.op == "JUMP":
            targets.append((self.block_of_pc[last.args[0]], False))
        elif last.op in ("JMP_FALSE", "JMP_TRUE"):
            if block.end < len(code):
                targets.append((self.block_of_pc[block.end], False))
            targets.append((self.block_of_pc[last.args[0]], False))
        elif last.op in RETURN_OPS:
            return  # no out edges
        elif last.op in CALL_OPS:
            # Call fall-through: always a cut edge so callee records nest.
            if block.end < len(code):
                targets.append((self.block_of_pc[block.end], True))
        elif last.op == "BUILTIN":
            # Builtins do not push frames, so no nesting: plain fall-through.
            if block.end < len(code):
                targets.append((self.block_of_pc[block.end], False))
        else:
            if block.end < len(code):
                targets.append((self.block_of_pc[block.end], False))

        seen = set()
        for target, forced_cut in targets:
            if target in seen:
                continue  # both branch arms reach the same block
            seen.add(target)
            back_edge = self.blocks[target].start <= block.start
            edge = Edge(
                source=block.index,
                target=target,
                cut=forced_cut or back_edge,
            )
            self.edges[(block.index, target)] = edge
            self.out_edges.setdefault(block.index, []).append(edge)

    # -- Ball–Larus numbering ----------------------------------------------------

    def _number_paths(self) -> None:
        while True:
            overflow = self._compute_numbering()
            if overflow is None:
                return
            overflow.cut = True  # path cutting: split the hottest region

    def _compute_numbering(self) -> Optional[Edge]:
        """Compute num_paths + increments; return an edge to cut on overflow."""
        num_paths: Dict[int, int] = {}
        # Process blocks in reverse start order (non-cut edges point forward).
        for block in reversed(self.blocks):
            edges = self.out_edges.get(block.index, [])
            if not edges:
                num_paths[block.index] = 1
                continue
            total = 0
            for edge in edges:
                edge.increment = total
                if edge.cut:
                    total += 1
                else:
                    total += num_paths[edge.target]
            num_paths[block.index] = max(total, 1)
            if total > self.max_paths:
                # Cut the non-cut out-edge feeding the largest subtree.
                candidates = [e for e in edges if not e.cut]
                if candidates:
                    return max(candidates, key=lambda e: num_paths[e.target])
        self.num_paths = num_paths
        return None

    # -- runtime/decoding API ------------------------------------------------------

    def edge(self, source_block: int, target_block: int) -> Optional[Edge]:
        return self.edges.get((source_block, target_block))

    def decode_path(self, start_block: int, value: int) -> List[int]:
        """Replay a path value into the sequence of executed block indices."""
        blocks = [start_block]
        current = start_block
        remaining = value
        while True:
            edges = self.out_edges.get(current, [])
            if not edges:
                if remaining != 0:
                    raise ValueError(
                        f"{self.method.signature}: leftover path value {remaining} "
                        f"at terminal block {current}"
                    )
                return blocks
            chosen: Optional[Edge] = None
            for edge in edges:
                if edge.increment <= remaining and (
                    chosen is None or edge.increment > chosen.increment
                ):
                    chosen = edge
            if chosen is None:
                raise ValueError(
                    f"{self.method.signature}: cannot decode value {remaining} "
                    f"at block {current}"
                )
            remaining -= chosen.increment
            if chosen.cut:
                if remaining != 0:
                    raise ValueError(
                        f"{self.method.signature}: leftover path value {remaining} "
                        f"after cut edge {chosen.source}->{chosen.target}"
                    )
                return blocks
            current = chosen.target
            blocks.append(current)

    def heap_sites_on_path(self, start_block: int, value: int) -> List[int]:
        """Heap-access instruction pcs executed by a path, in order."""
        pcs: List[int] = []
        for block_index in self.decode_path(start_block, value):
            pcs.extend(self.blocks[block_index].heap_access_pcs)
        return pcs

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    @property
    def heap_site_count(self) -> int:
        return sum(b.num_heap_accesses for b in self.blocks)

    def max_region_paths(self) -> int:
        """Largest per-region path count (diagnostic for the cutting ablation)."""
        return max(self.num_paths.values(), default=1)


def build_cfg(method: CompiledMethod,
              max_paths: int = MAX_PATHS_PER_REGION) -> MethodCfg:
    """Build the CFG + path numbering for ``method``.

    ``max_paths`` is the path-cutting threshold; pass a huge value to study
    the uncut path-count blowup (ablation in DESIGN.md).
    """
    return MethodCfg(method, max_paths=max_paths)
