"""Per-thread trace buffers with the paper's two dump modes (Sec. 6.1).

* ``MODE_DUMP_ON_FULL`` — records accumulate in a thread-local buffer that
  is flushed when full and on thread termination.  An *abnormal* termination
  (SIGKILL; the microservice workloads are killed after the first response)
  loses whatever is still buffered.
* ``MODE_MMAP`` — the buffer is memory-mapped into the trace file; the
  kernel persists every written record, so abnormal termination loses
  nothing.  We simulate this by writing through on every append.

Buffers write trace-format **v2** by default: every flush (every record in
MMAP mode) becomes a framed, CRC32-checksummed chunk, so a trace damaged by
an abnormal termination or storage fault stays salvageable chunk-by-chunk
(see :mod:`repro.profiling.tracefile`).  ``format_version=1`` restores the
bare-record v1 stream.

The buffers also count events and flushed bytes, which feeds the profiling
overhead model (Sec. 7.4).

Fault injection
---------------

Every failure mode the robustness test-suite exercises enters through one
injectable hook object (see :class:`repro.robustness.faults.FaultInjector`)
with three optional methods, all duck-typed so this module stays free of
robustness-package imports:

* ``on_record(buffer, record) -> bytes | None`` — observe/replace/drop one
  encoded record before it is buffered (mid-run kills are triggered here);
* ``on_flush(buffer, payload) -> bytes | None`` — observe/replace/drop one
  flush payload before it is framed and written;
* ``on_emit(buffer, data) -> bytes`` — transform the final file bytes as
  read back (truncation, bit flips, partial header writes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .tracefile import (
    MODE_DUMP_ON_FULL,
    MODE_MMAP,
    TRACE_VERSION,
    VERSION_V1,
    VERSION_V2,
    encode_chunk,
    encode_header,
)

DEFAULT_BUFFER_BYTES = 64 * 1024


@dataclass
class TraceStats:
    """Accounting used by the overhead model."""

    records: int = 0
    bytes_written: int = 0
    dumps: int = 0
    lost_records: int = 0
    #: records larger than the buffer capacity, written through directly
    oversized_records: int = 0
    #: records discarded by an injected fault (dropped flushes etc.)
    faulted_records: int = 0

    def add(self, other: "TraceStats") -> None:
        self.records += other.records
        self.bytes_written += other.bytes_written
        self.dumps += other.dumps
        self.lost_records += other.lost_records
        self.oversized_records += other.oversized_records
        self.faulted_records += other.faulted_records


class ThreadTraceBuffer:
    """One thread's trace buffer backed by an in-memory 'file'."""

    def __init__(self, thread_id: int, mode: int,
                 capacity: int = DEFAULT_BUFFER_BYTES,
                 format_version: int = TRACE_VERSION,
                 fault_hook: Optional[object] = None) -> None:
        if mode not in (MODE_DUMP_ON_FULL, MODE_MMAP):
            raise ValueError(f"unknown dump mode {mode}")
        if format_version not in (VERSION_V1, VERSION_V2):
            raise ValueError(f"unknown trace format version {format_version}")
        self.thread_id = thread_id
        self.mode = mode
        self.capacity = capacity
        self.format_version = format_version
        self.fault_hook = fault_hook
        self.stats = TraceStats()
        self._file = bytearray(encode_header(mode, thread_id, format_version))
        self._pending: List[bytes] = []
        self._pending_bytes = 0
        self._killed = False

    def append(self, record: bytes) -> None:
        """Store one encoded record."""
        if self._killed:
            return
        hook = self.fault_hook
        if hook is not None and hasattr(hook, "on_record"):
            record = hook.on_record(self, record)
            if record is None or self._killed:
                # The hook swallowed the record or killed the session
                # (mid-run kill at record N) before it was buffered.
                return
        self.stats.records += 1
        if self.mode == MODE_MMAP:
            self._write(record)
            return
        if len(record) > self.capacity:
            # An oversized record can never fit the buffer; queueing it
            # would leave the pending buffer permanently over the limit.
            # Write it through directly instead (and count it).
            self.flush()
            self.stats.oversized_records += 1
            self.stats.dumps += 1
            self._write(record)
            return
        if self._pending_bytes + len(record) > self.capacity:
            self.flush()
        self._pending.append(record)
        self._pending_bytes += len(record)

    def flush(self) -> None:
        """Dump the pending buffer to the file (DUMP_ON_FULL mode)."""
        if not self._pending:
            return
        payload = b"".join(self._pending)
        pending_count = len(self._pending)
        self._pending.clear()
        self._pending_bytes = 0
        hook = self.fault_hook
        if hook is not None and hasattr(hook, "on_flush"):
            payload = hook.on_flush(self, payload)
            if payload is None:
                # Injected fault: this flush never reached the file.
                self.stats.faulted_records += pending_count
                self.stats.lost_records += pending_count
                return
        self.stats.dumps += 1
        self._write(payload)

    def _write(self, payload: bytes) -> None:
        """Persist one payload, framed when writing format v2."""
        if self.format_version == VERSION_V2:
            payload = encode_chunk(payload)
        self._file += payload
        self.stats.bytes_written += len(payload)

    def terminate(self) -> None:
        """Normal thread termination: flush remaining records."""
        self.flush()

    def kill(self) -> None:
        """Abnormal termination (SIGKILL): buffered records are lost.

        In MMAP mode everything already reached the file, so nothing is
        lost — the reason the paper uses memory-mapped buffers for the
        microservice workloads.
        """
        self.stats.lost_records += len(self._pending)
        self._pending.clear()
        self._pending_bytes = 0
        self._killed = True

    @property
    def pending_records(self) -> int:
        """Records currently buffered (lost if a kill lands now)."""
        return len(self._pending)

    @property
    def data(self) -> bytes:
        """The trace-file contents as persisted so far.

        An ``on_emit`` fault hook transforms the bytes here — the injection
        point for storage-level damage (truncation, bit flips, partial
        header writes) that happens *after* the records were written.
        """
        data = bytes(self._file)
        hook = self.fault_hook
        if hook is not None and hasattr(hook, "on_emit"):
            data = hook.on_emit(self, data)
        return data


class TraceSession:
    """All per-thread buffers of one profiling run."""

    def __init__(self, mode: int = MODE_DUMP_ON_FULL,
                 capacity: int = DEFAULT_BUFFER_BYTES,
                 format_version: int = TRACE_VERSION,
                 fault_hook: Optional[object] = None) -> None:
        self.mode = mode
        self.capacity = capacity
        self.format_version = format_version
        self.fault_hook = fault_hook
        self._buffers: Dict[int, ThreadTraceBuffer] = {}
        if fault_hook is not None and hasattr(fault_hook, "attach"):
            fault_hook.attach(self)

    def buffer_for(self, thread_id: int) -> ThreadTraceBuffer:
        buffer = self._buffers.get(thread_id)
        if buffer is None:
            buffer = ThreadTraceBuffer(thread_id, self.mode, self.capacity,
                                       format_version=self.format_version,
                                       fault_hook=self.fault_hook)
            self._buffers[thread_id] = buffer
        return buffer

    def terminate_all(self) -> None:
        for buffer in self._buffers.values():
            buffer.terminate()

    def kill_all(self) -> None:
        for buffer in self._buffers.values():
            buffer.kill()

    def trace_files(self) -> List[bytes]:
        """Per-thread trace files, in thread-creation order."""
        return [self._buffers[tid].data for tid in sorted(self._buffers)]

    def total_stats(self) -> TraceStats:
        total = TraceStats()
        for buffer in self._buffers.values():
            total.add(buffer.stats)
        return total
