"""Per-thread trace buffers with the paper's two dump modes (Sec. 6.1).

* ``MODE_DUMP_ON_FULL`` — records accumulate in a thread-local buffer that
  is flushed when full and on thread termination.  An *abnormal* termination
  (SIGKILL; the microservice workloads are killed after the first response)
  loses whatever is still buffered.
* ``MODE_MMAP`` — the buffer is memory-mapped into the trace file; the
  kernel persists every written record, so abnormal termination loses
  nothing.  We simulate this by writing through on every append.

The buffers also count events and flushed bytes, which feeds the profiling
overhead model (Sec. 7.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .tracefile import MODE_DUMP_ON_FULL, MODE_MMAP, encode_header

DEFAULT_BUFFER_BYTES = 64 * 1024


@dataclass
class TraceStats:
    """Accounting used by the overhead model."""

    records: int = 0
    bytes_written: int = 0
    dumps: int = 0
    lost_records: int = 0


class ThreadTraceBuffer:
    """One thread's trace buffer backed by an in-memory 'file'."""

    def __init__(self, thread_id: int, mode: int,
                 capacity: int = DEFAULT_BUFFER_BYTES) -> None:
        if mode not in (MODE_DUMP_ON_FULL, MODE_MMAP):
            raise ValueError(f"unknown dump mode {mode}")
        self.thread_id = thread_id
        self.mode = mode
        self.capacity = capacity
        self.stats = TraceStats()
        self._file = bytearray(encode_header(mode, thread_id))
        self._pending: List[bytes] = []
        self._pending_bytes = 0
        self._killed = False

    def append(self, record: bytes) -> None:
        """Store one encoded record."""
        if self._killed:
            return
        self.stats.records += 1
        if self.mode == MODE_MMAP:
            self._file += record
            self.stats.bytes_written += len(record)
            return
        if self._pending_bytes + len(record) > self.capacity:
            self.flush()
        self._pending.append(record)
        self._pending_bytes += len(record)

    def flush(self) -> None:
        """Dump the pending buffer to the file (DUMP_ON_FULL mode)."""
        if not self._pending:
            return
        chunk = b"".join(self._pending)
        self._file += chunk
        self.stats.bytes_written += len(chunk)
        self.stats.dumps += 1
        self._pending.clear()
        self._pending_bytes = 0

    def terminate(self) -> None:
        """Normal thread termination: flush remaining records."""
        self.flush()

    def kill(self) -> None:
        """Abnormal termination (SIGKILL): buffered records are lost.

        In MMAP mode everything already reached the file, so nothing is
        lost — the reason the paper uses memory-mapped buffers for the
        microservice workloads.
        """
        self.stats.lost_records += len(self._pending)
        self._pending.clear()
        self._pending_bytes = 0
        self._killed = True

    @property
    def data(self) -> bytes:
        """The trace-file contents as persisted so far."""
        return bytes(self._file)


class TraceSession:
    """All per-thread buffers of one profiling run."""

    def __init__(self, mode: int = MODE_DUMP_ON_FULL,
                 capacity: int = DEFAULT_BUFFER_BYTES) -> None:
        self.mode = mode
        self.capacity = capacity
        self._buffers: Dict[int, ThreadTraceBuffer] = {}

    def buffer_for(self, thread_id: int) -> ThreadTraceBuffer:
        buffer = self._buffers.get(thread_id)
        if buffer is None:
            buffer = ThreadTraceBuffer(thread_id, self.mode, self.capacity)
            self._buffers[thread_id] = buffer
        return buffer

    def terminate_all(self) -> None:
        for buffer in self._buffers.values():
            buffer.terminate()

    def kill_all(self) -> None:
        for buffer in self._buffers.values():
            buffer.kill()

    def trace_files(self) -> List[bytes]:
        """Per-thread trace files, in thread-creation order."""
        return [self._buffers[tid].data for tid in sorted(self._buffers)]

    def total_stats(self) -> TraceStats:
        total = TraceStats()
        for buffer in self._buffers.values():
            total.records += buffer.stats.records
            total.bytes_written += buffer.stats.bytes_written
            total.dumps += buffer.stats.dumps
            total.lost_records += buffer.stats.lost_records
        return total
