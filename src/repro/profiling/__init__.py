"""Tracing profiler: CFGs, Ball-Larus paths, trace buffers, runtime tracer."""

from .cfg import MethodCfg, build_cfg
from .instrument import InstrumentationManifest, instrumented_size_fn, plan_instrumentation
from .tracebuf import ThreadTraceBuffer, TraceSession
from .tracefile import (
    MODE_DUMP_ON_FULL,
    MODE_MMAP,
    SalvagedTrace,
    SalvageReport,
    TraceDecodeError,
    parse_trace,
    parse_trace_lenient,
)
from .tracer import PathTracer

__all__ = [
    "MethodCfg", "build_cfg",
    "InstrumentationManifest", "instrumented_size_fn", "plan_instrumentation",
    "ThreadTraceBuffer", "TraceSession",
    "MODE_DUMP_ON_FULL", "MODE_MMAP", "parse_trace", "parse_trace_lenient",
    "SalvagedTrace", "SalvageReport", "TraceDecodeError",
    "PathTracer",
]
