"""Binary trace-file format (one file per thread; paper Sec. 6.1).

Two on-disk layouts share the same header::

    magic "NITR" | version u8 | mode u8 | thread_id uvarint | body...

* **v1** — the body is a bare record stream.  A single corrupt byte poisons
  everything after it, and a SIGKILL landing mid-flush leaves a file that a
  strict parser rejects wholesale.
* **v2** — the body is a sequence of *framed chunks*, one per buffer flush
  (one per record in write-through/MMAP mode)::

      marker 0xC5 | payload_len uvarint | crc32 u32 LE | payload (records)

  Framing localizes damage: a corrupt or torn chunk is skipped and the
  parser resynchronizes on the next marker, so a salvage pass recovers every
  intact flush around it.

Record kinds (identical in both versions)::

    0x01 METHOD_ENTRY  method_id
    0x02 CU_ENTRY      cu_id
    0x03 PATH          method_id start_block path_value n_ids id*n

``PATH`` records carry the object identifiers accessed along the path.  The
count is redundant with the decoded path (the paper stores only the IDs and
derives the count from the path); we keep it in the stream and *verify* it
against the decode, which doubles as an integrity check of the path
machinery.

:func:`parse_trace` is the strict parser: any structural damage raises
:class:`TraceDecodeError`.  :func:`parse_trace_lenient` never raises — it
recovers the longest valid record prefix (v1) or every verifiable chunk
(v2) and returns a :class:`SalvageReport` describing what was dropped.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple, Union

from ..util.varint import VarintDecodeError, decode_uvarint, encode_uvarint

MAGIC = b"NITR"
VERSION_V1 = 1
VERSION_V2 = 2
#: version written by :class:`repro.profiling.tracebuf.ThreadTraceBuffer`
TRACE_VERSION = VERSION_V2
#: kept for backward compatibility: the bare-record header version
VERSION = VERSION_V1

#: minimum bytes before the thread-id varint can even start
HEADER_FIXED_BYTES = 6

#: start-of-chunk marker (v2); deliberately not a valid record tag
CHUNK_MARKER = 0xC5
#: marker + 4 CRC bytes + at least 1 length byte
CHUNK_MIN_OVERHEAD = 6

MODE_DUMP_ON_FULL = 1
MODE_MMAP = 2

TAG_METHOD_ENTRY = 0x01
TAG_CU_ENTRY = 0x02
TAG_PATH = 0x03


class TraceDecodeError(ValueError):
    """A trace file is structurally invalid (truncated, corrupt, or it
    contradicts the instrumentation manifest)."""


@dataclass(frozen=True)
class MethodEntryRecord:
    method_id: int


@dataclass(frozen=True)
class CuEntryRecord:
    cu_id: int


@dataclass(frozen=True)
class PathRecord:
    method_id: int
    start_block: int
    path_value: int
    object_ids: Tuple[int, ...]


TraceRecord = Union[MethodEntryRecord, CuEntryRecord, PathRecord]


def encode_method_entry(method_id: int) -> bytes:
    return bytes([TAG_METHOD_ENTRY]) + encode_uvarint(method_id)


def encode_cu_entry(cu_id: int) -> bytes:
    return bytes([TAG_CU_ENTRY]) + encode_uvarint(cu_id)


def encode_path(method_id: int, start_block: int, path_value: int,
                object_ids: List[int]) -> bytes:
    out = bytearray([TAG_PATH])
    out += encode_uvarint(method_id)
    out += encode_uvarint(start_block)
    out += encode_uvarint(path_value)
    out += encode_uvarint(len(object_ids))
    for object_id in object_ids:
        out += encode_uvarint(object_id)
    return bytes(out)


def encode_header(mode: int, thread_id: int, version: int = VERSION_V1) -> bytes:
    return MAGIC + bytes([version, mode]) + encode_uvarint(thread_id)


def encode_chunk(payload: bytes) -> bytes:
    """Frame one flush payload as a v2 chunk (marker, length, CRC32)."""
    out = bytearray([CHUNK_MARKER])
    out += encode_uvarint(len(payload))
    out += zlib.crc32(payload).to_bytes(4, "little")
    out += payload
    return bytes(out)


@dataclass
class TraceFile:
    """A parsed trace file."""

    mode: int
    thread_id: int
    records: List[TraceRecord]
    version: int = VERSION_V1


# ---------------------------------------------------------------------------
# strict parsing
# ---------------------------------------------------------------------------


def _parse_header(data: bytes) -> Tuple[int, int, int, int]:
    """Validate the header; return ``(version, mode, thread_id, body_pos)``."""
    if len(data) < HEADER_FIXED_BYTES:
        raise TraceDecodeError(
            f"truncated trace header: {len(data)} bytes, need at least "
            f"{HEADER_FIXED_BYTES}"
        )
    if data[:4] != MAGIC:
        raise TraceDecodeError("bad trace magic")
    version = data[4]
    if version not in (VERSION_V1, VERSION_V2):
        raise TraceDecodeError(f"unsupported trace version {version}")
    mode = data[5]
    try:
        thread_id, pos = decode_uvarint(data, HEADER_FIXED_BYTES)
    except VarintDecodeError as exc:
        raise TraceDecodeError(f"truncated trace header: {exc}") from exc
    return version, mode, thread_id, pos


def parse_trace(data: bytes) -> TraceFile:
    """Parse a complete per-thread trace file (v1 or v2), strictly.

    Raises :class:`TraceDecodeError` (a :class:`ValueError`) on any
    truncation or corruption.
    """
    version, mode, thread_id, pos = _parse_header(data)
    if version == VERSION_V1:
        records = list(_iter_records(data, pos, len(data)))
    else:
        records = []
        while pos < len(data):
            payload, pos = _read_chunk(data, pos)
            records.extend(_iter_records(payload, 0, len(payload)))
    return TraceFile(mode=mode, thread_id=thread_id, records=records,
                     version=version)


def _read_chunk(data: bytes, pos: int) -> Tuple[bytes, int]:
    """Strictly read one framed chunk at ``pos``; return ``(payload, next)``."""
    if data[pos] != CHUNK_MARKER:
        raise TraceDecodeError(
            f"expected chunk marker {CHUNK_MARKER:#x} at offset {pos}, "
            f"found {data[pos]:#x}"
        )
    try:
        payload_len, p = decode_uvarint(data, pos + 1)
    except VarintDecodeError as exc:
        raise TraceDecodeError(f"truncated chunk length at offset {pos}") from exc
    if p + 4 + payload_len > len(data):
        raise TraceDecodeError(
            f"truncated chunk at offset {pos}: need {payload_len} payload "
            f"bytes, file ends after {len(data) - p - 4}"
        )
    crc_stored = int.from_bytes(data[p:p + 4], "little")
    payload = bytes(data[p + 4:p + 4 + payload_len])
    if zlib.crc32(payload) != crc_stored:
        raise TraceDecodeError(f"chunk CRC mismatch at offset {pos}")
    return payload, p + 4 + payload_len


def _iter_records(data: bytes, pos: int, end: int) -> Iterator[TraceRecord]:
    while pos < end:
        try:
            record, pos = _parse_one_record(data, pos, end)
        except TraceDecodeError as exc:
            raise TraceDecodeError(f"{exc} (at offset {pos})") from exc
        yield record


# ---------------------------------------------------------------------------
# lenient parsing (salvage)
# ---------------------------------------------------------------------------


@dataclass
class SalvageReport:
    """What a lenient parse recovered — and what it had to give up."""

    version: int = 0
    header_ok: bool = False
    records_recovered: int = 0
    #: records recovered from a torn tail chunk whose CRC could not be
    #: verified (a kill landed mid-flush)
    records_unverified: int = 0
    chunks_ok: int = 0
    corrupt_chunks: int = 0
    bytes_dropped: int = 0
    truncated: bool = False
    notes: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when nothing at all was lost (identical to a strict parse)."""
        return (self.header_ok and self.corrupt_chunks == 0
                and not self.truncated and self.bytes_dropped == 0)

    def summary(self) -> str:
        status = "complete" if self.complete else "salvaged"
        parts = [
            f"{status}: {self.records_recovered} records recovered",
            f"{self.corrupt_chunks} corrupt chunks",
            f"{self.bytes_dropped} bytes dropped",
        ]
        if self.records_unverified:
            parts.append(f"{self.records_unverified} unverified (torn flush)")
        if self.truncated:
            parts.append("truncated")
        return ", ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.summary()


@dataclass
class SalvagedTrace:
    """Result of :func:`parse_trace_lenient`."""

    trace: TraceFile
    report: SalvageReport


def _recover_record_prefix(data: bytes, pos: int, end: int
                           ) -> Tuple[List[TraceRecord], int]:
    """Parse records until the first error; return ``(records, stop_pos)``.

    ``stop_pos`` is the offset of the first byte that did not decode as the
    start of a complete, valid record (``end`` when everything decoded).
    """
    records: List[TraceRecord] = []
    while pos < end:
        try:
            record, nxt = _parse_one_record(data, pos, end)
        except TraceDecodeError:
            return records, pos
        records.append(record)
        pos = nxt
    return records, end


def _parse_one_record(data: bytes, pos: int, end: int
                      ) -> Tuple[TraceRecord, int]:
    """Parse exactly one record at ``pos``; return ``(record, next_pos)``."""
    try:
        tag = data[pos]
        pos += 1
        if tag == TAG_METHOD_ENTRY:
            method_id, pos = decode_uvarint(data, pos)
            record: TraceRecord = MethodEntryRecord(method_id)
        elif tag == TAG_CU_ENTRY:
            cu_id, pos = decode_uvarint(data, pos)
            record = CuEntryRecord(cu_id)
        elif tag == TAG_PATH:
            method_id, pos = decode_uvarint(data, pos)
            start_block, pos = decode_uvarint(data, pos)
            path_value, pos = decode_uvarint(data, pos)
            count, pos = decode_uvarint(data, pos)
            ids = []
            for _ in range(count):
                object_id, pos = decode_uvarint(data, pos)
                ids.append(object_id)
            record = PathRecord(method_id, start_block, path_value, tuple(ids))
        else:
            raise TraceDecodeError(f"unknown trace record tag {tag:#x}")
    except VarintDecodeError as exc:
        raise TraceDecodeError(f"truncated record: {exc}") from exc
    if pos > end:
        raise TraceDecodeError(f"record overruns its frame by {pos - end} bytes")
    return record, pos


def parse_trace_lenient(data: bytes) -> SalvagedTrace:
    """Best-effort parse that never raises.

    * v1 bodies: recover the longest valid record prefix.
    * v2 bodies: keep every chunk whose CRC verifies, skip corrupt ones and
      resynchronize on the next chunk marker; a torn *tail* chunk (mid-flush
      kill) contributes its record prefix as *unverified* records.
    * Unreadable headers yield an empty trace and a report saying why.

    On an uncorrupted input the recovered trace is identical to
    :func:`parse_trace` output and ``report.complete`` is True.
    """
    report = SalvageReport()
    empty = TraceFile(mode=0, thread_id=0, records=[], version=0)
    if isinstance(data, (bytearray, memoryview)):
        data = bytes(data)
    if not isinstance(data, bytes):
        report.notes.append(f"not a byte string: {type(data).__name__}")
        return SalvagedTrace(empty, report)
    try:
        version, mode, thread_id, pos = _parse_header(data)
    except TraceDecodeError as exc:
        report.notes.append(f"unreadable header: {exc}")
        report.bytes_dropped = len(data)
        # Distinguish a partial header write (truncation) from corruption.
        report.truncated = (len(data) < HEADER_FIXED_BYTES
                            or "truncated" in str(exc))
        return SalvagedTrace(empty, report)

    report.version = version
    report.header_ok = True
    trace = TraceFile(mode=mode, thread_id=thread_id, records=[],
                      version=version)
    if version == VERSION_V1:
        _salvage_v1(data, pos, trace, report)
    else:
        _salvage_v2(data, pos, trace, report)
    report.records_recovered = len(trace.records)
    return SalvagedTrace(trace, report)


def _salvage_v1(data: bytes, pos: int, trace: TraceFile,
                report: SalvageReport) -> None:
    records, stop = _recover_record_prefix(data, pos, len(data))
    trace.records.extend(records)
    if stop < len(data):
        report.truncated = True
        report.bytes_dropped += len(data) - stop
        report.notes.append(
            f"v1 body damaged at offset {stop}; dropped {len(data) - stop} "
            "trailing bytes"
        )


def _salvage_v2(data: bytes, pos: int, trace: TraceFile,
                report: SalvageReport) -> None:
    end = len(data)
    while pos < end:
        if data[pos] != CHUNK_MARKER:
            pos = _resync(data, pos, report, "stray bytes between chunks")
            continue
        try:
            payload_len, p = decode_uvarint(data, pos + 1)
        except VarintDecodeError:
            report.truncated = True
            report.bytes_dropped += end - pos
            report.notes.append(f"torn chunk header at offset {pos}")
            return
        if p + 4 > end:
            report.truncated = True
            report.bytes_dropped += end - pos
            report.notes.append(f"torn chunk header at offset {pos}")
            return
        crc_stored = int.from_bytes(data[p:p + 4], "little")
        if p + 4 + payload_len > end:
            # Torn tail chunk: a kill landed mid-flush.  The CRC covers the
            # full payload, so it cannot be verified — salvage the record
            # prefix of what did reach the file, flagged as unverified.
            partial = data[p + 4:end]
            records, stop = _recover_record_prefix(partial, 0, len(partial))
            trace.records.extend(records)
            report.records_unverified += len(records)
            report.truncated = True
            report.bytes_dropped += len(partial) - stop
            report.notes.append(
                f"torn tail chunk at offset {pos}: recovered "
                f"{len(records)} unverified records"
            )
            return
        payload = bytes(data[p + 4:p + 4 + payload_len])
        if zlib.crc32(payload) != crc_stored:
            report.corrupt_chunks += 1
            report.notes.append(f"chunk CRC mismatch at offset {pos}")
            pos = _resync(data, pos + 1, report, None)
            continue
        try:
            records = list(_iter_records(payload, 0, len(payload)))
        except TraceDecodeError:
            # CRC-valid but malformed payload (writer bug or marker-aligned
            # corruption): keep the valid prefix.
            records, _stop = _recover_record_prefix(payload, 0, len(payload))
            report.corrupt_chunks += 1
            report.notes.append(
                f"malformed payload in chunk at offset {pos}; kept "
                f"{len(records)} records"
            )
        else:
            report.chunks_ok += 1
        trace.records.extend(records)
        pos = p + 4 + payload_len


def _resync(data: bytes, pos: int, report: SalvageReport,
            note: "str | None") -> int:
    """Skip forward to the next chunk marker; account skipped bytes."""
    nxt = data.find(bytes([CHUNK_MARKER]), pos)
    if nxt == -1:
        report.bytes_dropped += len(data) - pos
        if note:
            report.notes.append(f"{note} at offset {pos} (to end of file)")
        return len(data)
    report.bytes_dropped += nxt - pos
    if note and nxt > pos:
        report.notes.append(f"{note} at offsets {pos}..{nxt}")
    return nxt


# ---------------------------------------------------------------------------
# trace-set container (artifact cache)
# ---------------------------------------------------------------------------

#: magic of the packed multi-trace container written by :func:`pack_traces`
PACK_MAGIC = b"NITP"


def pack_traces(files: List[bytes]) -> bytes:
    """Pack a profiling run's per-thread trace files into one blob.

    The content-addressed artifact cache stores each instrumented run's
    traces as a single payload; this is its (trivially versioned) framing::

        magic "NITP" | file count uvarint | per file: length uvarint | bytes

    The inverse is :func:`unpack_traces`.  Ordering is preserved exactly
    (thread-creation order matters to the ordering analyses).
    """
    out = bytearray(PACK_MAGIC)
    out += encode_uvarint(len(files))
    for data in files:
        out += encode_uvarint(len(data))
        out += data
    return bytes(out)


def unpack_traces(blob: bytes) -> List[bytes]:
    """Unpack a :func:`pack_traces` blob back into per-thread trace files.

    Raises :class:`TraceDecodeError` if the container framing is damaged
    (bad magic, truncated lengths, short payloads); damage *inside* an
    individual trace file is not this function's concern — feed the files
    to :func:`parse_trace_lenient` for that.
    """
    if blob[: len(PACK_MAGIC)] != PACK_MAGIC:
        raise TraceDecodeError("not a packed trace container (bad magic)")
    pos = len(PACK_MAGIC)
    try:
        count, pos = decode_uvarint(blob, pos)
        files: List[bytes] = []
        for _ in range(count):
            length, pos = decode_uvarint(blob, pos)
            if pos + length > len(blob):
                raise TraceDecodeError(
                    f"packed trace truncated: need {length} bytes at {pos}"
                )
            files.append(bytes(blob[pos : pos + length]))
            pos += length
    except VarintDecodeError as exc:
        raise TraceDecodeError(f"packed trace container damaged: {exc}") from exc
    if pos != len(blob):
        raise TraceDecodeError(
            f"packed trace has {len(blob) - pos} trailing byte(s)"
        )
    return files
