"""Binary trace-file format (one file per thread; paper Sec. 6.1).

Layout::

    magic "NITR" | version u8 | mode u8 | thread_id uvarint | records...

Record kinds::

    0x01 METHOD_ENTRY  method_id
    0x02 CU_ENTRY      cu_id
    0x03 PATH          method_id start_block path_value n_ids id*n

``PATH`` records carry the object identifiers accessed along the path.  The
count is redundant with the decoded path (the paper stores only the IDs and
derives the count from the path); we keep it in the stream and *verify* it
against the decode, which doubles as an integrity check of the path
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple, Union

from ..util.varint import decode_uvarint, encode_uvarint

MAGIC = b"NITR"
VERSION = 1

MODE_DUMP_ON_FULL = 1
MODE_MMAP = 2

TAG_METHOD_ENTRY = 0x01
TAG_CU_ENTRY = 0x02
TAG_PATH = 0x03


@dataclass(frozen=True)
class MethodEntryRecord:
    method_id: int


@dataclass(frozen=True)
class CuEntryRecord:
    cu_id: int


@dataclass(frozen=True)
class PathRecord:
    method_id: int
    start_block: int
    path_value: int
    object_ids: Tuple[int, ...]


TraceRecord = Union[MethodEntryRecord, CuEntryRecord, PathRecord]


def encode_method_entry(method_id: int) -> bytes:
    return bytes([TAG_METHOD_ENTRY]) + encode_uvarint(method_id)


def encode_cu_entry(cu_id: int) -> bytes:
    return bytes([TAG_CU_ENTRY]) + encode_uvarint(cu_id)


def encode_path(method_id: int, start_block: int, path_value: int,
                object_ids: List[int]) -> bytes:
    out = bytearray([TAG_PATH])
    out += encode_uvarint(method_id)
    out += encode_uvarint(start_block)
    out += encode_uvarint(path_value)
    out += encode_uvarint(len(object_ids))
    for object_id in object_ids:
        out += encode_uvarint(object_id)
    return bytes(out)


def encode_header(mode: int, thread_id: int) -> bytes:
    return MAGIC + bytes([VERSION, mode]) + encode_uvarint(thread_id)


@dataclass
class TraceFile:
    """A parsed trace file."""

    mode: int
    thread_id: int
    records: List[TraceRecord]


def parse_trace(data: bytes) -> TraceFile:
    """Parse a complete per-thread trace file."""
    if data[:4] != MAGIC:
        raise ValueError("bad trace magic")
    if data[4] != VERSION:
        raise ValueError(f"unsupported trace version {data[4]}")
    mode = data[5]
    thread_id, pos = decode_uvarint(data, 6)
    records = list(_iter_records(data, pos))
    return TraceFile(mode=mode, thread_id=thread_id, records=records)


def _iter_records(data: bytes, pos: int) -> Iterator[TraceRecord]:
    while pos < len(data):
        tag = data[pos]
        pos += 1
        if tag == TAG_METHOD_ENTRY:
            method_id, pos = decode_uvarint(data, pos)
            yield MethodEntryRecord(method_id)
        elif tag == TAG_CU_ENTRY:
            cu_id, pos = decode_uvarint(data, pos)
            yield CuEntryRecord(cu_id)
        elif tag == TAG_PATH:
            method_id, pos = decode_uvarint(data, pos)
            start_block, pos = decode_uvarint(data, pos)
            path_value, pos = decode_uvarint(data, pos)
            count, pos = decode_uvarint(data, pos)
            ids = []
            for _ in range(count):
                object_id, pos = decode_uvarint(data, pos)
                ids.append(object_id)
            yield PathRecord(method_id, start_block, path_value, tuple(ids))
        else:
            raise ValueError(f"unknown trace record tag {tag:#x} at offset {pos - 1}")
