"""Runtime side of the tracing profiler (paper Sec. 6.1).

Observes the instrumented execution through the interpreter hooks and fills
per-thread trace buffers with:

* ``CU_ENTRY`` records when control enters a compilation unit's prologue;
* ``METHOD_ENTRY`` records on every frame push of an instrumented method;
* ``PATH`` records — Ball–Larus path values per region, each carrying the
  identifiers of the image-heap objects accessed along the path (runtime
  allocations record the sentinel 0).

Path segments end at cut edges (loop back edges), at calls (flushed *before*
the callee's records so records nest in true execution order), and at
returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..minijava.bytecode import HEAP_ACCESS_OPS, CompiledMethod
from ..vm.interpreter import Frame, Interpreter, ThreadState
from .cfg import MethodCfg
from .instrument import InstrumentationManifest
from .tracebuf import TraceSession
from .tracefile import MODE_MMAP, encode_cu_entry, encode_method_entry, encode_path

#: Object-identifier sentinel for runtime-allocated (non-image) objects.
NON_IMAGE_ID = 0


@dataclass
class _PathState:
    """Per-frame path-tracking state."""

    cfg: MethodCfg
    method_id: int
    start_block: Optional[int] = None
    current_block: Optional[int] = None
    value: int = 0
    pending_ids: List[int] = field(default_factory=list)


class PathTracer:
    """Collects traces during one instrumented execution."""

    def __init__(self, manifest: InstrumentationManifest, session: TraceSession) -> None:
        self._manifest = manifest
        self.session = session
        self.counts: Dict[str, int] = {
            "method_entries": 0,
            "cu_entries": 0,
            "path_records": 0,
            "heap_ids": 0,
            "blocks": 0,
        }

    # -- hook surface (called by ExecHooks) -----------------------------------

    def leaders_for(self, method: CompiledMethod) -> Optional[frozenset]:
        cfg = self._manifest.cfgs.get(method.signature)
        return cfg.leaders if cfg is not None else None

    def on_cu_entry(self, cu_root_signature: str, thread: ThreadState) -> None:
        self._flush_caller(thread)
        cu_id = self._manifest.cu_ids.get(cu_root_signature)
        if cu_id is None:
            return
        self.counts["cu_entries"] += 1
        self._buffer(thread).append(encode_cu_entry(cu_id))

    def on_method_enter(self, frame: Frame, thread: ThreadState) -> None:
        self._flush_caller(thread)
        cfg = self._manifest.cfgs.get(frame.method.signature)
        if cfg is None:
            frame.trace_state = None
            return
        method_id = self._manifest.method_ids[frame.method.signature]
        frame.trace_state = _PathState(cfg=cfg, method_id=method_id)
        self.counts["method_entries"] += 1
        self._buffer(thread).append(encode_method_entry(method_id))

    def on_method_exit(self, frame: Frame, thread: ThreadState) -> None:
        state = frame.trace_state
        if state is not None:
            self._emit_segment(state, thread, extra_increment=0)
            frame.trace_state = None

    def on_block(self, frame: Frame, leader_pc: int, thread: ThreadState) -> None:
        state = frame.trace_state
        if state is None:
            return
        self.counts["blocks"] += 1
        cfg = state.cfg
        new_block = cfg.block_of_pc[leader_pc]
        if state.current_block is None:
            # Region start: method entry or resume after a call.
            state.start_block = new_block
            state.current_block = new_block
            state.value = 0
            return
        edge = cfg.edge(state.current_block, new_block)
        if edge is None:
            raise RuntimeError(
                f"{frame.method.signature}: untracked CFG edge "
                f"{state.current_block}->{new_block}"
            )
        if edge.cut:
            self._emit_segment(state, thread, extra_increment=edge.increment)
            state.start_block = new_block
            state.current_block = new_block
            state.value = 0
        else:
            state.value += edge.increment
            state.current_block = new_block

    def on_object_access(self, obj: Any, op: str, thread: ThreadState) -> None:
        if op not in HEAP_ACCESS_OPS:
            # e.g. ARRAYLEN touches pages but is not a traced access site.
            return
        frame = thread.frames[-1]
        state = frame.trace_state
        if state is None or state.current_block is None:
            return
        ref = getattr(obj, "image_ref", None)
        # Identifier 0 marks non-image objects; image objects use index + 1.
        object_id = (ref.index + 1) if ref is not None else NON_IMAGE_ID
        state.pending_ids.append(object_id)
        self.counts["heap_ids"] += 1

    # -- lifecycle ----------------------------------------------------------------

    def terminate(self, interp: Interpreter) -> None:
        """Normal program exit: flush buffers.

        Open path segments of frames that never returned (threads stopped
        mid-execution) are *not* emitted: their values do not decode to a
        region terminal.  Normally terminating threads flushed everything
        through ``on_method_exit`` already.
        """
        self.session.terminate_all()

    def kill(self, interp: Interpreter) -> None:
        """Abnormal termination (SIGKILL): in-buffer records are lost."""
        self.session.kill_all()

    def event_counts(self) -> Dict[str, int]:
        stats = self.session.total_stats()
        counts = dict(self.counts)
        counts["dumps"] = stats.dumps
        counts["mmap_writes"] = stats.records if self.session.mode == MODE_MMAP else 0
        return counts

    # -- internals ------------------------------------------------------------------

    def _buffer(self, thread: ThreadState):
        return self.session.buffer_for(thread.thread_id)

    def _flush_caller(self, thread: ThreadState) -> None:
        """Flush the caller's open path segment before callee records.

        A call terminates its basic block with a single cut fall-through
        edge whose Ball–Larus increment is 0, so the segment value is final.
        """
        if len(thread.frames) < 2:
            return
        parent = thread.frames[-2]
        state = parent.trace_state
        if state is not None and state.current_block is not None:
            self._emit_segment(state, thread, extra_increment=0)
            state.start_block = None
            state.current_block = None
            state.value = 0

    def _emit_segment(self, state: _PathState, thread: ThreadState,
                      extra_increment: Optional[int]) -> None:
        if state.current_block is None or state.start_block is None:
            return
        value = state.value + (extra_increment or 0)
        record = encode_path(
            state.method_id, state.start_block, value, state.pending_ids
        )
        state.pending_ids = []
        self.counts["path_records"] += 1
        self._buffer(thread).append(record)
