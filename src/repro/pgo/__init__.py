"""Continuous PGO: profile lifecycle, drift detection, guarded re-layout.

Production PGO is a cycle, not a one-shot (instrument → load → profile →
rebuild): profiles go stale as traffic shifts, and a re-layout driven by
a bad or drifted profile can *regress* startup.  This package is the
simulated profile service that closes the loop safely:

* :mod:`repro.pgo.lifecycle` — versioned profile artifacts with full
  provenance (source traces, weights, toolchain, age) and the deployed
  pointer;
* :mod:`repro.pgo.merge` — salvage-aware ingestion of N weighted traces
  into one first-use ordering profile;
* :mod:`repro.pgo.drift` — rank-distance + replayed-fault drift checks
  against the deployed layout;
* :mod:`repro.pgo.loop` — the canary-gated refresh/rollback loop
  composing the structural oracle, differential oracle, regression gate,
  attribution blame, quarantine, and the degradation ladder;
* :mod:`repro.pgo.scenario` — seeded multi-epoch drift scenarios over
  synthetic traffic mixes (the `repro pgo` CLI and CI smoke driver).
"""

from .drift import (
    DriftReport,
    DriftThresholds,
    detect_drift,
    expected_faults,
    rank_distance,
    relevant_faults,
    replay_faults,
)
from .lifecycle import (
    DeployedLayout,
    ProfileProvenance,
    ProfileStore,
    ProfileVersion,
    TraceSource,
)
from .loop import (
    ACTION_BOOTSTRAP,
    ACTION_DEFAULT_LAYOUT,
    ACTION_REFRESH,
    ACTION_RETAIN,
    ACTION_ROLLBACK,
    CanaryPolicy,
    EpochOutcome,
    PgoLoop,
)
from .merge import (
    WeightedProfile,
    WeightedTrace,
    coalesce_mix,
    ingest_traces,
    merge_mix,
)
from .scenario import (
    DriftScenario,
    ScenarioOutcome,
    TrafficVariant,
    run_scenario,
    synthesize_variants,
)

__all__ = [
    "DriftReport", "DriftThresholds", "detect_drift", "expected_faults",
    "rank_distance", "relevant_faults", "replay_faults",
    "DeployedLayout", "ProfileProvenance", "ProfileStore", "ProfileVersion",
    "TraceSource",
    "ACTION_BOOTSTRAP", "ACTION_DEFAULT_LAYOUT", "ACTION_REFRESH",
    "ACTION_RETAIN", "ACTION_ROLLBACK",
    "CanaryPolicy", "EpochOutcome", "PgoLoop",
    "WeightedProfile", "WeightedTrace", "coalesce_mix", "ingest_traces",
    "merge_mix",
    "DriftScenario", "ScenarioOutcome", "TrafficVariant", "run_scenario",
    "synthesize_variants",
]
