"""The guarded continuous-PGO loop: drift → candidate → canary → deploy.

One :class:`PgoLoop` keeps one workload's deployed layout fresh *and
safe*.  Each epoch it merges the live traffic mix (salvage-aware,
weighted), checks it against the deployed layout's profile
(:mod:`repro.pgo.drift`), and on drift rebuilds a candidate layout
through the cached pipeline.  The candidate does not ship until it clears
the **canary gate**, which composes every prior safety rail:

1. the PR-2 structural oracle (``verify_layout``) — a malformed candidate
   short-circuits the gate outright;
2. the PR-2 differential oracle — candidate behavior must be identical to
   the regular baseline build;
3. a PR-4-style regression gate — the candidate's expected first-touch
   faults under live traffic must not exceed the deployed layout's by
   more than ``CanaryPolicy.max_regression``;
4. on a fault-gate loss, PR-5 attribution names the blamed symbols.

A failing candidate is convicted into the pipeline's PR-2
:class:`QuarantineRegistry` (keyed ``strategy@vN`` so only that profile
version is barred, never the strategy itself) and the epoch lands on the
PR-1 :class:`DegradationReport` ladder: **refresh** (gate passed) →
**retain-stale** (gate failed, deployed layout kept) → **default layout**
(gate failed and nothing healthy is deployed).  The loop's headline
invariant — asserted by scenarios and the bench ``pgo`` phase — is that
the deployed layout's expected fault count never regresses past the gate
threshold at any epoch, no matter what the candidates do.

A :class:`~repro.robustness.chaos.ChaosPolicy` carrying the
``stale_profile`` class makes the profile service serve an old version as
"live", so tests can exercise the missed-refresh/recovery path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..eval.explain import attributed_run, explain_reports
from ..eval.pipeline import StrategySpec, WorkloadPipeline
from ..image.binary import MODE_OPTIMIZED, NativeImageBinary
from ..obs import get_event_log, metrics
from ..ordering.profiles import ProfileBundle
from ..robustness.chaos import CHAOS_STALE_PROFILE, ChaosPolicy
from ..robustness.degradation import DegradationReport
from ..validation.differential import run_differential
from ..validation.invariants import verify_layout
from ..validation.mutate import LayoutMutationPlan, LayoutMutator
from .drift import DriftReport, DriftThresholds, detect_drift, expected_faults
from .lifecycle import DeployedLayout, ProfileStore, ProfileVersion
from .merge import WeightedProfile, coalesce_mix, merge_mix

ACTION_BOOTSTRAP = "bootstrap"
ACTION_RETAIN = "retain"
ACTION_REFRESH = "refresh"
ACTION_ROLLBACK = "rollback"
ACTION_DEFAULT_LAYOUT = "default-layout"


@dataclass(frozen=True)
class CanaryPolicy:
    """What the canary gate checks before a candidate may ship."""

    verify_structure: bool = True
    differential: bool = True
    #: max tolerated relative fault regression of the candidate vs the
    #: deployed layout, both replayed under live traffic (0.0 = strict)
    max_regression: float = 0.0
    #: run the PR-5 attribution explainer on a fault-gate loss
    attribute_blame: bool = True
    top_blamed: int = 3


@dataclass
class EpochOutcome:
    """Everything one loop iteration decided, and why."""

    epoch: int
    action: str = ACTION_RETAIN
    drift: Optional[DriftReport] = None
    deployed_version_before: Optional[int] = None
    deployed_version_after: Optional[int] = None
    candidate_version: Optional[int] = None
    candidate_layout_digest: Optional[int] = None
    #: expected faults under live traffic (the epoch's common yardstick)
    candidate_faults: Optional[float] = None
    deployed_faults_before: Optional[float] = None
    deployed_faults_after: Optional[float] = None
    gate_max_regression: float = 0.0
    gate_failures: List[str] = field(default_factory=list)
    #: symbols PR-5 attribution blamed for a fault-gate loss
    blamed: List[str] = field(default_factory=list)
    #: quarantine key the candidate was convicted under (rollback only)
    quarantined: Optional[str] = None
    stale_served: bool = False
    degradation: Optional[DegradationReport] = None
    notes: List[str] = field(default_factory=list)

    @property
    def unguarded_regression(self) -> bool:
        """Did this epoch leave the fleet worse off past the gate bound?"""
        if self.deployed_faults_before is None:
            return False
        if self.deployed_faults_after is None:
            return False
        allowed = self.deployed_faults_before * (1.0 + self.gate_max_regression)
        return self.deployed_faults_after > allowed + 1e-9

    def as_dict(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "action": self.action,
            "drift": self.drift.as_dict() if self.drift else None,
            "deployed_version_before": self.deployed_version_before,
            "deployed_version_after": self.deployed_version_after,
            "candidate_version": self.candidate_version,
            "candidate_layout_digest": self.candidate_layout_digest,
            "candidate_faults": self.candidate_faults,
            "deployed_faults_before": self.deployed_faults_before,
            "deployed_faults_after": self.deployed_faults_after,
            "gate_failures": list(self.gate_failures),
            "blamed": list(self.blamed),
            "quarantined": self.quarantined,
            "stale_served": self.stale_served,
            "unguarded_regression": self.unguarded_regression,
            "notes": list(self.notes),
        }

    def describe(self) -> str:
        head = f"epoch {self.epoch}: {self.action}"
        extras: List[str] = []
        if self.drift is not None:
            extras.append(f"drift {self.drift.rank_distance:.3f}")
        if self.candidate_faults is not None:
            extras.append(f"candidate {self.candidate_faults:.1f} faults")
        if self.deployed_faults_after is not None:
            extras.append(f"deployed {self.deployed_faults_after:.1f} faults")
        if self.quarantined:
            extras.append(f"quarantined {self.quarantined}")
        if self.stale_served:
            extras.append("stale profile served")
        if extras:
            head += " (" + ", ".join(extras) + ")"
        lines = [head]
        lines.extend(f"  ! {failure}" for failure in self.gate_failures)
        lines.extend(f"  · {note}" for note in self.notes)
        return "\n".join(lines)


class PgoLoop:
    """One workload's self-healing profile/layout lifecycle."""

    def __init__(
        self,
        pipeline: WorkloadPipeline,
        strategy: StrategySpec,
        thresholds: Optional[DriftThresholds] = None,
        canary: Optional[CanaryPolicy] = None,
        chaos: Optional[ChaosPolicy] = None,
        seed: int = 0,
    ) -> None:
        self.pipeline = pipeline
        self.spec = strategy
        self.thresholds = thresholds or DriftThresholds()
        self.canary = canary or CanaryPolicy()
        self.chaos = chaos
        self.seed = seed
        self.workload = pipeline.workload.name
        self.store = ProfileStore(self.workload)
        #: convictions land in the pipeline's shared registry
        self.quarantine = pipeline.quarantine
        self.deployed: Optional[DeployedLayout] = None
        self.deployed_binary: Optional[NativeImageBinary] = None
        self.history: List[EpochOutcome] = []

    # -- deployment ---------------------------------------------------------

    def bootstrap(self, mix: Sequence[WeightedProfile],
                  epoch: int = 0) -> EpochOutcome:
        """Initial deployment: build and ship the first layout, ungated.

        The first layout has nothing to regress against; its expected
        fault count under its own traffic becomes the drift baseline.
        """
        mix = coalesce_mix(mix)
        bundle, provenance = merge_mix(mix, self.workload, epoch)
        version = self.store.publish(bundle, provenance)
        binary = self.pipeline.build_optimized(bundle, self.spec,
                                               seed=self.seed)
        faults = self._expected(binary, mix)
        self._deploy(version, binary, faults, epoch)
        outcome = EpochOutcome(
            epoch=epoch, action=ACTION_BOOTSTRAP,
            deployed_version_after=version.version,
            candidate_version=version.version,
            candidate_layout_digest=binary.layout_digest(),
            candidate_faults=faults,
            deployed_faults_after=faults,
            gate_max_regression=self.canary.max_regression,
        )
        outcome.notes.append(
            f"bootstrapped {self.spec.name!r} layout from profile "
            f"v{version.version} ({faults:.1f} expected faults)"
        )
        self._finalize(outcome, epoch)
        return outcome

    def _deploy(self, version: ProfileVersion, binary: NativeImageBinary,
                faults: float, epoch: int,
                strategy_name: Optional[str] = None) -> None:
        self.store.deploy(version.version)
        self.deployed = DeployedLayout(
            profile_version=version.version,
            strategy=strategy_name or self.spec.name,
            layout_digest=binary.layout_digest(),
            baseline_faults=faults,
            epoch=epoch,
        )
        self.deployed_binary = binary
        registry = metrics()
        registry.gauge("pgo.deployed.version", float(version.version))
        registry.gauge("pgo.deployed.expected_faults", faults)

    # -- the loop body ------------------------------------------------------

    def observe(
        self,
        mix: Sequence[WeightedProfile],
        epoch: int,
        mutation_plan: Optional[LayoutMutationPlan] = None,
    ) -> EpochOutcome:
        """One loop iteration against this epoch's live traffic mix.

        ``mutation_plan`` (tests/scenarios only) damages the candidate
        after it is built — the canary gate must catch it.  Returns the
        epoch's :class:`EpochOutcome`; the deployed layout afterwards is
        never worse than before beyond the gate bound.
        """
        registry = metrics()
        registry.counter("pgo.epochs")
        outcome = EpochOutcome(
            epoch=epoch, gate_max_regression=self.canary.max_regression,
            deployed_version_before=(
                self.deployed.profile_version if self.deployed else None),
        )
        mix = self._chaos_mix(coalesce_mix(mix), epoch, outcome)
        bundle, provenance = merge_mix(
            mix, self.workload, epoch,
            notes=("served stale by chaos",) if outcome.stale_served else (),
        )
        if self.deployed is None or self.deployed_binary is None:
            return self._first_deploy_gated(bundle, provenance, mix,
                                            epoch, mutation_plan, outcome)
        deployed_profile = self.store.version(
            self.deployed.profile_version).bundle
        report = detect_drift(
            workload=self.workload,
            spec=self.spec,
            deployed_profile=deployed_profile,
            deployed_binary=self.deployed_binary,
            live_bundle=bundle,
            live_mix=[(source.bundle, source.weight) for source in mix],
            epoch=epoch,
            deployed_version=self.deployed.profile_version,
            baseline_faults=self.deployed.baseline_faults,
            thresholds=self.thresholds,
            config=self.pipeline.exec_config,
        )
        outcome.drift = report
        outcome.deployed_faults_before = report.deployed_live_faults
        registry.gauge("pgo.drift.score", report.rank_distance)
        registry.gauge("pgo.drift.fault_regression", report.fault_regression)
        if not report.drifted:
            outcome.action = ACTION_RETAIN
            outcome.deployed_faults_after = report.deployed_live_faults
            outcome.deployed_version_after = self.deployed.profile_version
            registry.counter("pgo.retained")
            self._finalize(outcome, epoch)
            return outcome
        self._refresh(bundle, provenance, mix, epoch, mutation_plan, outcome)
        self._finalize(outcome, epoch)
        return outcome

    # -- internals ----------------------------------------------------------

    def _chaos_mix(self, mix: List[WeightedProfile], epoch: int,
                   outcome: EpochOutcome) -> List[WeightedProfile]:
        """Let an armed chaos policy swap live traffic for a stale profile."""
        if self.chaos is None or not len(self.store):
            return mix
        fault = self.chaos.fault_for(
            self.workload, f"pgo:{self.spec.name}:epoch{epoch}", 0)
        if fault != CHAOS_STALE_PROFILE:
            return mix
        stale = self.store.latest()
        outcome.stale_served = True
        outcome.notes.append(
            f"chaos: profile service served stale v{stale.version} "
            f"(collected at epoch {stale.provenance.epoch}) as live traffic"
        )
        metrics().counter("pgo.stale_served")
        return [WeightedProfile(
            label=f"stale:v{stale.version}", weight=1.0, bundle=stale.bundle,
        )]

    def _expected(self, binary: NativeImageBinary,
                  mix: Sequence[WeightedProfile]) -> float:
        return expected_faults(
            binary, [(source.bundle, source.weight) for source in mix],
            self.spec, self.pipeline.exec_config,
        )

    def _build_candidate(
        self, bundle: ProfileBundle,
        mutation_plan: Optional[LayoutMutationPlan],
    ) -> NativeImageBinary:
        """Build the candidate; mutated candidates bypass the cache.

        A mutation damages the binary *object* in place — letting that
        object enter the artifact cache would poison every later hit, so
        injected-bad candidates are built directly on the builder.
        """
        if mutation_plan is None:
            return self.pipeline.build_optimized(bundle, self.spec,
                                                 seed=self.seed)
        candidate = self.pipeline.builder().build(
            mode=MODE_OPTIMIZED,
            profiles=bundle,
            code_ordering=self.spec.code_ordering,
            heap_ordering=self.spec.heap_ordering,
            seed=self.seed,
        )
        mutator = LayoutMutator(mutation_plan)
        mutator.mutate(candidate)
        return candidate

    def _refresh(
        self,
        bundle: ProfileBundle,
        provenance,
        mix: Sequence[WeightedProfile],
        epoch: int,
        mutation_plan: Optional[LayoutMutationPlan],
        outcome: EpochOutcome,
    ) -> None:
        """Drift confirmed: build a candidate and push it through the gate."""
        version = self.store.publish(bundle, provenance)
        outcome.candidate_version = version.version
        candidate = self._build_candidate(bundle, mutation_plan)
        outcome.candidate_layout_digest = candidate.layout_digest()
        if mutation_plan is not None:
            outcome.notes.append(
                "injected layout mutation(s): "
                + ", ".join(m.describe() for m in mutation_plan.mutations)
            )
        failures = self._canary(candidate, mix, outcome)
        registry = metrics()
        if not failures:
            faults = outcome.candidate_faults
            self._deploy(version, candidate, faults, epoch)
            outcome.action = ACTION_REFRESH
            outcome.deployed_faults_after = faults
            outcome.deployed_version_after = version.version
            registry.counter("pgo.refreshes")
            outcome.notes.append(
                f"canary gate passed; deployed profile v{version.version} "
                f"({faults:.1f} vs {outcome.deployed_faults_before:.1f} "
                "expected faults under live traffic)"
            )
            return
        # -- rollback ladder -------------------------------------------------
        outcome.gate_failures = failures
        registry.counter("pgo.rollbacks")
        registry.counter("pgo.quarantines")
        key = f"{self.spec.name}@v{version.version}"
        reason = "canary gate failed: " + "; ".join(failures)
        self.quarantine.quarantine(
            self.workload, key, reason,
            layout_digest=outcome.candidate_layout_digest or 0,
        )
        outcome.quarantined = key
        degradation = DegradationReport(workload=self.workload)
        degradation.strategy = self.spec.name
        degradation.layout_fallback = True
        degradation.quarantined = True
        outcome.action = ACTION_ROLLBACK
        outcome.deployed_faults_after = outcome.deployed_faults_before
        outcome.deployed_version_after = self.deployed.profile_version
        degradation.note(
            f"candidate layout {key} failed the canary gate "
            f"({'; '.join(failures)}); rolled back to deployed profile "
            f"v{self.deployed.profile_version} (retain-stale)"
        )
        outcome.degradation = degradation

    def _first_deploy_gated(
        self,
        bundle: ProfileBundle,
        provenance,
        mix: Sequence[WeightedProfile],
        epoch: int,
        mutation_plan: Optional[LayoutMutationPlan],
        outcome: EpochOutcome,
    ) -> EpochOutcome:
        """No healthy deployment exists: gate the candidate, else rung 3.

        A candidate that fails here has no stale layout to retain — the
        ladder bottoms out in a default-layout deployment (PGO inlining
        only, no ordering), which always verifies clean.
        """
        version = self.store.publish(bundle, provenance)
        outcome.candidate_version = version.version
        candidate = self._build_candidate(bundle, mutation_plan)
        outcome.candidate_layout_digest = candidate.layout_digest()
        failures = self._canary(candidate, mix, outcome)
        registry = metrics()
        if not failures:
            faults = outcome.candidate_faults
            self._deploy(version, candidate, faults, epoch)
            outcome.action = ACTION_REFRESH
            outcome.deployed_faults_after = faults
            outcome.deployed_version_after = version.version
            registry.counter("pgo.refreshes")
            self._finalize(outcome, epoch)
            return outcome
        outcome.gate_failures = failures
        registry.counter("pgo.rollbacks")
        registry.counter("pgo.quarantines")
        key = f"{self.spec.name}@v{version.version}"
        self.quarantine.quarantine(
            self.workload, key,
            "canary gate failed: " + "; ".join(failures),
            layout_digest=outcome.candidate_layout_digest or 0,
        )
        outcome.quarantined = key
        fallback = self.pipeline.build_optimized(bundle, None, seed=self.seed)
        faults = self._expected(fallback, mix)
        self._deploy(version, fallback, faults, epoch,
                     strategy_name="default")
        outcome.action = ACTION_DEFAULT_LAYOUT
        outcome.deployed_faults_after = faults
        outcome.deployed_version_after = version.version
        degradation = DegradationReport(workload=self.workload)
        degradation.strategy = self.spec.name
        degradation.layout_fallback = True
        degradation.quarantined = True
        degradation.note(
            f"candidate layout {key} failed the canary gate with no healthy "
            "deployment to retain; deployed the default layout (last rung)"
        )
        outcome.degradation = degradation
        self._finalize(outcome, epoch)
        return outcome

    def _canary(self, candidate: NativeImageBinary,
                mix: Sequence[WeightedProfile],
                outcome: EpochOutcome) -> List[str]:
        """Run the gate; returns failure descriptions (empty = shippable)."""
        failures: List[str] = []
        if self.canary.verify_structure:
            report = verify_layout(candidate)
            if not report.ok:
                codes = ", ".join(sorted(report.codes()))
                failures.append(
                    f"structural verification failed ({codes})")
                # an untrustworthy layout is not worth running or replaying
                return failures
        if self.canary.differential:
            baseline = self.pipeline.build_baseline(seed=self.seed)
            diff = run_differential(
                baseline, candidate, self.pipeline.exec_config,
                workload=self.workload, strategy=self.spec.name,
                microservice=self.pipeline.workload.microservice,
            )
            if not diff.matches:
                first = diff.divergences[0].describe()
                failures.append(
                    f"differential oracle found "
                    f"{len(diff.divergences)} divergence(s): {first}")
        candidate_faults = self._expected(candidate, mix)
        outcome.candidate_faults = candidate_faults
        if outcome.deployed_faults_before is not None:
            allowed = (outcome.deployed_faults_before
                       * (1.0 + self.canary.max_regression))
            if candidate_faults > allowed + 1e-9:
                failures.append(
                    f"fault regression gate: candidate costs "
                    f"{candidate_faults:.1f} expected faults under live "
                    f"traffic vs deployed {outcome.deployed_faults_before:.1f}"
                    f" (allowed {allowed:.1f})")
                if self.canary.attribute_blame:
                    outcome.blamed = self._blame(candidate)
                    if outcome.blamed:
                        failures[-1] += ("; blamed: "
                                         + ", ".join(outcome.blamed))
        return failures

    def _blame(self, candidate: NativeImageBinary) -> List[str]:
        """PR-5 attribution: which symbols explain the candidate's loss."""
        try:
            deployed_report = attributed_run(
                self.pipeline, self.deployed_binary,
                label=f"{self.workload}/deployed")
            candidate_report = attributed_run(
                self.pipeline, candidate,
                label=f"{self.workload}/candidate")
            why = explain_reports(deployed_report, candidate_report,
                                  workload=self.workload,
                                  strategy=self.spec.name)
            return why.top_blamed(self.canary.top_blamed)
        except Exception as exc:  # blame is advisory, never fatal
            return [f"<attribution failed: {type(exc).__name__}>"]

    def _finalize(self, outcome: EpochOutcome, epoch: int) -> None:
        registry = metrics()
        if self.deployed is not None:
            age = max(0, epoch - self.deployed.epoch)
            registry.gauge("pgo.deployed.age", float(age))
            if age > 0:
                registry.counter("pgo.stale_epochs")
        if outcome.unguarded_regression:
            registry.counter("pgo.unguarded_regressions")
        self._emit_epoch_events(outcome, epoch)
        self.history.append(outcome)

    def _emit_epoch_events(self, outcome: EpochOutcome, epoch: int) -> None:
        """Epoch markers for the correlated event log.

        One ``pgo.epoch`` event per loop iteration plus point events for
        the moments downstream readers care about (drift detection,
        refresh publication, rollback, quarantine conviction) — together
        the stream reconstructs the epoch timeline exactly, which
        ``tests/test_pgo.py`` asserts.
        """
        log = get_event_log()
        with log.context(workload=self.workload, strategy=self.spec.name):
            if outcome.drift is not None and outcome.drift.drifted:
                log.emit("pgo.drift", epoch=epoch,
                         rank_distance=outcome.drift.rank_distance,
                         fault_regression=outcome.drift.fault_regression)
            if outcome.action in (ACTION_REFRESH, ACTION_BOOTSTRAP):
                log.emit("pgo.refresh", epoch=epoch,
                         version=outcome.deployed_version_after,
                         faults=outcome.deployed_faults_after)
            if outcome.action in (ACTION_ROLLBACK, ACTION_DEFAULT_LAYOUT):
                log.emit("pgo.rollback", epoch=epoch,
                         gate_failures=list(outcome.gate_failures),
                         blamed=list(outcome.blamed))
            if outcome.quarantined:
                log.emit("pgo.quarantine", epoch=epoch,
                         key=outcome.quarantined)
            log.emit("pgo.epoch", epoch=epoch, action=outcome.action,
                     version=outcome.deployed_version_after,
                     stale_served=outcome.stale_served,
                     unguarded_regression=outcome.unguarded_regression)
