"""Profile lifecycle: versioned ordering-profile artifacts with provenance.

Production PGO treats profiles as long-lived inputs, not one-shot
by-products: a layout deployed today was built from traces collected days
ago, under a traffic mix that may no longer exist.  The
:class:`ProfileStore` makes that lifecycle explicit — every profile that
feeds a build is *published* as an immutable :class:`ProfileVersion`
carrying full :class:`ProfileProvenance` (which traces, at what weights,
under which toolchain, at which epoch), and the *deployed* pointer names
the version the live layout actually stands on.  Age is therefore a
first-class question (``store.age(now)``), and the drift detector can
always recover exactly the profile a stale layout was built from.

Stores are in-memory by default and serialize to a directory of CSV
bundles + JSON provenance (:meth:`ProfileStore.save` /
:meth:`ProfileStore.load`) so a simulated fleet can hand profiles between
processes the way a real profile service ships iprof files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..cache.keys import TOOLCHAIN_VERSION
from ..ordering.errors import OrderingError
from ..ordering.profiles import ProfileBundle, load_bundle, save_bundle


@dataclass(frozen=True)
class TraceSource:
    """One weighted trace (or pre-merged bundle) behind a published profile."""

    label: str
    weight: float
    #: usable records the salvage pass recovered from this source
    records: int = 0
    salvaged: bool = False
    #: content digest of the source's post-processed bundle
    digest: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "weight": self.weight,
            "records": self.records,
            "salvaged": self.salvaged,
            "digest": self.digest,
        }


@dataclass(frozen=True)
class ProfileProvenance:
    """Where a published profile came from, and when."""

    workload: str
    #: logical collection time (scenario epoch / deployment cycle number)
    epoch: int
    sources: Tuple[TraceSource, ...] = ()
    toolchain: str = TOOLCHAIN_VERSION
    notes: Tuple[str, ...] = ()

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "epoch": self.epoch,
            "toolchain": self.toolchain,
            "sources": [source.as_dict() for source in self.sources],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ProfileProvenance":
        return cls(
            workload=payload["workload"],
            epoch=payload["epoch"],
            toolchain=payload.get("toolchain", TOOLCHAIN_VERSION),
            sources=tuple(
                TraceSource(**source) for source in payload.get("sources", [])
            ),
            notes=tuple(payload.get("notes", [])),
        )

    def describe(self) -> str:
        parts = ", ".join(
            f"{source.label}×{source.weight:g}" for source in self.sources
        )
        return (f"{self.workload} profile @ epoch {self.epoch} "
                f"[{parts or 'no sources'}]")


@dataclass(frozen=True)
class ProfileVersion:
    """One immutable published profile: bundle + provenance + digest."""

    version: int
    digest: str
    bundle: ProfileBundle
    provenance: ProfileProvenance

    def describe(self) -> str:
        return (f"v{self.version} ({self.digest[:12]}…) — "
                f"{self.provenance.describe()}")


@dataclass(frozen=True)
class DeployedLayout:
    """The layout a (simulated) fleet is currently running.

    ``baseline_faults`` is the replayed expected first-touch fault count
    under the traffic mix the layout was *built for*, recorded at
    deployment time — the drift detector's fixed reference point.
    """

    profile_version: int
    strategy: str
    layout_digest: int
    baseline_faults: float
    #: epoch the layout was deployed at (age = now - epoch)
    epoch: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "profile_version": self.profile_version,
            "strategy": self.strategy,
            "layout_digest": self.layout_digest,
            "baseline_faults": self.baseline_faults,
            "epoch": self.epoch,
        }


class ProfileStore:
    """Versioned profiles of one workload plus the deployed pointer.

    Versions are append-only and 1-indexed; :meth:`publish` never mutates
    or replaces an existing version (a re-collected profile with identical
    content still gets a fresh version — age and provenance differ even
    when bytes do not).
    """

    def __init__(self, workload: str) -> None:
        self.workload = workload
        self.versions: List[ProfileVersion] = []
        self.deployed_version: Optional[int] = None

    # -- publishing ---------------------------------------------------------

    def publish(self, bundle: ProfileBundle,
                provenance: ProfileProvenance) -> ProfileVersion:
        """Append ``bundle`` as the next version; returns the new version."""
        if provenance.workload != self.workload:
            raise OrderingError(
                f"provenance names workload {provenance.workload!r} but this "
                f"store holds {self.workload!r}", kind="profile-store",
            )
        version = ProfileVersion(
            version=len(self.versions) + 1,
            digest=bundle.digest(),
            bundle=bundle,
            provenance=provenance,
        )
        self.versions.append(version)
        return version

    # -- lookup -------------------------------------------------------------

    def version(self, number: int) -> ProfileVersion:
        if not 1 <= number <= len(self.versions):
            raise KeyError(
                f"no profile version {number} (store has "
                f"{len(self.versions)} version(s))"
            )
        return self.versions[number - 1]

    def latest(self) -> ProfileVersion:
        if not self.versions:
            raise KeyError(f"profile store for {self.workload!r} is empty")
        return self.versions[-1]

    def __len__(self) -> int:
        return len(self.versions)

    # -- the deployed pointer ----------------------------------------------

    def deploy(self, number: int) -> ProfileVersion:
        """Mark ``number`` as the version the live layout stands on."""
        version = self.version(number)  # validates
        self.deployed_version = number
        return version

    def deployed(self) -> Optional[ProfileVersion]:
        if self.deployed_version is None:
            return None
        return self.version(self.deployed_version)

    def age(self, epoch: int) -> Optional[int]:
        """Epochs elapsed since the deployed profile was collected."""
        deployed = self.deployed()
        if deployed is None:
            return None
        return max(0, epoch - deployed.provenance.epoch)

    # -- persistence --------------------------------------------------------

    def save(self, directory: Path) -> None:
        """Write every version (CSV bundle + provenance JSON) + the pointer."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for version in self.versions:
            vdir = directory / f"v{version.version:04d}"
            vdir.mkdir(parents=True, exist_ok=True)
            save_bundle(version.bundle, vdir)
            (vdir / "provenance.json").write_text(
                json.dumps(version.provenance.as_dict(), indent=2) + "\n"
            )
        (directory / "store.json").write_text(json.dumps({
            "workload": self.workload,
            "versions": len(self.versions),
            "deployed_version": self.deployed_version,
        }, indent=2) + "\n")

    @classmethod
    def load(cls, directory: Path) -> "ProfileStore":
        directory = Path(directory)
        meta = json.loads((directory / "store.json").read_text())
        store = cls(meta["workload"])
        for number in range(1, meta["versions"] + 1):
            vdir = directory / f"v{number:04d}"
            provenance = ProfileProvenance.from_dict(
                json.loads((vdir / "provenance.json").read_text())
            )
            store.publish(load_bundle(vdir), provenance)
        if meta.get("deployed_version") is not None:
            store.deploy(meta["deployed_version"])
        return store

    def describe(self) -> str:
        lines = [f"profile store [{self.workload}]: {len(self.versions)} "
                 f"version(s), deployed="
                 + (f"v{self.deployed_version}" if self.deployed_version
                    else "none")]
        for version in self.versions:
            marker = " *" if version.version == self.deployed_version else "  "
            lines.append(marker + version.describe())
        return "\n".join(lines)
