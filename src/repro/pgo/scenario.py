"""Seeded multi-epoch drift scenarios: synthetic traffic over real traces.

The simulator is deterministic — re-running a workload reproduces its
trace bit-for-bit — so "traffic drift" is modelled the way a fleet sees
it: live traffic is a *weighted mix* of traffic variants (endpoint
populations exercising overlapping but different method/object subsets),
and the mix shifts over epochs.  :func:`synthesize_variants` derives the
variants from the workload's genuinely traced profile with seeded subset
sampling + rotation, so each variant touches a different (but real)
slice of the program in a different first-use order; a layout built for
one variant's mix then measurably underperforms when another variant
dominates — exactly the staleness the loop must detect and repair.

:func:`run_scenario` drives a :class:`~repro.pgo.loop.PgoLoop` through a
scripted schedule: steady traffic, a genuine shift at ``drift_epoch``
(the loop must auto-refresh and strictly cut replayed faults), and
optionally an injected-bad candidate at ``inject_bad_epoch`` (the canary
gate must quarantine it and roll back).  The whole scenario is a pure
function of ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..eval.pipeline import StrategySpec, WorkloadPipeline
from ..obs import metrics
from ..ordering.profiles import (
    CallCountProfile,
    CodeOrderProfile,
    HeapOrderProfile,
    ProfileBundle,
)
from ..robustness.chaos import ChaosPolicy
from ..validation.mutate import MUTATE_SWAP_CU_OFFSETS, LayoutMutationPlan
from .drift import DriftThresholds
from .loop import (
    ACTION_REFRESH,
    ACTION_RETAIN,
    ACTION_ROLLBACK,
    CanaryPolicy,
    EpochOutcome,
    PgoLoop,
)
from .merge import WeightedProfile


@dataclass(frozen=True)
class TrafficVariant:
    """One synthetic traffic population (a slice of the true trace)."""

    name: str
    bundle: ProfileBundle


def _perturb_sequence(items: Sequence, universe: Sequence,
                      rng: random.Random, drop_fraction: float,
                      adopt_fraction: float) -> List:
    """A seeded traffic shift over ``items``: drop, rotate, adopt cold units.

    Dropping and *adopting* change which units this traffic touches (what
    drives distinct-page fault counts — adopted units come from
    ``universe``, the binary's full population, modelling a new endpoint
    turning cold code hot); rotating changes the first-use *order* (what
    drives rank distance).  Adopted units land interleaved through the
    front of the order — they are the shifted traffic's new hot set, and
    a stale layout has them scattered at default positions.
    """
    items = list(items)
    if len(items) <= 1:
        return items
    keep = max(1, len(items) - int(round(len(items) * drop_fraction)))
    chosen = sorted(rng.sample(range(len(items)), keep))
    subset = [items[index] for index in chosen]
    if len(subset) > 1:
        pivot = rng.randrange(1, len(subset))
        subset = subset[pivot:] + subset[:pivot]
    hot = set(items)
    cold = [unit for unit in universe if unit not in hot]
    adopt = min(len(cold), int(round(len(items) * adopt_fraction)))
    if adopt > 0:
        for unit in rng.sample(cold, adopt):
            subset.insert(rng.randrange(0, max(1, len(subset) // 2) + 1),
                          unit)
    return subset


def population(binary) -> Dict[str, Dict[str, List]]:
    """The full unit population of a built binary, in default-layout order.

    ``{"code": {kind: [units...]}, "heap": {strategy: [ids...]}}`` — the
    universe shifted traffic adopts newly-hot units from.
    """
    code: Dict[str, List] = {
        "cu": [placed.cu.name for placed in binary.text.placed],
    }
    seen = set()
    methods: List[str] = []
    for placed in binary.text.placed:
        for member in placed.cu.members:
            if member.signature not in seen:
                seen.add(member.signature)
                methods.append(member.signature)
    code["method"] = methods
    heap: Dict[str, List] = {}
    for obj in binary.heap.ordered:
        for strategy, object_id in obj.ids.items():
            heap.setdefault(strategy, []).append(object_id)
    return {"code": code, "heap": heap}


def synthesize_variants(
    base: ProfileBundle,
    count: int = 3,
    seed: int = 7,
    drop_fraction: float = 0.35,
    adopt_fraction: float = 0.75,
    universe: Optional[Dict[str, Dict[str, List]]] = None,
) -> List[TrafficVariant]:
    """Derive ``count`` traffic variants from one genuinely traced bundle.

    Variant 0 (``steady``) is the traced profile itself; each further
    variant drops a seeded ~``drop_fraction`` of every ordering component,
    rotates the remainder, and (when a ``universe`` from
    :func:`population` is given) adopts ~``adopt_fraction`` previously
    cold units — a traffic population with a genuinely different hot set,
    which is what makes a stale layout *cost* faults rather than merely
    look reordered.  Call counts are shared (the same code runs, at
    shifted frequencies the merge averages out).  Deterministic in
    ``seed``.
    """
    universe = universe or {"code": {}, "heap": {}}
    variants = [TrafficVariant(name="steady", bundle=base)]
    for index in range(1, max(1, count)):
        rng = random.Random((seed << 8) | index)
        bundle = ProfileBundle()
        for kind in sorted(base.code):
            bundle.code[kind] = CodeOrderProfile(
                kind=kind,
                signatures=_perturb_sequence(
                    base.code[kind].signatures,
                    universe["code"].get(kind, ()),
                    rng, drop_fraction, adopt_fraction),
            )
        for strategy in sorted(base.heap):
            bundle.heap[strategy] = HeapOrderProfile(
                strategy=strategy,
                ids=_perturb_sequence(
                    base.heap[strategy].ids,
                    universe["heap"].get(strategy, ()),
                    rng, drop_fraction, adopt_fraction),
            )
        bundle.calls = CallCountProfile(counts=dict(base.calls.counts))
        variants.append(TrafficVariant(name=f"shift-{index}", bundle=bundle))
    return variants


@dataclass(frozen=True)
class DriftScenario:
    """A scripted multi-epoch traffic schedule (pure function of seed)."""

    epochs: int = 3
    seed: int = 7
    #: epoch at which live traffic genuinely shifts (variant 1 dominates)
    drift_epoch: int = 1
    #: epoch whose drift-triggered candidate is damaged before the gate
    #: (traffic shifts again here so a rebuild actually happens); None =
    #: no injection
    inject_bad_epoch: Optional[int] = None
    #: how many traffic variants to synthesize
    variants: int = 3
    drop_fraction: float = 0.35
    #: fraction of the hot set each shifted variant replaces with
    #: previously cold units (new-endpoint traffic)
    adopt_fraction: float = 0.75
    mutation: str = MUTATE_SWAP_CU_OFFSETS

    def mix_weights(self, epoch: int, count: int) -> Dict[int, float]:
        """The traffic mix at ``epoch``: ``{variant index: share}``.

        Pre-drift traffic is pure ``steady`` — the future-hot variants
        must be genuinely *unseen* at bootstrap, or their units would be
        baked into the stale layout and drift would cost nothing.  After
        each shift the previously dominant variant keeps a small residual
        share (traffic moves, it does not teleport).
        """
        if self.inject_bad_epoch is not None and epoch >= self.inject_bad_epoch:
            shift = 2
        elif epoch >= self.drift_epoch:
            shift = 1
        else:
            shift = 0
        shift = min(shift, count - 1)
        if shift == 0:
            return {0: 1.0}
        mix = {0: 0.10, shift: 0.85}
        # residual share of the variant that dominated the previous phase
        previous = min(shift - 1, count - 1)
        if previous > 0:
            mix[previous] = 0.05
        else:
            mix[0] = 0.15
        return mix


@dataclass
class ScenarioOutcome:
    """Everything a scenario run produced, JSON-ready."""

    workload: str
    strategy: str
    scenario: DriftScenario
    bootstrap: EpochOutcome
    epochs: List[EpochOutcome] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)

    @property
    def refreshes(self) -> int:
        return sum(1 for e in self.epochs if e.action == ACTION_REFRESH)

    @property
    def rollbacks(self) -> int:
        return sum(1 for e in self.epochs if e.action == ACTION_ROLLBACK)

    @property
    def retained(self) -> int:
        return sum(1 for e in self.epochs if e.action == ACTION_RETAIN)

    @property
    def stale_served(self) -> int:
        return sum(1 for e in self.epochs if e.stale_served)

    @property
    def unguarded_regressions(self) -> int:
        return sum(1 for e in self.epochs if e.unguarded_regression)

    @property
    def ok(self) -> bool:
        """The headline invariant: no epoch shipped an unguarded loss."""
        return self.unguarded_regressions == 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "strategy": self.strategy,
            "seed": self.scenario.seed,
            "epochs": [e.as_dict() for e in self.epochs],
            "bootstrap": self.bootstrap.as_dict(),
            "refreshes": self.refreshes,
            "rollbacks": self.rollbacks,
            "retained": self.retained,
            "stale_served": self.stale_served,
            "quarantined": list(self.quarantined),
            "unguarded_regressions": self.unguarded_regressions,
            "ok": self.ok,
        }

    def describe(self) -> str:
        lines = [
            f"pgo scenario [{self.workload} / {self.strategy}] "
            f"seed {self.scenario.seed}: {len(self.epochs)} epoch(s), "
            f"{self.refreshes} refresh(es), {self.rollbacks} rollback(s), "
            f"{self.retained} retained, "
            f"{self.unguarded_regressions} unguarded regression(s)",
            self.bootstrap.describe(),
        ]
        lines.extend(e.describe() for e in self.epochs)
        if self.quarantined:
            lines.append("quarantined candidate layout(s): "
                         + "; ".join(self.quarantined))
        lines.append("invariant: deployed layout never regressed past the "
                     "gate threshold"
                     if self.ok else
                     "INVARIANT VIOLATED: an epoch shipped an unguarded "
                     "regression")
        return "\n".join(lines)


def run_scenario(
    pipeline: WorkloadPipeline,
    strategy: StrategySpec,
    scenario: Optional[DriftScenario] = None,
    thresholds: Optional[DriftThresholds] = None,
    canary: Optional[CanaryPolicy] = None,
    chaos: Optional[ChaosPolicy] = None,
) -> ScenarioOutcome:
    """Drive one loop through a scripted drift scenario; deterministic."""
    scenario = scenario or DriftScenario()
    profiled = pipeline.profile(seed=scenario.seed)
    universe = population(pipeline.build_baseline(seed=scenario.seed))
    variants = synthesize_variants(
        profiled.profiles, count=scenario.variants, seed=scenario.seed,
        drop_fraction=scenario.drop_fraction,
        adopt_fraction=scenario.adopt_fraction,
        universe=universe,
    )
    loop = PgoLoop(pipeline, strategy, thresholds=thresholds, canary=canary,
                   chaos=chaos, seed=scenario.seed)

    def mix_for(epoch: int) -> List[WeightedProfile]:
        weights = scenario.mix_weights(epoch, len(variants))
        return [
            WeightedProfile(label=variants[index].name, weight=weight,
                            bundle=variants[index].bundle)
            for index, weight in sorted(weights.items())
        ]

    bootstrap = loop.bootstrap(mix_for(0), epoch=0)
    epochs: List[EpochOutcome] = []
    for epoch in range(scenario.epochs):
        plan = None
        if epoch == scenario.inject_bad_epoch:
            plan = LayoutMutationPlan.single(scenario.mutation,
                                             pick=scenario.seed)
        epochs.append(loop.observe(mix_for(epoch), epoch,
                                   mutation_plan=plan))
    outcome = ScenarioOutcome(
        workload=pipeline.workload.name,
        strategy=strategy.name,
        scenario=scenario,
        bootstrap=bootstrap,
        epochs=epochs,
        quarantined=[entry.describe()
                     for entry in loop.quarantine.entries.values()],
    )
    metrics().gauge("pgo.scenario.unguarded_regressions",
                    float(outcome.unguarded_regressions))
    return outcome
