"""Salvage-aware trace ingestion and weighted profile merge with provenance.

The profile service's front door: raw per-thread trace files from N
traffic slices come in (possibly damaged — fleets lose flush chunks), the
PR-1 lenient salvage pass recovers what it can, sources that yield no
usable records are *rejected* rather than silently diluting the merge,
and the survivors are folded by :func:`repro.ordering.profiles.merge_bundles`
into one first-use ordering profile whose :class:`ProfileProvenance`
records exactly which sources voted at which weights.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..ordering.errors import OrderingError
from ..ordering.profiles import ProfileBundle, merge_bundles
from ..postproc.framework import build_profiles
from .lifecycle import ProfileProvenance, TraceSource


@dataclass(frozen=True)
class WeightedTrace:
    """Raw trace files from one traffic slice, pre-post-processing."""

    label: str
    weight: float
    trace_files: Tuple[bytes, ...] = ()


@dataclass(frozen=True)
class WeightedProfile:
    """One post-processed traffic slice ready to vote in a merge."""

    label: str
    weight: float
    bundle: ProfileBundle
    #: usable records behind the bundle (0 = synthetic / unknown)
    records: int = 0
    salvaged: bool = False


def ingest_traces(
    manifest: object,
    traces: Sequence[WeightedTrace],
    min_records: int = 1,
) -> Tuple[List[WeightedProfile], List[str]]:
    """Post-process raw traces leniently; reject sources with no usable data.

    Inputs: the instrumented build's manifest and N weighted raw-trace
    sources.  Each source runs through the PR-1 salvage path
    (``build_profiles(..., lenient=True)``); a source whose salvage yields
    fewer than ``min_records`` usable records is dropped with a note
    instead of contributing a degenerate vote.  Returns ``(kept sources,
    rejection notes)`` — the caller decides whether an empty ``kept`` is
    fatal (the merge itself will raise a typed :class:`OrderingError`).
    """
    kept: List[WeightedProfile] = []
    notes: List[str] = []
    for trace in traces:
        bundle = build_profiles(manifest, list(trace.trace_files),
                                lenient=True)
        completeness = bundle.completeness
        usable = completeness.usable_records if completeness else 0
        if usable < min_records:
            detail = completeness.summary() if completeness else "no traces"
            notes.append(
                f"rejected trace source {trace.label!r}: {usable} usable "
                f"record(s) below the {min_records} floor ({detail})"
            )
            continue
        kept.append(WeightedProfile(
            label=trace.label,
            weight=trace.weight,
            bundle=bundle,
            records=usable,
            salvaged=not (completeness is None or completeness.complete),
        ))
    return kept, notes


def coalesce_mix(mix: Sequence[WeightedProfile]) -> List[WeightedProfile]:
    """Fold duplicate-content sources into one reweighted vote.

    The merge primitives treat identical inputs as an error (silent
    double-voting); a traffic *mix* legitimately produces identical
    bundles — two endpoints exercising the same paths — so the mix layer
    coalesces them by content digest, summing weights, before merging.
    """
    by_digest: Dict[str, WeightedProfile] = {}
    order: List[str] = []
    for source in mix:
        digest = source.bundle.digest()
        if digest in by_digest:
            merged = by_digest[digest]
            by_digest[digest] = replace(
                merged,
                weight=merged.weight + source.weight,
                label=f"{merged.label}+{source.label}",
                records=merged.records + source.records,
                salvaged=merged.salvaged or source.salvaged,
            )
        else:
            by_digest[digest] = source
            order.append(digest)
    return [by_digest[digest] for digest in order]


def merge_mix(
    mix: Sequence[WeightedProfile],
    workload: str,
    epoch: int,
    notes: Sequence[str] = (),
) -> Tuple[ProfileBundle, ProfileProvenance]:
    """Merge a traffic mix into one profile + its provenance record.

    Raises the merge layer's typed :class:`OrderingError` on degenerate
    mixes (empty after rejection, all-zero weights); duplicate-content
    sources are coalesced first (see :func:`coalesce_mix`), so only truly
    broken inputs raise.
    """
    mix = coalesce_mix(mix)
    if not mix:
        raise OrderingError(
            f"no usable trace sources survived ingestion for {workload!r}; "
            "cannot produce a merged profile", kind="profile-bundle",
        )
    bundle = merge_bundles([source.bundle for source in mix],
                           [source.weight for source in mix])
    provenance = ProfileProvenance(
        workload=workload,
        epoch=epoch,
        sources=tuple(
            TraceSource(
                label=source.label,
                weight=source.weight,
                records=source.records,
                salvaged=source.salvaged,
                digest=source.bundle.digest(),
            )
            for source in mix
        ),
        notes=tuple(notes),
    )
    return bundle, provenance
