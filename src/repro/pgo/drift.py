"""Drift detection: is the deployed layout still right for live traffic?

Two complementary signals, both cheap enough to run every epoch:

* **rank distance** — a normalized Spearman-footrule over first-use
  orderings: how far each symbol/object moved between the profile the
  deployed layout was built from and the profile live traffic produces
  now.  Entries absent from one side sit at normalized rank 1.0 ("after
  everything seen"), so churn — new hot endpoints, vanished ones — counts
  as movement.  0.0 = identical orderings, →1.0 = unrelated.
* **replayed fault delta** — the deployed *layout* replayed under the
  live profile through the paging simulator: touch the live first-use
  order against the deployed binary's actual section layout in a fresh
  :class:`~repro.runtime.paging.PageCache` and count first-touch faults.
  Compared against the fault count recorded when the layout was deployed
  (its traffic-it-was-built-for baseline), this measures what staleness
  actually *costs*, not just that orderings moved.

Either signal crossing its :class:`DriftThresholds` bound marks the
:class:`DriftReport` drifted; the loop then rebuilds a candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..eval.pipeline import StrategySpec
from ..image.binary import NativeImageBinary
from ..image.sections import HEAP_SECTION, PAGE_SIZE, TEXT_SECTION
from ..ordering.profiles import ProfileBundle
from ..runtime.executor import ExecutionConfig
from ..runtime.paging import PageCache


# ---------------------------------------------------------------------------
# Fault replay through the paging simulator
# ---------------------------------------------------------------------------


def replay_faults(
    binary: NativeImageBinary,
    bundle: ProfileBundle,
    spec: StrategySpec,
    config: Optional[ExecutionConfig] = None,
) -> Dict[str, int]:
    """First-touch faults of ``bundle``'s first-use order on ``binary``.

    Touches a fresh page cache the way startup would: the native-blob
    pages the loader always drags in, then every code unit in the
    profile's first-use order (CU roots or method member ranges, per the
    strategy's code kind), then every heap object the profile's ID order
    names (IDs are assigned for all strategies on every build, so replay
    works against any binary).  Returns per-section fault counts.  Pure:
    no interpreter run, same inputs → same counts.
    """
    config = config or ExecutionConfig()
    cache = PageCache()
    cache.set_limit(TEXT_SECTION, binary.text.size)
    cache.set_limit(HEAP_SECTION, binary.heap.size)
    blob_pages = min(config.startup_native_pages,
                     max(binary.text.native_blob_size // PAGE_SIZE, 0))
    if blob_pages > 0:
        cache.touch(TEXT_SECTION, binary.text.native_blob_offset,
                    blob_pages * PAGE_SIZE)
    code_kind = spec.code_ordering
    if code_kind is not None:
        profile = bundle.code_profile(code_kind)
        if profile is not None:
            _touch_code(cache, binary, code_kind, profile.signatures)
    heap_kind = spec.heap_ordering
    if heap_kind is not None:
        profile = bundle.heap_profile(heap_kind)
        if profile is not None:
            _touch_heap(cache, binary, heap_kind, profile.ids)
    return cache.snapshot_counts()


def _touch_code(cache: PageCache, binary: NativeImageBinary,
                kind: str, signatures: Sequence[str]) -> None:
    # "cu-opt" profiles list CU roots in search-derived placement order;
    # their replay semantics are whole-CU touches, exactly like "cu".
    if kind in ("cu", "cu-opt"):
        for signature in signatures:
            placed = binary.placed_cu_for_root(signature)
            if placed is not None:
                cache.touch(TEXT_SECTION, placed.offset, placed.cu.size)
        return
    # method kind: touch each method's member range wherever it landed
    members: Dict[str, Tuple[int, int]] = {}
    for placed in binary.text.placed:
        for member in placed.cu.members:
            members.setdefault(member.signature, placed.member_range(member))
    for signature in signatures:
        span = members.get(signature)
        if span is not None:
            cache.touch(TEXT_SECTION, span[0], span[1])


def _touch_heap(cache: PageCache, binary: NativeImageBinary,
                strategy: str, ids: Sequence[int]) -> None:
    from ..ordering.ids import resolve_id_strategy

    id_strategy = resolve_id_strategy(strategy)  # "heap-opt" -> "heap_path"
    by_id: Dict[int, List] = {}
    for obj in binary.heap.ordered:
        object_id = obj.ids.get(id_strategy)
        if object_id is not None:
            by_id.setdefault(object_id, []).append(obj)
    for object_id in ids:
        for obj in by_id.get(object_id, ()):
            cache.touch(HEAP_SECTION, obj.address, obj.size)


def relevant_faults(counts: Dict[str, int], spec: StrategySpec) -> int:
    """The fault metric the strategy is judged on (mirrors the paper)."""
    text = counts.get(TEXT_SECTION, 0)
    heap = counts.get(HEAP_SECTION, 0)
    if spec.is_code and spec.is_heap:
        return text + heap
    if spec.is_code:
        return text
    if spec.is_heap:
        return heap
    return text + heap


def expected_faults(
    binary: NativeImageBinary,
    mix: Sequence[Tuple[ProfileBundle, float]],
    spec: StrategySpec,
    config: Optional[ExecutionConfig] = None,
) -> float:
    """Weighted mean replayed fault count of ``binary`` under a traffic mix.

    ``mix`` is ``(bundle, weight)`` pairs; weights are normalized, so the
    result is the expected first-touch fault count of one start drawn
    from that traffic.  Exact rational arithmetic keeps the expectation
    independent of pair order and weight scale.
    """
    if not mix:
        return 0.0
    total = Fraction(0)
    weight_sum = Fraction(0)
    for bundle, weight in mix:
        fraction = Fraction(weight)
        if fraction == 0:
            continue
        counts = replay_faults(binary, bundle, spec, config)
        total += fraction * relevant_faults(counts, spec)
        weight_sum += fraction
    if weight_sum == 0:
        return 0.0
    return float(total / weight_sum)


# ---------------------------------------------------------------------------
# Rank distance
# ---------------------------------------------------------------------------


def _footrule(left: Sequence, right: Sequence) -> float:
    """Normalized Spearman footrule over the union; absent = rank 1.0."""
    left_ranks = {entry: Fraction(index + 1, len(left) + 1)
                  for index, entry in enumerate(left)}
    right_ranks = {entry: Fraction(index + 1, len(right) + 1)
                   for index, entry in enumerate(right)}
    union = set(left_ranks) | set(right_ranks)
    if not union:
        return 0.0
    one = Fraction(1)
    total = sum(
        abs(left_ranks.get(entry, one) - right_ranks.get(entry, one))
        for entry in union
    )
    return float(total / len(union))


def rank_distance(
    deployed: ProfileBundle,
    live: ProfileBundle,
    spec: StrategySpec,
) -> Tuple[float, Dict[str, float]]:
    """Per-component footrule distances + the max as the headline score.

    Only the components the strategy actually lays out are compared (a
    heap-only strategy does not drift because code orderings moved).
    """
    components: Dict[str, float] = {}
    if spec.code_ordering is not None:
        kind = spec.code_ordering
        left = deployed.code_profile(kind)
        right = live.code_profile(kind)
        components[f"code:{kind}"] = _footrule(
            left.signatures if left else (),
            right.signatures if right else (),
        )
    if spec.heap_ordering is not None:
        kind = spec.heap_ordering
        left = deployed.heap_profile(kind)
        right = live.heap_profile(kind)
        components[f"heap:{kind}"] = _footrule(
            left.ids if left else (), right.ids if right else (),
        )
    score = max(components.values(), default=0.0)
    return score, components


# ---------------------------------------------------------------------------
# The detector
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DriftThresholds:
    """When is drift actionable?  Either bound crossing triggers."""

    #: max tolerated rank distance (footrule, 0..1) before re-layout
    max_rank_distance: float = 0.15
    #: max tolerated relative fault regression of the deployed layout
    #: under live traffic vs its deployment-time baseline
    max_fault_regression: float = 0.05


@dataclass
class DriftReport:
    """Everything one drift check measured, and the verdict."""

    workload: str = ""
    strategy: str = ""
    epoch: int = 0
    deployed_version: int = 0
    live_digest: str = ""
    #: headline rank distance (max over components)
    rank_distance: float = 0.0
    components: Dict[str, float] = field(default_factory=dict)
    #: deployed layout replayed under live traffic (expected faults)
    deployed_live_faults: float = 0.0
    #: the deployment-time baseline it is judged against
    deployed_baseline_faults: float = 0.0
    #: relative regression ((live - baseline) / baseline); 0 when baseline=0
    fault_regression: float = 0.0
    thresholds: DriftThresholds = field(default_factory=DriftThresholds)
    drifted: bool = False
    reasons: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "strategy": self.strategy,
            "epoch": self.epoch,
            "deployed_version": self.deployed_version,
            "live_digest": self.live_digest,
            "rank_distance": self.rank_distance,
            "components": dict(self.components),
            "deployed_live_faults": self.deployed_live_faults,
            "deployed_baseline_faults": self.deployed_baseline_faults,
            "fault_regression": self.fault_regression,
            "drifted": self.drifted,
            "reasons": list(self.reasons),
        }

    def describe(self) -> str:
        verdict = "DRIFTED" if self.drifted else "fresh"
        head = (f"drift check [{self.workload} / {self.strategy}] "
                f"epoch {self.epoch} vs profile v{self.deployed_version}: "
                f"{verdict} (rank distance {self.rank_distance:.3f}, "
                f"fault regression {self.fault_regression:+.1%})")
        if not self.reasons:
            return head
        return head + "\n" + "\n".join(f"  - {r}" for r in self.reasons)


def detect_drift(
    *,
    workload: str,
    spec: StrategySpec,
    deployed_profile: ProfileBundle,
    deployed_binary: NativeImageBinary,
    live_bundle: ProfileBundle,
    live_mix: Sequence[Tuple[ProfileBundle, float]],
    epoch: int,
    deployed_version: int = 0,
    baseline_faults: float = 0.0,
    thresholds: Optional[DriftThresholds] = None,
    config: Optional[ExecutionConfig] = None,
) -> DriftReport:
    """Compare the deployed layout's profile against live traffic.

    Inputs: the profile the deployed layout was built from, the deployed
    binary itself (for fault replay), the merged live profile and the raw
    live mix it came from, plus the deployment-time ``baseline_faults``.
    Returns a :class:`DriftReport`; never raises on content — a live
    profile missing whole components simply scores maximal movement.
    """
    thresholds = thresholds or DriftThresholds()
    score, components = rank_distance(deployed_profile, live_bundle, spec)
    live_faults = expected_faults(deployed_binary, live_mix, spec, config)
    if baseline_faults > 0:
        regression = (live_faults - baseline_faults) / baseline_faults
    else:
        regression = 0.0
    report = DriftReport(
        workload=workload,
        strategy=spec.name,
        epoch=epoch,
        deployed_version=deployed_version,
        live_digest=live_bundle.digest(),
        rank_distance=score,
        components=components,
        deployed_live_faults=live_faults,
        deployed_baseline_faults=baseline_faults,
        fault_regression=regression,
        thresholds=thresholds,
    )
    if score > thresholds.max_rank_distance:
        report.drifted = True
        report.reasons.append(
            f"rank distance {score:.3f} exceeds the "
            f"{thresholds.max_rank_distance:.3f} threshold "
            f"({_worst_component(components)})"
        )
    if regression > thresholds.max_fault_regression:
        report.drifted = True
        report.reasons.append(
            f"deployed layout costs {live_faults:.1f} expected faults under "
            f"live traffic vs {baseline_faults:.1f} at deployment "
            f"({regression:+.1%}, threshold "
            f"{thresholds.max_fault_regression:+.1%})"
        )
    return report


def _worst_component(components: Dict[str, float]) -> str:
    if not components:
        return "no components"
    name = max(components, key=lambda key: components[key])
    return f"worst component {name} at {components[name]:.3f}"
