"""On-disk container for built images (the "binary file").

Native Image emits ELF; we emit **SNIB** ("Simulated Native-Image Binary"),
a small container that makes the layout tangible and inspectable:

```
header   : magic "SNIB" | version u16 | mode u8 | reserved u8
           text_size u64 | heap_size u64 | symbol count u32 | object count u32
symbols  : per CU: offset u64 | size u64 | member count u32 |
           root signature (len-prefixed utf-8) |
           per member: offset u32 | size u32 | signature
objects  : per heap object: address u64 | size u32 | root flag u8 |
           type name | inclusion reason (or "") |
           incremental/structural/heap-path IDs (u64 each)
.text    : deterministic filler bytes per CU (murmur-seeded), page-padded
.svm_heap: deterministic filler bytes per object
```

The byte payload is synthetic (we have no real machine code), but offsets,
sizes, and the symbol/object tables are the real layout — enough to diff
layouts across builds or feed external analysis, like ``objdump`` output.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..util.murmur3 import murmur3_64
from .binary import NativeImageBinary

MAGIC = b"SNIB"
VERSION = 1
_MODES = {"regular": 1, "instrumented": 2, "optimized": 3}
_MODE_NAMES = {v: k for k, v in _MODES.items()}

_ID_ORDER = ("incremental_id", "structural_hash", "heap_path")


def _pack_str(text: str) -> bytes:
    data = text.encode("utf-8")
    return struct.pack("<H", len(data)) + data


def _unpack_str(data: bytes, pos: int) -> Tuple[str, int]:
    (length,) = struct.unpack_from("<H", data, pos)
    pos += 2
    return data[pos : pos + length].decode("utf-8"), pos + length


@dataclass
class SnibSymbol:
    """One compilation unit in the symbol table."""

    root_signature: str
    offset: int
    size: int
    members: List[Tuple[str, int, int]] = field(default_factory=list)  # (sig, off, size)


@dataclass
class SnibObject:
    """One heap-snapshot object in the object table."""

    type_name: str
    address: int
    size: int
    is_root: bool
    reason: str
    ids: Dict[str, int] = field(default_factory=dict)


@dataclass
class SnibImage:
    """A parsed SNIB file."""

    mode: str
    text_size: int
    heap_size: int
    symbols: List[SnibSymbol]
    objects: List[SnibObject]

    def symbol(self, root_signature: str) -> Optional[SnibSymbol]:
        for sym in self.symbols:
            if sym.root_signature == root_signature:
                return sym
        return None

    def describe(self, max_rows: int = 20) -> str:
        """objdump-style textual dump."""
        lines = [
            f"SNIB image  mode={self.mode}  .text={self.text_size} B  "
            f".svm_heap={self.heap_size} B",
            f"{len(self.symbols)} compilation units, {len(self.objects)} heap objects",
            "",
            f"{'offset':>10}  {'size':>7}  symbol",
        ]
        for sym in self.symbols[:max_rows]:
            lines.append(f"{sym.offset:#10x}  {sym.size:7d}  {sym.root_signature}")
        if len(self.symbols) > max_rows:
            lines.append(f"... and {len(self.symbols) - max_rows} more")
        lines.append("")
        lines.append(f"{'address':>10}  {'size':>7}  object")
        for obj in self.objects[:max_rows]:
            marker = f"  [{obj.reason}]" if obj.is_root else ""
            lines.append(f"{obj.address:#10x}  {obj.size:7d}  {obj.type_name}{marker}")
        if len(self.objects) > max_rows:
            lines.append(f"... and {len(self.objects) - max_rows} more")
        return "\n".join(lines)


def write_snib(binary: NativeImageBinary, path: Path) -> int:
    """Serialize ``binary`` to ``path``; returns the file size in bytes."""
    symbols = bytearray()
    for placed in binary.text.placed:
        cu = placed.cu
        symbols += struct.pack("<QQI", placed.offset, cu.size, len(cu.members))
        symbols += _pack_str(cu.name)
        for member in cu.members:
            symbols += struct.pack("<II", member.offset, member.size)
            symbols += _pack_str(member.signature)

    objects = bytearray()
    for obj in binary.heap.ordered:
        objects += struct.pack("<QIB", obj.address, obj.size, 1 if obj.is_root else 0)
        objects += _pack_str(obj.type_name)
        objects += _pack_str(obj.root_reason or "")
        for strategy in _ID_ORDER:
            objects += struct.pack("<Q", obj.ids.get(strategy, 0))

    header = MAGIC + struct.pack(
        "<HBBQQII",
        VERSION,
        _MODES[binary.mode],
        0,
        binary.text.size,
        binary.heap.size,
        len(binary.text.placed),
        len(binary.heap.ordered),
    )

    text_payload = _section_payload(
        [(placed.offset, placed.cu.size, placed.cu.name) for placed in binary.text.placed],
        binary.text.size,
    )
    heap_payload = _section_payload(
        [(obj.address, obj.size, obj.type_name) for obj in binary.heap.ordered],
        binary.heap.size,
    )

    blob = header + bytes(symbols) + bytes(objects) + text_payload + heap_payload
    Path(path).write_bytes(blob)
    return len(blob)


def _section_payload(entries: List[Tuple[int, int, str]], total: int) -> bytes:
    """Deterministic filler bytes: each entity stamps its own hash pattern."""
    payload = bytearray(total)
    for offset, size, name in entries:
        pattern = murmur3_64(name.encode("utf-8")).to_bytes(8, "little")
        end = min(offset + size, total)
        for index in range(offset, end):
            payload[index] = pattern[(index - offset) % 8]
    return bytes(payload)


def read_snib(path: Path) -> SnibImage:
    """Parse a SNIB file's header and tables (payload bytes are skipped)."""
    data = Path(path).read_bytes()
    if data[:4] != MAGIC:
        raise ValueError(f"{path}: not a SNIB image")
    version, mode_code, _reserved, text_size, heap_size, n_symbols, n_objects = (
        struct.unpack_from("<HBBQQII", data, 4)
    )
    if version != VERSION:
        raise ValueError(f"{path}: unsupported SNIB version {version}")
    mode = _MODE_NAMES.get(mode_code)
    if mode is None:
        raise ValueError(f"{path}: unknown mode code {mode_code}")
    pos = 4 + struct.calcsize("<HBBQQII")

    symbols: List[SnibSymbol] = []
    for _ in range(n_symbols):
        offset, size, n_members = struct.unpack_from("<QQI", data, pos)
        pos += struct.calcsize("<QQI")
        root, pos = _unpack_str(data, pos)
        members: List[Tuple[str, int, int]] = []
        for _ in range(n_members):
            m_off, m_size = struct.unpack_from("<II", data, pos)
            pos += 8
            signature, pos = _unpack_str(data, pos)
            members.append((signature, m_off, m_size))
        symbols.append(
            SnibSymbol(root_signature=root, offset=offset, size=size, members=members)
        )

    objects: List[SnibObject] = []
    for _ in range(n_objects):
        address, size, root_flag = struct.unpack_from("<QIB", data, pos)
        pos += struct.calcsize("<QIB")
        type_name, pos = _unpack_str(data, pos)
        reason, pos = _unpack_str(data, pos)
        ids = {}
        for strategy in _ID_ORDER:
            (value,) = struct.unpack_from("<Q", data, pos)
            pos += 8
            ids[strategy] = value
        objects.append(
            SnibObject(
                type_name=type_name,
                address=address,
                size=size,
                is_root=bool(root_flag),
                reason=reason,
                ids=ids,
            )
        )

    return SnibImage(
        mode=mode,
        text_size=text_size,
        heap_size=heap_size,
        symbols=symbols,
        objects=objects,
    )
