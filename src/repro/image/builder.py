"""The Native-Image build pipeline (paper Fig. 1).

Build modes:

* ``regular`` — the baseline: default inlining, alphabetical CU order,
  traversal-order heap layout.
* ``instrumented`` — the profiling build: probe bytes inflate method sizes
  (diverging the inliner), the profiler's runtime state joins the image
  heap, and the binary carries the instrumentation manifest with per-object
  identities.
* ``optimized`` — the profile-guided build: call counts drive extra
  inlining, final statics are constant-folded (changing heap roots), and
  the requested code-/heap-ordering strategies rearrange the sections.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..graal.inliner import InlinerConfig, default_size_fn, form_compilation_units
from ..graal.reachability import analyze
from ..graal.transform import clone_program, fold_final_statics
from ..minijava.bytecode import Program
from ..obs import phase
from ..ordering.code_order import default_order, order_compilation_units
from ..ordering.heap_order import MatchReport, match_and_order
from ..ordering.ids import (
    DEFAULT_MAX_DEPTH,
    assign_heap_path_hashes,
    assign_incremental_ids,
    assign_structural_hashes,
)
from ..ordering.profiles import ProfileBundle
from ..profiling.instrument import instrumented_size_fn, plan_instrumentation
from ..vm.values import ArrayInstance
from .binary import (
    MODE_INSTRUMENTED,
    MODE_OPTIMIZED,
    MODE_REGULAR,
    NativeImageBinary,
)
from .heap import (
    REASON_DATA_SECTION,
    BuildTimeInitializer,
    HeapSnapshotter,
    make_extra_root,
)
from .sections import layout_heap, layout_text


@dataclass(frozen=True)
class BuildConfig:
    """Knobs of the simulated toolchain."""

    saturation_threshold: int = 5
    inliner: InlinerConfig = field(default_factory=InlinerConfig)
    #: statically linked native code at the end of .text (Appendix A)
    native_blob_bytes: int = 64 * 1024
    structural_max_depth: int = DEFAULT_MAX_DEPTH
    incremental_per_type: bool = True
    heap_path_intern_special: bool = True
    #: profiler runtime buffers added to the instrumented image heap
    instrumented_buffer_objects: int = 3
    instrumented_buffer_ints: int = 2048
    #: profiler metadata strings in the instrumented image heap; these shift
    #: the per-type counters of the (numerous) String objects between the
    #: instrumented and optimized builds
    instrumented_metadata_strings: int = 10

    def with_max_depth(self, depth: int) -> "BuildConfig":
        return replace(self, structural_max_depth=depth)

    def fingerprint(self) -> str:
        """Stable content digest of every build knob.

        Part of the content-addressed cache key of each built image: any
        change to any field (including nested :class:`InlinerConfig`
        thresholds) yields a different fingerprint, so cached images can
        never be served across configuration changes.
        """
        from ..cache.keys import fingerprint
        return fingerprint(self)


class NativeImageBuilder:
    """Builds binaries from a compiled MiniJava program."""

    def __init__(self, program: Program, config: Optional[BuildConfig] = None) -> None:
        self._program = program
        self.config = config or BuildConfig()
        self.last_match_report: Optional[MatchReport] = None

    def build(
        self,
        mode: str = MODE_REGULAR,
        profiles: Optional[ProfileBundle] = None,
        code_ordering: Optional[str] = None,
        heap_ordering: Optional[str] = None,
        seed: int = 0,
    ) -> NativeImageBinary:
        """Run the full pipeline and return the binary.

        ``code_ordering`` is ``"cu"``/``"method"``; ``heap_ordering`` is an
        ID-strategy name.  Both require ``mode="optimized"`` and profiles.
        """
        with phase("build", mode=mode, code=code_ordering or "",
                   heap=heap_ordering or "", seed=seed):
            return self._build_stages(mode, profiles, code_ordering,
                                      heap_ordering, seed)

    def _build_stages(
        self,
        mode: str,
        profiles: Optional[ProfileBundle],
        code_ordering: Optional[str],
        heap_ordering: Optional[str],
        seed: int,
    ) -> NativeImageBinary:
        if mode not in (MODE_REGULAR, MODE_INSTRUMENTED, MODE_OPTIMIZED):
            raise ValueError(f"unknown build mode {mode!r}")
        if mode == MODE_OPTIMIZED and profiles is None:
            raise ValueError("optimized builds require profiles")
        if (code_ordering or heap_ordering) and mode != MODE_OPTIMIZED:
            raise ValueError("ordering strategies apply to optimized builds only")
        config = self.config

        # 1-2. per-build program copy + points-to (RTA) analysis
        program = clone_program(self._program)
        reachability = analyze(program, config.saturation_threshold)

        # 3. build-time class initialization (heap snapshotting, phase 1)
        initializer = BuildTimeInitializer(program, seed=seed)
        initializer.run(reachability)
        statics = {name: holder for name, holder in initializer.statics.items()}

        # 4. PGO constant folding (optimized builds)
        folded = []
        call_counts = None
        if mode == MODE_OPTIMIZED:
            assert profiles is not None
            folded = fold_final_statics(
                program, statics, frozenset(reachability.methods)
            )
            call_counts = profiles.calls

        # 5. instrumentation planning (profiling builds)
        manifest = None
        size_fn = default_size_fn
        if mode == MODE_INSTRUMENTED:
            manifest = plan_instrumentation(
                program, reachability.reachable_methods(program)
            )
            size_fn = instrumented_size_fn(manifest)

        # 6. inlining: form compilation units
        cus = form_compilation_units(
            program, reachability, size_fn, config.inliner, call_counts
        )

        # 7. code ordering
        code_profile = None
        if code_ordering is not None:
            assert profiles is not None
            code_profile = profiles.code_profile(code_ordering)
            if code_profile is None:
                raise ValueError(f"profiles carry no {code_ordering!r} code ordering")
            with phase("order", kind="code", strategy=code_ordering):
                ordered_cus = order_compilation_units(cus, code_profile)
        else:
            ordered_cus = default_order(cus)

        # 8. .text layout
        text = layout_text(ordered_cus, config.native_blob_bytes)

        # 9-10. heap snapshot traversal + object identities
        extra_roots = []
        if mode == MODE_INSTRUMENTED:
            for index in range(config.instrumented_buffer_objects):
                buffer = ArrayInstance("int", config.instrumented_buffer_ints)
                extra_roots.append(make_extra_root(buffer, REASON_DATA_SECTION))
            for index in range(config.instrumented_metadata_strings):
                metadata = f"svm-profiler-metadata-{index:03d}"
                extra_roots.append(make_extra_root(metadata, REASON_DATA_SECTION))
        snapshotter = HeapSnapshotter(program, statics, seed=seed,
                                      extra_roots=extra_roots)
        snapshot = snapshotter.snapshot(
            ordered_cus, reachability, folded, initializer.resources
        )
        assign_incremental_ids(snapshot, per_type=config.incremental_per_type)
        assign_structural_hashes(snapshot, config.structural_max_depth)
        assign_heap_path_hashes(snapshot, config.heap_path_intern_special)

        # 11. heap ordering
        self.last_match_report = None
        if heap_ordering is not None:
            assert profiles is not None
            heap_profile = profiles.heap_profile(heap_ordering)
            if heap_profile is None:
                raise ValueError(f"profiles carry no {heap_ordering!r} heap ordering")
            with phase("order", kind="heap", strategy=heap_ordering):
                ordered_objects, report = match_and_order(snapshot, heap_profile)
            self.last_match_report = report
        else:
            ordered_objects = list(snapshot.objects)

        # 12. .svm_heap layout
        heap_section = layout_heap(ordered_objects)

        # 13. constant tables
        literal_objects: Dict[int, object] = {}
        for sid, literal in enumerate(program.string_literals):
            entry = snapshot.lookup(literal)
            if entry is not None:
                literal_objects[sid] = entry
        fold_objects = {}
        for fold in folded:
            entry = snapshot.lookup(fold.value)
            if entry is not None:
                fold_objects[fold.token] = entry

        # 14. instrumentation manifest completion
        if manifest is not None:
            manifest.register_cus([cu.name for cu in ordered_cus])
            manifest.object_ids = {
                obj.index: dict(obj.ids) for obj in snapshot
            }

        return NativeImageBinary(
            program=program,
            mode=mode,
            cus=ordered_cus,
            text=text,
            snapshot=snapshot,
            heap=heap_section,
            statics=statics,
            literal_objects=literal_objects,
            fold_objects=fold_objects,
            manifest=manifest,
            build_seed=seed,
            code_ordering=code_ordering,
            heap_ordering=heap_ordering,
        )
