"""Simulated Native-Image builder: sections, heap snapshot, binaries."""

from .binary import MODE_INSTRUMENTED, MODE_OPTIMIZED, MODE_REGULAR, NativeImageBinary
from .builder import BuildConfig, NativeImageBuilder
from .heap import BuildTimeInitializer, HeapObject, HeapSnapshot, HeapSnapshotter
from .fileformat import SnibImage, read_snib, write_snib
from .sections import HEAP_SECTION, PAGE_SIZE, TEXT_SECTION, layout_heap, layout_text

__all__ = [
    "MODE_INSTRUMENTED", "MODE_OPTIMIZED", "MODE_REGULAR", "NativeImageBinary",
    "BuildConfig", "NativeImageBuilder",
    "SnibImage", "read_snib", "write_snib",
    "BuildTimeInitializer", "HeapObject", "HeapSnapshot", "HeapSnapshotter",
    "HEAP_SECTION", "PAGE_SIZE", "TEXT_SECTION", "layout_heap", "layout_text",
]
