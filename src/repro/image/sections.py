"""Binary sections: ``.text`` and ``.svm_heap`` layout.

Addresses are section-relative byte offsets; the paging simulator charges
faults per 4 KiB page per section, matching how the paper attributes
perf-traced faults to section offset ranges (Sec. 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graal.cunits import CompilationUnit, CuMember
from ..util.pagemath import PAGE_SIZE, pages_spanned as _pages_spanned
from .heap import HeapObject

CU_ALIGN = 16
OBJ_ALIGN = 8
# Historical private aliases; the validation package reads the public names.
_CU_ALIGN = CU_ALIGN
_OBJ_ALIGN = OBJ_ALIGN

TEXT_SECTION = ".text"
HEAP_SECTION = ".svm_heap"


@dataclass
class PlacedCu:
    """A CU at its final offset in ``.text``."""

    cu: CompilationUnit
    offset: int

    @property
    def end(self) -> int:
        return self.offset + self.cu.size

    def member_range(self, member: CuMember) -> Tuple[int, int]:
        """Absolute (offset, size) of a member's code."""
        return self.offset + member.offset, member.size


@dataclass
class TextSection:
    """The code section: ordered CUs plus a trailing native-library blob."""

    placed: List[PlacedCu] = field(default_factory=list)
    native_blob_offset: int = 0
    native_blob_size: int = 0
    size: int = 0
    _by_root: Dict[str, PlacedCu] = field(default_factory=dict)

    def cu_for_root(self, signature: str) -> Optional[PlacedCu]:
        return self._by_root.get(signature)

    def placed_for(self, cu: CompilationUnit) -> PlacedCu:
        return self._by_root[cu.name]


def layout_text(ordered_cus: List[CompilationUnit],
                native_blob_size: int = 0) -> TextSection:
    """Assign CU base offsets in the given order, then the native blob.

    The native blob models statically linked libraries at the end of
    ``.text`` — code we do not profile or reorder (paper Appendix A).
    """
    section = TextSection()
    offset = 0
    for cu in ordered_cus:
        placed = PlacedCu(cu=cu, offset=offset)
        section.placed.append(placed)
        section._by_root[cu.name] = placed
        offset += _align(cu.size, _CU_ALIGN)
    section.native_blob_offset = _align(offset, PAGE_SIZE)
    section.native_blob_size = native_blob_size
    section.size = section.native_blob_offset + native_blob_size
    return section


@dataclass
class HeapSection:
    """The heap-snapshot section: objects at their final addresses."""

    ordered: List[HeapObject] = field(default_factory=list)
    size: int = 0


def layout_heap(ordered_objects: List[HeapObject]) -> HeapSection:
    """Assign addresses in the given order and link values back to entries.

    Runtime values gain an ``image_ref`` pointing at their snapshot entry so
    executors can charge page touches (strings are reached through the
    literal/constant tables instead, since ``str`` carries no attributes).
    """
    section = HeapSection(ordered=ordered_objects)
    address = 0
    for obj in ordered_objects:
        obj.address = address
        address += _align(obj.size, _OBJ_ALIGN)
        if not isinstance(obj.value, str):
            obj.value.image_ref = obj
    section.size = address
    return section


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def expected_text_size(cus: List[CompilationUnit], native_blob_size: int) -> int:
    """The ``.text`` byte size any permutation of ``cus`` must produce.

    Both the packed CU area and the page-aligned native blob offset are
    permutation-invariant, so reordering never changes the section size —
    the invariant the layout verifier checks.
    """
    packed = sum(_align(cu.size, CU_ALIGN) for cu in cus)
    return _align(packed, PAGE_SIZE) + native_blob_size


def expected_heap_size(objects: List[HeapObject]) -> int:
    """The ``.svm_heap`` byte size any permutation of ``objects`` must produce."""
    return sum(_align(obj.size, OBJ_ALIGN) for obj in objects)


def pages_spanned(offset: int, size: int, page_size: int = PAGE_SIZE) -> range:
    """The page indices touched by a byte range.

    Delegates to the shared :func:`repro.util.pagemath.pages_spanned` so
    section layout, the paging simulator, the Fig. 6 maps, and the
    attribution layer all agree on spanning; kept as a re-export because
    callers historically import it from here.
    """
    return _pages_spanned(offset, size, page_size)
