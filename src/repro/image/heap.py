"""Heap snapshotting: build-time initialization and object-graph traversal.

Mirrors the Native-Image process described in Sec. 2 of the paper:

* class initializers of reachable classes execute **at build time** (with
  lazy, Java-style triggering: touching an uninitialized class's statics
  runs its ``<clinit>`` first);
* the object graph is traversed in a well-defined order starting from the
  required roots — static fields of reachable classes, constants embedded
  in code, interned strings, data-section objects, and resources — and each
  discovered object records its **first parent**, the edge from that parent,
  and (for roots) its **heap-inclusion reason** (Sec. 5.3);
* by default, objects are ordered by the CU order of the code that
  references them ("objects reachable from a CU A are stored before objects
  reachable from another CU B that is stored after A").

The recorded parent/reason metadata is exactly what Algorithms 1–3 need to
compute object identities.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..minijava.bytecode import Program
from ..vm.interpreter import Interpreter
from ..vm.values import (
    ArrayInstance,
    ObjectInstance,
    ResourceBlob,
    StaticsHolder,
)
from ..graal.cunits import CompilationUnit
from ..graal.reachability import ReachabilityResult
from ..graal.transform import FoldedConstant

# Heap-inclusion reasons (paper Sec. 5.3); re-exported for convenience.
# Static-field and method-constant reasons are the signatures themselves.
from ..ordering.reasons import (  # noqa: E402  (re-export)
    REASON_DATA_SECTION,
    REASON_INTERNED_STRING,
    REASON_RESOURCE,
)

_HEADER_OBJECT = 16
_HEADER_ARRAY = 24
_REF_BYTES = 8


@dataclass
class HeapObject:
    """One object placed in the ``.svm_heap`` snapshot."""

    value: Any
    index: int  # encounter order during traversal (default layout order)
    type_name: str
    size: int
    parent: Optional["HeapObject"] = None
    parent_edge: Union[str, int, None] = None  # field descriptor or array index
    root_reason: Optional[str] = None
    address: int = -1  # assigned at section layout
    ids: Dict[str, int] = field(default_factory=dict)

    @property
    def is_root(self) -> bool:
        return self.root_reason is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"@{self.address:#x}" if self.address >= 0 else "(unplaced)"
        return f"<HeapObject #{self.index} {self.type_name} {where}>"


def object_size(value: Any) -> int:
    """Simulated size in bytes of a heap value."""
    if isinstance(value, ObjectInstance):
        return _HEADER_OBJECT + _REF_BYTES * len(value.fields)
    if isinstance(value, ArrayInstance):
        return _HEADER_ARRAY + _REF_BYTES * value.length
    if isinstance(value, StaticsHolder):
        return _HEADER_OBJECT + _REF_BYTES * len(value.fields)
    if isinstance(value, ResourceBlob):
        return _HEADER_ARRAY + value.size
    if isinstance(value, str):
        return _HEADER_ARRAY + len(value.encode("utf-8"))
    raise TypeError(f"not a heap value: {type(value).__name__}")


class HeapSnapshot:
    """The result of snapshotting: ordered objects plus lookup tables."""

    def __init__(self) -> None:
        self.objects: List[HeapObject] = []
        self._by_identity: Dict[int, HeapObject] = {}
        self._strings: Dict[str, HeapObject] = {}

    def lookup(self, value: Any) -> Optional[HeapObject]:
        """The snapshot entry for a runtime value, if present."""
        if isinstance(value, str):
            return self._strings.get(value)
        return self._by_identity.get(id(value))

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self):
        return iter(self.objects)

    # -- construction (used by the snapshotter) ------------------------------

    def add(self, obj: HeapObject) -> None:
        self.objects.append(obj)
        if isinstance(obj.value, str):
            self._strings[obj.value] = obj
        else:
            self._by_identity[id(obj.value)] = obj


class InitTriggeringStatics(dict):
    """Statics map with Java-style lazy class initialization.

    The first access to a class's statics (``GETSTATIC``/``PUTSTATIC``)
    runs its ``<clinit>``; re-entrant accesses during initialization see
    in-progress values, as in the JVM.
    """

    def __init__(self, base: Dict[str, StaticsHolder], initializer) -> None:
        super().__init__(base)
        self._initializer = initializer
        self._initialized: set = set()
        self._in_progress: set = set()

    def ensure_initialized(self, class_name: str) -> None:
        if class_name in self._initialized or class_name in self._in_progress:
            return
        self._in_progress.add(class_name)
        try:
            self._initializer(class_name)
        finally:
            self._in_progress.discard(class_name)
            self._initialized.add(class_name)

    def __getitem__(self, key: str) -> StaticsHolder:
        self.ensure_initialized(key)
        return super().__getitem__(key)


class BuildTimeInitializer:
    """Executes ``<clinit>`` methods at image build time."""

    def __init__(self, program: Program, seed: int = 0) -> None:
        self._program = program
        self._seed = seed
        self.resources: List[ResourceBlob] = []
        self._statics = InitTriggeringStatics(
            _default_statics(program), self._run_clinit
        )
        self._interp = Interpreter(program, statics=self._statics,
                                   hooks=_ResourceCollector(self.resources))

    @property
    def statics(self) -> InitTriggeringStatics:
        return self._statics

    def run(self, reachability: ReachabilityResult) -> None:
        """Initialize every reachable class.

        The outer iteration order is seed-perturbed to model the parallel
        (non-deterministic) execution of class initializers during real
        Native-Image builds (Sec. 2).  Lazy triggering keeps the *values*
        deterministic; only discovery order shifts.
        """
        names = sorted(reachability.classes)
        rng = random.Random(self._seed)
        rng.shuffle(names)
        for name in names:
            if name in self._program.classes:
                self._statics.ensure_initialized(name)

    def _run_clinit(self, class_name: str) -> None:
        cls = self._program.classes.get(class_name)
        if cls is None or cls.clinit is None:
            return
        self._interp.run_single(cls.clinit)


class _ResourceCollector:
    """Minimal hooks object collecting build-time resource registrations."""

    def __init__(self, sink: List[ResourceBlob]) -> None:
        self._sink = sink

    def __getattr__(self, name):
        if name == "on_resource":
            return self._sink.append
        if name == "leaders_for":
            return lambda method: None
        return lambda *args, **kwargs: None


def _default_statics(program: Program) -> Dict[str, StaticsHolder]:
    statics: Dict[str, StaticsHolder] = {}
    for name, cls in program.classes.items():
        fields = cls.static_fields
        statics[name] = StaticsHolder(
            name, [f.name for f in fields], [f.default_value() for f in fields]
        )
    return statics


@dataclass
class _Root:
    value: Any
    reason: str


class HeapSnapshotter:
    """Traverses the object graph and produces the default-ordered snapshot."""

    def __init__(
        self,
        program: Program,
        statics: Dict[str, StaticsHolder],
        seed: int = 0,
        extra_roots: Optional[List[_Root]] = None,
    ) -> None:
        self._program = program
        self._statics = statics
        self._seed = seed
        self._extra_roots = extra_roots or []

    def snapshot(
        self,
        ordered_cus: List[CompilationUnit],
        reachability: ReachabilityResult,
        folded: Optional[List[FoldedConstant]] = None,
        resources: Optional[List[ResourceBlob]] = None,
    ) -> HeapSnapshot:
        """Build the snapshot in default (CU-driven) order."""
        roots = self._enumerate_roots(ordered_cus, reachability, folded or [],
                                      resources or [])
        roots = _jitter(roots, self._seed)
        return self._traverse(roots)

    # -- root enumeration -----------------------------------------------------

    def _enumerate_roots(
        self,
        ordered_cus: List[CompilationUnit],
        reachability: ReachabilityResult,
        folded: List[FoldedConstant],
        resources: List[ResourceBlob],
    ) -> List[_Root]:
        roots: List[_Root] = []
        seen_statics: set = set()
        folds_by_method: Dict[str, List[FoldedConstant]] = {}
        for fold in folded:
            folds_by_method.setdefault(fold.origin_signature, []).append(fold)

        # 0. Build-internal extras first: runtime-internal state (e.g. the
        #    profiler's buffers and metadata in instrumented images) sits at
        #    the front of the data section.  This is a key divergence source:
        #    it shifts per-type encounter counters between the instrumented
        #    and optimized builds (Sec. 5.1's weakness of incremental IDs).
        roots.extend(self._extra_roots)

        # 0.5 Resources: the runtime's resource registry is traversed before
        #     user data, so resource blobs keep the "Resource" reason even
        #     when also referenced from a static field.
        for blob in resources:
            roots.append(_Root(blob, REASON_RESOURCE))

        # 1. Code-driven roots, in final CU order: interned strings, folded
        #    method constants, and statics of classes referenced by the code.
        for cu in ordered_cus:
            for member in cu.members:
                for instr in member.method.code:
                    if instr.op == "CONST_STR":
                        literal = self._program.string_literals[instr.args[0]]
                        roots.append(_Root(literal, REASON_INTERNED_STRING))
                    elif instr.op == "CONST_OBJ":
                        roots.append(_Root(instr.args[0], member.signature))
                    elif instr.op in ("GETSTATIC", "PUTSTATIC"):
                        cls_name = instr.args[0]
                        if cls_name in seen_statics:
                            continue
                        seen_statics.add(cls_name)
                        roots.extend(self._static_roots(cls_name))

        # 2. Statics of reachable classes never referenced from compiled code
        #    (initialized at build time regardless).
        for cls_name in sorted(reachability.classes):
            if cls_name not in seen_statics and cls_name in self._program.classes:
                seen_statics.add(cls_name)
                roots.extend(self._static_roots(cls_name))

        return roots

    def _static_roots(self, cls_name: str) -> List[_Root]:
        """Per-field value roots, then the statics holder (data section).

        Field values come first so they keep their static-field inclusion
        reason (the holder's BFS expansion would otherwise claim them as
        plain children).
        """
        holder = self._statics.get(cls_name)
        if holder is None:
            return []
        roots: List[_Root] = []
        for field_name, value in holder.fields.items():
            if _is_heap_value(value):
                roots.append(_Root(value, f"StaticField:{cls_name}.{field_name}"))
        roots.append(_Root(holder, REASON_DATA_SECTION))
        return roots

    # -- traversal ---------------------------------------------------------------

    def _traverse(self, roots: List[_Root]) -> HeapSnapshot:
        snapshot = HeapSnapshot()
        queue: deque = deque()

        def discover(value: Any, parent: Optional[HeapObject],
                     edge: Union[str, int, None], reason: Optional[str]) -> None:
            if not _is_heap_value(value):
                return
            existing = snapshot.lookup(value)
            if existing is not None:
                return
            obj = HeapObject(
                value=value,
                index=len(snapshot),
                type_name=_heap_type_name(value),
                size=object_size(value),
                parent=parent,
                parent_edge=edge,
                root_reason=reason,
            )
            snapshot.add(obj)
            queue.append(obj)

        for root in roots:
            discover(root.value, None, None, root.reason)
            # BFS from each root before moving to the next keeps the
            # "objects reachable from CU A before CU B" property.
            while queue:
                self._expand(queue.popleft(), discover)

        return snapshot

    def _expand(self, obj: HeapObject, discover) -> None:
        value = obj.value
        if isinstance(value, ObjectInstance):
            for field_info in value.klass.all_instance_fields():
                child = value.fields.get(field_info.name)
                edge = f"{field_info.declared_in}.{field_info.name}:{field_info.type_name}"
                discover(child, obj, edge, None)
        elif isinstance(value, ArrayInstance):
            for index, child in enumerate(value.values):
                discover(child, obj, index, None)
        elif isinstance(value, StaticsHolder):
            for field_name, child in value.fields.items():
                discover(child, obj, f"{value.class_name}.{field_name}", None)
        # str / ResourceBlob are leaves.


def _is_heap_value(value: Any) -> bool:
    return isinstance(
        value, (ObjectInstance, ArrayInstance, StaticsHolder, ResourceBlob, str)
    )


def _heap_type_name(value: Any) -> str:
    if isinstance(value, str):
        return "String"
    if isinstance(value, StaticsHolder):
        return f"{value.class_name}$Statics"
    if isinstance(value, ResourceBlob):
        return "Resource"
    return value.type_name


def _jitter(roots: List[_Root], seed: int, fraction: float = 0.03) -> List[_Root]:
    """Swap a small fraction of adjacent root pairs.

    Models residual build non-determinism (parallel clinit execution) that
    shifts encounter order without changing the object graph.  Seed 0 is the
    identity, so tests stay deterministic by default.
    """
    if seed == 0 or len(roots) < 2:
        return roots
    rng = random.Random(seed)
    out = list(roots)
    index = 0
    while index < len(out) - 1:
        if rng.random() < fraction:
            out[index], out[index + 1] = out[index + 1], out[index]
            index += 2
        else:
            index += 1
    return out


def make_extra_root(value: Any, reason: str) -> _Root:
    """Public constructor for build-internal roots (profiler state etc.)."""
    return _Root(value, reason)
