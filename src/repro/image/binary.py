"""The built Native-Image binary and its runtime instantiation.

A :class:`NativeImageBinary` bundles everything a run needs: the build's own
program clone, the laid-out sections, the heap snapshot with object
identities, the statics area, and — for instrumented builds — the
instrumentation manifest.

Each execution calls :meth:`NativeImageBinary.instantiate` to get a *fresh*
copy of the mutable image heap, mirroring how the OS maps the pristine
binary file anew for every process.  Clones keep their ``image_ref`` link to
the snapshot entry of the original object, so page-touch accounting keeps
working across runs without cross-run state leaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..graal.cunits import CompilationUnit, CuMember
from ..minijava.bytecode import CompiledMethod, Program
from ..vm.values import ArrayInstance, ObjectInstance, ResourceBlob, StaticsHolder
from .heap import HeapObject, HeapSnapshot
from .sections import HeapSection, PlacedCu, TextSection

MODE_REGULAR = "regular"
MODE_INSTRUMENTED = "instrumented"
MODE_OPTIMIZED = "optimized"


@dataclass
class RuntimeImage:
    """A per-run, mutable copy of the image heap."""

    statics: Dict[str, StaticsHolder]


@dataclass
class NativeImageBinary:
    """A fully built binary."""

    program: Program
    mode: str
    cus: List[CompilationUnit]
    text: TextSection
    snapshot: HeapSnapshot
    heap: HeapSection
    statics: Dict[str, StaticsHolder]
    #: string-literal table index -> snapshot entry (interned strings)
    literal_objects: Dict[int, HeapObject] = field(default_factory=dict)
    #: fold token -> snapshot entry (PGO-embedded code constants)
    fold_objects: Dict[str, HeapObject] = field(default_factory=dict)
    #: set on instrumented builds
    manifest: Any = None
    build_seed: int = 0
    #: which ordering produced this layout (diagnostics)
    code_ordering: Optional[str] = None
    heap_ordering: Optional[str] = None

    _cu_by_root: Dict[str, PlacedCu] = field(default_factory=dict)
    _inline_home: Dict[str, PlacedCu] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for placed in self.text.placed:
            self._cu_by_root[placed.cu.name] = placed
        # Fallback CU for methods inlined everywhere (no standalone CU):
        # the first CU (in layout order) containing a copy.
        for placed in self.text.placed:
            for member in placed.cu.members[1:]:
                self._inline_home.setdefault(member.signature, placed)

    # -- code lookup --------------------------------------------------------

    def placed_cu_for_root(self, signature: str) -> Optional[PlacedCu]:
        return self._cu_by_root.get(signature)

    def code_location(
        self, method: CompiledMethod, caller_cu: Optional[PlacedCu]
    ) -> "tuple[PlacedCu, CuMember] | tuple[None, None]":
        """Where ``method``'s code executes, given the caller's CU context.

        If the caller's CU inlined the method, execution stays in the caller
        CU (the inlined copy's bytes).  Otherwise control transfers to the
        method's own CU.  Methods with no standalone CU (inlined everywhere)
        fall back to their first inlined copy.
        """
        signature = method.signature
        if caller_cu is not None:
            member = caller_cu.cu.member_for(signature)
            if member is not None and signature != caller_cu.cu.name:
                return caller_cu, member
        own = self._cu_by_root.get(signature)
        if own is not None:
            return own, own.cu.members[0]
        home = self._inline_home.get(signature)
        if home is not None:
            member = home.cu.member_for(signature)
            if member is not None:
                return home, member
        return None, None

    # -- binary facts ----------------------------------------------------------

    def layout_digest(self) -> int:
        """Stable 64-bit fingerprint of the final layout.

        Hashes every (CU name, offset) and (object index, address) pair, so
        two binaries share a digest iff their sections place the same things
        at the same offsets — the identity quarantine entries and
        verification reports use to name a layout.
        """
        from ..util.murmur3 import murmur3_64

        parts: List[str] = [self.mode, str(self.text.size), str(self.heap.size)]
        parts.extend(f"{p.cu.name}@{p.offset}" for p in self.text.placed)
        parts.extend(f"#{o.index}@{o.address}" for o in self.heap.ordered)
        return murmur3_64("|".join(parts).encode("utf-8"))

    @property
    def text_size(self) -> int:
        return self.text.size

    @property
    def heap_size(self) -> int:
        return self.heap.size

    @property
    def file_size(self) -> int:
        return self.text.size + self.heap.size

    def heap_object_count(self) -> int:
        return len(self.snapshot)

    # -- instantiation ------------------------------------------------------------

    def instantiate(self) -> RuntimeImage:
        """Fresh mutable copy of the image heap for one execution."""
        memo: Dict[int, Any] = {}
        statics: Dict[str, StaticsHolder] = {}
        for name, holder in self.statics.items():
            statics[name] = _clone_value(holder, memo)
        return RuntimeImage(statics=statics)


def _clone_value(value: Any, memo: Dict[int, Any]) -> Any:
    """Clone the mutable image heap; immutable leaves are shared."""
    if value is None or isinstance(value, (bool, int, float, str, ResourceBlob)):
        return value
    key = id(value)
    cached = memo.get(key)
    if cached is not None:
        return cached
    if isinstance(value, ObjectInstance):
        clone = ObjectInstance.__new__(ObjectInstance)
        clone.klass = value.klass
        clone.image_ref = value.image_ref
        clone.fields = {}
        memo[key] = clone
        for field_name, child in value.fields.items():
            clone.fields[field_name] = _clone_value(child, memo)
        return clone
    if isinstance(value, ArrayInstance):
        clone = ArrayInstance.__new__(ArrayInstance)
        clone.elem_type = value.elem_type
        clone.image_ref = value.image_ref
        clone.values = []
        memo[key] = clone
        clone.values.extend(_clone_value(child, memo) for child in value.values)
        return clone
    if isinstance(value, StaticsHolder):
        clone = StaticsHolder.__new__(StaticsHolder)
        clone.class_name = value.class_name
        clone.image_ref = value.image_ref
        clone.fields = {}
        memo[key] = clone
        for field_name, child in value.fields.items():
            clone.fields[field_name] = _clone_value(child, memo)
        return clone
    raise TypeError(f"cannot clone image value of type {type(value).__name__}")
