"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's artifact scripts:

* ``figures``  — regenerate Figures 2-5 (page-fault reductions, speedups);
* ``overhead`` — the Sec. 7.4 profiling-overhead table;
* ``pagemap``  — Fig. 6 page maps for ``.text`` (and ``--heap`` for the
  heap-snapshot visualization the paper lists as future work);
* ``compare``  — run every strategy on one workload and print factors;
* ``emit``     — write a built image as a SNIB file and dump its tables;
* ``robustness`` — fault-inject a profiling run and show how the pipeline
  salvages the trace or degrades to the default layout;
* ``verify``   — run the layout-verification oracle (structural invariants
  + differential execution under watchdog budgets) for workload × strategy
  combinations; ``--mutate`` injects a layout violation to demonstrate the
  quarantine-and-rollback rung end to end;
* ``bench``    — benchmark the evaluation pipeline itself: serial reference
  vs parallel scheduler vs warm artifact cache vs a chaos-injected sweep,
  written to ``BENCH_pipeline.json``; ``--baseline`` arms the regression
  gate against a committed payload, ``--trend`` gates against the bench
  history trajectory (rolling median ± MAD + CUSUM drift detection), and
  clean runs append to ``BENCH_history.jsonl`` (``--no-history`` opts out);
* ``report``   — render the bench history as a terminal summary plus a
  dependency-free self-contained HTML dashboard (inline SVG sparklines
  per phase and matrix cell, PGO epoch timeline, regression annotations);
* ``history``  — manage the bench history store: list entries, prune old
  ones, compact to the current schema, or trend-gate a payload file;
* ``chaos``    — run the sweep under deterministic fault injection
  (worker crashes, hangs, cache I/O errors, artifact corruption,
  oversized results) and verify that every surviving result is
  byte-identical to a fault-free serial reference; ``--persistent`` makes
  the schedule unrecoverable so poison cells end in quarantine (exit 1);
* ``pgo``      — drive the continuous-PGO loop through a seeded multi-epoch
  drift scenario: synthetic traffic shifts away from the deployed profile,
  the loop detects drift (rank distance + replayed faults), rebuilds
  through the cached pipeline, and only deploys candidates that pass the
  canary gate; ``--inject-bad`` damages a candidate so the gate must
  quarantine it and roll back (exit 1 names the quarantined layout);
* ``stats``    — run a (workload × strategy) sweep and print the merged
  metrics-registry summary (counters, gauges, histograms);
* ``trace``    — run one strategy end-to-end and export the span trace as
  Chrome trace-event JSON (``chrome://tracing`` / Perfetto);
* ``why``      — the layout regression explainer: attribute every startup
  fault to the CUs/heap objects on the faulted page, diff baseline vs an
  optimized layout, and print the ranked blame (``--json`` for the
  machine-readable report, ``--csv`` for the full per-unit table;
  ``--baseline-strategy`` diffs two optimized layouts instead — e.g.
  where ``cu-opt`` beats ``cu``, per CU);
* ``optimize`` — the search-based layout optimizer: build the page
  co-access graph from trace data, search CU / heap-group orders with
  greedy chain merging, recursive bisection, and seeded annealing against
  the exact simulated-fault oracle, build the winning ``cu-opt`` /
  ``heap-opt`` layouts, verify them (structural + differential), and
  report optimizer-vs-seed fault counts (exit 1 if any section is worse
  than its seed strategy or fails verification);
* ``list``     — available workloads.

Option defaults that mirror a config dataclass are read from that
dataclass (see :func:`_field_default`) so ``--help`` can never drift from
the code again.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Dict, Optional

from .api import STRATEGIES, ComparisonReport, NativeImageToolchain
from .eval.experiments import ExperimentConfig
from .eval.figures import (
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_overhead,
    run_awfy_evaluation,
    run_fig6,
    run_microservice_evaluation,
    run_overhead_evaluation,
)
from .eval.heapmap import compare_heap_maps, heap_page_map
from .eval.pipeline import STRATEGY_CU, STRATEGY_HEAP_PATH, Workload, WorkloadPipeline
from .eval.textmap import compare_page_maps, text_page_map
from .image.fileformat import read_snib, write_snib
from .workloads.awfy.suite import AWFY_NAMES, awfy_workload
from .workloads.microservices.suite import MICROSERVICE_NAMES, microservice_workload


def _field_default(cls: type, field_name: str):
    """The default of one dataclass field (the single source of truth).

    CLI options whose semantics come from a config dataclass
    (:class:`ExperimentConfig`, :class:`DegradationPolicy`,
    :class:`BenchConfig`, ...) must take their ``default=`` from here so
    ``--help`` output always matches what the code actually does.
    """
    for field in dataclasses.fields(cls):
        if field.name == field_name:
            if field.default is not dataclasses.MISSING:
                return field.default
            if field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                return field.default_factory()  # type: ignore[misc]
            break
    raise AttributeError(f"{cls.__name__} has no defaulted field {field_name!r}")


def _find_workload(name: str) -> Workload:
    if name in AWFY_NAMES:
        return awfy_workload(name)
    if name in MICROSERVICE_NAMES:
        return microservice_workload(name)
    raise SystemExit(
        f"unknown workload {name!r}; run `python -m repro list` for options"
    )


def cmd_list(_args: argparse.Namespace) -> int:
    print("AWFY benchmarks (run-to-completion, end-to-end time):")
    for name in AWFY_NAMES:
        print(f"  {name}")
    print("\nmicroservices (time to first response, then SIGKILL):")
    for name in MICROSERVICE_NAMES:
        print(f"  {name}")
    print("\nstrategies:", ", ".join(sorted(STRATEGIES)))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    config = ExperimentConfig(n_builds=args.builds, n_runs=args.runs)
    if args.suite in ("awfy", "all"):
        suite = run_awfy_evaluation(config, names=args.only or None)
        print(render_fig2(suite))
        print()
        print(render_fig5(suite))
    if args.suite in ("micro", "all"):
        suite = run_microservice_evaluation(config, names=args.only or None)
        print(render_fig3(suite))
        print()
        print(render_fig4(suite))
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    results = run_overhead_evaluation(awfy_names=args.only or None)
    print(render_overhead(results))
    return 0


def cmd_pagemap(args: argparse.Namespace) -> int:
    workload = _find_workload(args.workload)
    pipeline = WorkloadPipeline(workload)
    regular = pipeline.build_baseline(seed=1)
    outcome = pipeline.profile(seed=1)
    if args.heap:
        optimized = pipeline.build_optimized(outcome.profiles, STRATEGY_HEAP_PATH,
                                             seed=2)
        regular_map = heap_page_map(regular, pipeline.exec_config)
        optimized_map = heap_page_map(optimized, pipeline.exec_config)
        print(f".svm_heap page map for {workload.name} (heap path strategy)\n")
        print(compare_heap_maps(regular_map, optimized_map))
        print()
        print(optimized_map.hot_page_report())
    else:
        optimized = pipeline.build_optimized(outcome.profiles, STRATEGY_CU, seed=2)
        print(f".text page map for {workload.name} (cu strategy)\n")
        print(compare_page_maps(
            text_page_map(regular, pipeline.exec_config),
            text_page_map(optimized, pipeline.exec_config),
        ))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    workload = _find_workload(args.workload)
    toolchain = NativeImageToolchain(workload)
    toolchain.profile(seed=args.seed)
    names = [args.strategy] if args.strategy else sorted(STRATEGIES)
    for name in names:
        if name not in STRATEGIES:
            raise SystemExit(f"unknown strategy {name!r}")
        print(toolchain.optimize_and_compare(name, seed=args.seed))
    return 0


def _parse_fault(text: str):
    """Parse ``kind[:at[:bit]]`` from the command line into a FaultSpec."""
    from .robustness import ALL_FAULT_KINDS, FaultSpec

    parts = text.split(":")
    kind = parts[0]
    if kind not in ALL_FAULT_KINDS:
        raise SystemExit(
            f"unknown fault kind {kind!r}; choose from {', '.join(ALL_FAULT_KINDS)}"
        )
    try:
        at = int(parts[1]) if len(parts) > 1 else 0
        bit = int(parts[2]) if len(parts) > 2 else 0
    except ValueError:
        raise SystemExit(f"bad fault spec {text!r}; expected kind[:at[:bit]]")
    return FaultSpec(kind=kind, at=at, bit=bit)


def cmd_robustness(args: argparse.Namespace) -> int:
    from .eval.pipeline import WorkloadPipeline as _Pipeline
    from .robustness import DegradationPolicy, FaultInjector, FaultPlan

    workload = _find_workload(args.workload)
    spec = STRATEGIES.get(args.strategy)
    if spec is None:
        raise SystemExit(f"unknown strategy {args.strategy!r}")
    if args.faults:
        plan = FaultPlan(faults=tuple(_parse_fault(text) for text in args.faults))
    else:
        plan = FaultPlan.random(args.fault_seed, n_faults=args.n_faults)
    injector = FaultInjector(plan)
    policy = DegradationPolicy(
        max_retries=args.retries, min_match_rate=args.min_match_rate
    )
    pipeline = _Pipeline(
        workload, degradation_policy=policy, fault_hook=injector
    )
    print(f"workload: {workload.name}"
          + (" (microservice, SIGKILLed after first response)"
             if workload.microservice else ""))
    print(f"fault plan: {plan.describe()}")
    print()
    baseline_runs, optimized_runs = pipeline.run_strategy(spec, seed=args.seed)
    report = pipeline.last_degradation_report
    if report is not None:
        print(report.summary())
    print()
    if injector.triggered:
        print("faults fired:")
        for line in injector.triggered:
            print(f"  {line}")
    else:
        print("faults fired: none (plan never hit the trace)")
    print()
    print(ComparisonReport(
        workload=workload.name,
        strategy=spec.name,
        baseline=baseline_runs[0],
        optimized=optimized_runs[0],
    ))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from .validation import (
        ALL_MUTATION_KINDS,
        LayoutMutationPlan,
        LayoutMutator,
        VerificationPolicy,
        WatchdogBudget,
        verify_strategy,
    )

    names = args.strategy or sorted(STRATEGIES)
    for name in names:
        if name not in STRATEGIES:
            raise SystemExit(
                f"unknown strategy {name!r}; choose from {sorted(STRATEGIES)}"
            )
    budget = None
    if args.max_ops is not None or args.deadline is not None:
        budget = WatchdogBudget(max_ops=args.max_ops, deadline_s=args.deadline)
    failures = 0
    for workload_name in args.workloads:
        workload = _find_workload(workload_name)
        mutator = None
        if args.mutate:
            if args.mutate not in ALL_MUTATION_KINDS:
                raise SystemExit(
                    f"unknown mutation {args.mutate!r}; choose from "
                    + ", ".join(ALL_MUTATION_KINDS)
                )
            mutator = LayoutMutator(
                LayoutMutationPlan.single(args.mutate, pick=args.mutate_seed)
            )
        policy = VerificationPolicy(watchdog=budget, mutator=mutator)
        pipeline = WorkloadPipeline(workload, verification=policy)
        for name in names:
            outcome = verify_strategy(
                pipeline, STRATEGIES[name], seed=args.seed,
                differential=not args.no_differential, watchdog=budget,
            )
            if not outcome.ok:
                failures += 1
            print(outcome.summary())
            print()
        if mutator is not None and mutator.applied:
            print("injected mutations:")
            for line in mutator.applied:
                print(f"  {line}")
            print(pipeline.quarantine.describe())
            print()
    total = len(args.workloads) * len(names)
    print(f"verified {total} combination(s): "
          f"{total - failures} ok, {failures} failed")
    return 1 if failures else 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .eval.bench import (
        BenchConfig,
        check_payload,
        check_trend,
        format_summary,
        record_history,
        run_bench,
        write_payload,
    )
    from .obs.history import BenchHistory

    kwargs = dict(
        iterations=args.iterations,
        base_seed=args.seed,
        max_workers=args.workers,
        cache_dir=args.cache_dir,
        output=args.output,
        skip_serial=args.skip_serial,
        attribution=not args.no_attribution,
        chaos=not args.no_chaos,
        chaos_rate=args.chaos_rate,
        chaos_seed=args.chaos_seed,
        pgo=not args.no_pgo,
        pgo_epochs=args.pgo_epochs,
        pgo_seed=args.pgo_seed,
        optimize=not args.no_optimize,
        optimize_budget=args.optimize_budget,
        optimize_seed=args.optimize_seed,
        history=args.history,
        write_history=not args.no_history,
        trend=args.trend,
        trend_window=args.trend_window,
    )
    if args.only:
        kwargs["workloads"] = tuple(args.only)
    if args.strategy:
        kwargs["strategies"] = tuple(args.strategy)
    config = BenchConfig.quick(**kwargs) if args.quick else BenchConfig(**kwargs)
    try:
        payload = run_bench(config, log=print)
    except KeyError as exc:
        raise SystemExit(str(exc))
    path = write_payload(payload, config.output)
    print()
    print(format_summary(payload))
    print(f"wrote {path}")
    failures = []
    if args.check:
        failures.extend(check_payload(payload))
    if args.baseline:
        from .eval.bench import check_regression

        try:
            baseline = json.loads(Path(args.baseline).read_text())
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read baseline {args.baseline!r}: {exc}")
        failures.extend(check_regression(
            payload, baseline, wall_tolerance=args.max_regression,
        ))
    if config.trend:
        failures.extend(check_trend(
            payload, BenchHistory(config.history),
            window=config.trend_window,
        ))
    if args.openmetrics:
        from .obs import get_registry, to_openmetrics, validate_openmetrics

        text = to_openmetrics(get_registry().snapshot())
        Path(args.openmetrics).write_text(text)
        print(f"wrote {args.openmetrics} (OpenMetrics exposition)")
        failures.extend(f"openmetrics: {problem}"
                        for problem in validate_openmetrics(text))
    # a regressed or broken run never pollutes the trajectory: only
    # clean runs become history entries
    if config.write_history and payload.get("ok") and not failures:
        entry = record_history(payload, config.history)
        print(f"history: appended run {entry['run_id']} to {config.history}")
    for failure in failures:
        print(f"CHECK FAILED: {failure}")
    return 1 if failures else 0


def _chaos_pgo_exercise(workloads, strategies, args) -> Dict[str, object]:
    """The ``stale_profile`` leg of ``repro chaos``: drift-detector recovery.

    Stale-profile faults do not fire in the sweep scheduler (nothing there
    consumes live profiles); they attack the continuous-PGO loop, which
    must miss at most the poisoned epoch and refresh on the next fresh
    one.  Runs the seeded drift scenario on the first matrix cell with a
    stale-serving chaos policy armed and reports what the loop did.
    """
    from .pgo import DriftScenario, run_scenario
    from .robustness.chaos import CHAOS_STALE_PROFILE, ChaosPolicy

    policy = ChaosPolicy(seed=args.seed, rate=args.rate,
                         classes=(CHAOS_STALE_PROFILE,),
                         persistent=args.persistent, hang_s=args.hang)
    pipeline = WorkloadPipeline(workloads[0])
    scenario = DriftScenario(seed=args.base_seed or 7)
    outcome = run_scenario(pipeline, strategies[0], scenario=scenario,
                           chaos=policy)
    # recovery is only demandable when the loop actually saw fresh
    # post-shift traffic: a total stale blackout leaves nothing to
    # detect, and safely retaining the deployed layout is the correct
    # degraded behavior (the retain-stale rung)
    fresh_after_shift = any(
        not epoch.stale_served and epoch.epoch >= scenario.drift_epoch
        for epoch in outcome.epochs
    )
    return {
        "policy": policy.describe(),
        "outcome": outcome,
        "fresh_after_shift": fresh_after_shift,
        "ok": outcome.ok and (outcome.refreshes >= 1
                              or not fresh_after_shift),
    }


def cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile

    from .eval.bench import BenchConfig, resolve_matrix
    from .eval.chaosrun import run_chaos
    from .eval.scheduler import RetryPolicy, SchedulerConfig
    from .robustness.chaos import (
        ALL_CHAOS_CLASSES,
        CHAOS_STALE_PROFILE,
        ChaosPolicy,
    )

    try:
        workloads, strategies = resolve_matrix(BenchConfig(
            workloads=tuple(args.only or ()),
            strategies=tuple(args.strategy or ()),
        ))
    except KeyError as exc:
        raise SystemExit(str(exc))
    classes = tuple(args.fault_classes or ALL_CHAOS_CLASSES)
    # stale_profile targets the PGO loop, not the sweep scheduler:
    # partition the requested classes into the two exercises
    sweep_classes = tuple(c for c in classes if c != CHAOS_STALE_PROFILE)
    outcome = None
    if sweep_classes:
        try:
            policy = ChaosPolicy(seed=args.seed, rate=args.rate,
                                 classes=sweep_classes,
                                 persistent=args.persistent, hang_s=args.hang)
            retry = RetryPolicy(max_attempts=args.max_attempts)
        except ValueError as exc:
            raise SystemExit(str(exc))
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
            cache_dir = args.cache_dir or str(Path(scratch) / "cache")
            config = SchedulerConfig(
                cache_dir=cache_dir,
                max_workers=args.workers,
                iterations=args.iterations,
                base_seed=args.base_seed,
                task_deadline_s=args.deadline,
            )
            if not args.json:
                print(f"chaos sweep: {len(workloads)} workload(s) x "
                      f"{len(strategies)} strateg(ies), {policy.describe()}")
            outcome = run_chaos(workloads, strategies, policy=policy,
                                config=config, retry=retry)
    pgo = None
    if CHAOS_STALE_PROFILE in classes:
        if not args.json:
            print(f"chaos pgo: stale-profile injection against the "
                  f"continuous-PGO loop on {workloads[0].name} / "
                  f"{strategies[0].name}")
        pgo = _chaos_pgo_exercise(workloads, strategies, args)
    if args.json:
        payload: Dict[str, object] = {}
        if outcome is not None:
            payload = dict(outcome.as_dict())
        if pgo is not None:
            payload["pgo"] = {
                "policy": pgo["policy"],
                "ok": pgo["ok"],
                **pgo["outcome"].as_dict(),
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        if outcome is not None:
            print(outcome.describe())
        if pgo is not None:
            print(pgo["outcome"].describe())
            served = pgo["outcome"].stale_served
            if pgo["ok"] and not pgo["fresh_after_shift"] and served:
                verdict = ("total stale blackout: loop safely retained the "
                           "deployed layout (retain-stale rung)")
            elif pgo["ok"]:
                verdict = ("loop recovered (refresh on a fresh epoch, no "
                           "unguarded regression)")
            else:
                verdict = "LOOP DID NOT RECOVER"
            print(f"stale profiles served on {served} epoch(s); {verdict}")
    ok = (outcome is None or outcome.ok) and (pgo is None or pgo["ok"])
    return 0 if ok else 1


def cmd_pgo(args: argparse.Namespace) -> int:
    from .cache import ArtifactCache
    from .pgo import (
        CanaryPolicy,
        DriftScenario,
        DriftThresholds,
        run_scenario,
    )

    workload = _find_workload(args.workload)
    spec = STRATEGIES.get(args.strategy)
    if spec is None:
        raise SystemExit(
            f"unknown strategy {args.strategy!r}; choose from "
            f"{sorted(STRATEGIES)}"
        )
    cache = ArtifactCache(Path(args.cache_dir)) if args.cache_dir else None
    pipeline = WorkloadPipeline(workload, cache=cache)
    scenario = DriftScenario(
        epochs=args.epochs,
        seed=args.seed,
        drift_epoch=args.drift_epoch,
        inject_bad_epoch=args.inject_bad,
    )
    thresholds = DriftThresholds(max_rank_distance=args.max_drift)
    canary = CanaryPolicy(max_regression=args.max_regression)
    outcome = run_scenario(pipeline, spec, scenario=scenario,
                           thresholds=thresholds, canary=canary)
    if args.json:
        print(json.dumps(outcome.as_dict(), indent=2, sort_keys=True))
    else:
        print(outcome.describe())
    # exit nonzero when the gate had to intervene (a candidate was
    # quarantined) or — worse — an unguarded regression shipped
    return 1 if (outcome.unguarded_regressions or outcome.quarantined) else 0


def cmd_stats(args: argparse.Namespace) -> int:
    from .eval.scheduler import (
        STRATEGY_BY_NAME,
        SchedulerConfig,
        SweepScheduler,
    )
    from .obs import format_stats, get_registry, stats_dict

    workloads = [_find_workload(name) for name in args.workloads]
    names = args.strategy or sorted(STRATEGY_BY_NAME)
    for name in names:
        if name not in STRATEGY_BY_NAME:
            raise SystemExit(
                f"unknown strategy {name!r}; choose from {sorted(STRATEGY_BY_NAME)}"
            )
    config = SchedulerConfig(
        cache_dir=args.cache_dir,
        max_workers=args.workers,
        iterations=args.iterations,
        base_seed=args.seed,
    )
    sweep = SweepScheduler(config).run(
        workloads, [STRATEGY_BY_NAME[name] for name in names]
    )
    snapshot = get_registry().snapshot()
    if args.json:
        print(json.dumps(stats_dict(snapshot), indent=2, sort_keys=True))
    else:
        print(sweep.summary())
        print()
        print(format_stats(snapshot))
    problems = []
    if args.openmetrics:
        from .obs import to_openmetrics, validate_openmetrics

        text = to_openmetrics(snapshot)
        Path(args.openmetrics).write_text(text)
        problems = validate_openmetrics(text)
        print(f"wrote {args.openmetrics} (OpenMetrics exposition)")
        for problem in problems:
            print(f"INVALID: {problem}")
    return 0 if sweep.ok and not problems else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs import get_tracer, validate_trace

    workload = _find_workload(args.workload)
    spec = STRATEGIES.get(args.strategy)
    if spec is None:
        raise SystemExit(
            f"unknown strategy {args.strategy!r}; choose from {sorted(STRATEGIES)}"
        )
    pipeline = WorkloadPipeline(workload)
    pipeline.run_strategy(spec, seed=args.seed)
    tracer = get_tracer()
    path = tracer.export(args.output)
    problems = validate_trace(json.loads(Path(path).read_text()))
    dropped = (f", {tracer.dropped} dropped at the "
               f"{tracer.max_events}-event cap" if tracer.dropped else "")
    print(f"wrote {path} ({len(tracer.events)} trace events{dropped}; "
          "load it in chrome://tracing or https://ui.perfetto.dev)")
    if args.events:
        from .obs import get_event_log

        log = get_event_log()
        events_path = log.export(args.events)
        print(f"wrote {events_path} ({len(log.events)} correlated "
              "event-log entries)")
    for problem in problems:
        print(f"INVALID: {problem}")
    return 1 if problems else 0


def cmd_why(args: argparse.Namespace) -> int:
    from .eval.explain import explain_strategies, explain_strategy

    workload = _find_workload(args.workload)
    spec = STRATEGIES.get(args.strategy)
    if spec is None:
        raise SystemExit(
            f"unknown strategy {args.strategy!r}; choose from {sorted(STRATEGIES)}"
        )
    pipeline = WorkloadPipeline(workload)
    if args.baseline_strategy:
        base_spec = STRATEGIES.get(args.baseline_strategy)
        if base_spec is None:
            raise SystemExit(
                f"unknown strategy {args.baseline_strategy!r}; choose from "
                f"{sorted(STRATEGIES)}"
            )
        why = explain_strategies(pipeline, base_spec, spec, seed=args.seed)
    else:
        why = explain_strategy(pipeline, spec, seed=args.seed)
    if args.json:
        print(why.to_json())
    else:
        print(why.render(top=args.top))
    if args.csv:
        path = why.to_csv(args.csv)
        print(f"wrote {path} ({len(why.ranked)} unit rows)", file=sys.stderr)
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    from .cache import ArtifactCache
    from .eval.pipeline import OPTIMIZER_STRATEGY_SPECS
    from .ordering.optimize import ALL_OPTIMIZERS, OptimizeConfig, optimize_workload

    by_name = {spec.name: spec for spec in OPTIMIZER_STRATEGY_SPECS}
    section_of = {"cu-opt": "code", "heap-opt": "heap"}
    names = args.strategy or sorted(by_name)
    for name in names:
        if name not in by_name:
            raise SystemExit(
                f"unknown optimizer strategy {name!r}; choose from "
                f"{sorted(by_name)}"
            )
    sections = tuple(s for s in ("code", "heap")
                     if s in {section_of[name] for name in names})
    optimizers = tuple(args.optimizer) if args.optimizer else ALL_OPTIMIZERS
    config = OptimizeConfig(budget=args.budget, seed=args.search_seed,
                            window=args.window, optimizers=optimizers)
    cache = ArtifactCache(Path(args.cache_dir)) if args.cache_dir else None
    reports = []
    for workload_name in args.workloads:
        workload = _find_workload(workload_name)
        pipeline = WorkloadPipeline(workload, cache=cache,
                                    optimize_config=config)
        reports.append(optimize_workload(pipeline, sections=sections,
                                         seed=args.seed))
    if args.json:
        print(json.dumps([report.as_dict() for report in reports],
                         indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.describe())
            print()
        improved = sum(report.improved_sections for report in reports)
        print(f"{len(reports)} workload(s): {improved} section(s) strictly "
              f"improved, all never-worse: "
              f"{'yes' if all(r.ok for r in reports) else 'NO'}")
    return 0 if all(report.ok for report in reports) else 1


def cmd_report(args: argparse.Namespace) -> int:
    from .obs.history import BenchHistory
    from .obs.report import render_html, render_summary

    history = BenchHistory(args.history)
    entries = history.entries(matrix_hash=args.matrix)
    if args.last:
        entries = entries[-args.last:]
    print(render_summary(entries))
    if history.skipped:
        print(f"(skipped {history.skipped} unreadable history line(s); "
              "`repro history compact` drops them)")
    if not args.no_html:
        path = Path(args.output)
        path.write_text(render_html(entries))
        print(f"wrote {path} ({len(entries)} run(s), self-contained HTML)")
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    from .obs.history import BenchHistory

    history = BenchHistory(args.history)
    if args.action == "list":
        print(history.describe())
        if history.skipped:
            print(f"(skipped {history.skipped} unreadable line(s))")
        return 0
    if args.action == "prune":
        if args.keep is None and args.max_age_days is None:
            raise SystemExit("prune needs --keep and/or --max-age-days")
        max_age = (args.max_age_days * 86400.0
                   if args.max_age_days is not None else None)
        removed = history.prune(keep=args.keep, max_age_s=max_age)
        print(f"pruned {removed} entr(ies) from {history.path}; "
              f"{len(history)} remain")
        return 0
    if args.action == "compact":
        kept, dropped = history.compact()
        print(f"compacted {history.path}: {kept} entr(ies) at the current "
              f"schema, {dropped} unreadable line(s) dropped")
        return 0
    # action == "gate": trend-gate a payload file against the store
    from .eval.bench import check_trend

    try:
        payload = json.loads(Path(args.payload).read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read payload {args.payload!r}: {exc}")
    failures = check_trend(payload, history, window=args.window)
    comparable = len(history.entries())
    if not failures:
        print(f"trend gate passed against {history.path} "
              f"({comparable} entr(ies) on file)")
        return 0
    for failure in failures:
        print(f"TREND FAILED: {failure}")
    return 1


def cmd_emit(args: argparse.Namespace) -> int:
    workload = _find_workload(args.workload)
    pipeline = WorkloadPipeline(workload)
    if args.strategy:
        spec = STRATEGIES.get(args.strategy)
        if spec is None:
            raise SystemExit(f"unknown strategy {args.strategy!r}")
        outcome = pipeline.profile(seed=args.seed)
        binary = pipeline.build_optimized(outcome.profiles, spec, seed=args.seed)
    else:
        binary = pipeline.build_baseline(seed=args.seed)
    path = Path(args.output or f"{workload.name}.snib")
    size = write_snib(binary, path)
    print(f"wrote {path} ({size} bytes)")
    print()
    print(read_snib(path).describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Improving Native-Image Startup "
        "Performance' (CGO '25)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list workloads and strategies")
    p_list.set_defaults(func=cmd_list)

    p_figures = sub.add_parser("figures", help="regenerate Figures 2-5")
    p_figures.add_argument("--suite", choices=("awfy", "micro", "all"),
                           default="all")
    p_figures.add_argument("--builds", type=int,
                           default=_field_default(ExperimentConfig, "n_builds"),
                           help="image builds per configuration "
                           "(default: %(default)s)")
    p_figures.add_argument("--runs", type=int,
                           default=_field_default(ExperimentConfig, "n_runs"),
                           help="cold-cache runs per build (default: %(default)s)")
    p_figures.add_argument("--only", nargs="*", help="restrict to workloads")
    p_figures.set_defaults(func=cmd_figures)

    p_overhead = sub.add_parser("overhead", help="Sec. 7.4 overhead table")
    p_overhead.add_argument("--only", nargs="*", help="restrict AWFY workloads")
    p_overhead.set_defaults(func=cmd_overhead)

    p_pagemap = sub.add_parser("pagemap", help="Fig. 6 page maps")
    p_pagemap.add_argument("workload", nargs="?", default="Bounce")
    p_pagemap.add_argument("--heap", action="store_true",
                           help="visualize .svm_heap instead of .text")
    p_pagemap.set_defaults(func=cmd_pagemap)

    p_compare = sub.add_parser("compare", help="strategy factors on one workload")
    p_compare.add_argument("workload")
    p_compare.add_argument("--strategy", help="a single strategy (default: all)")
    p_compare.add_argument("--seed", type=int, default=1)
    p_compare.set_defaults(func=cmd_compare)

    p_robust = sub.add_parser(
        "robustness",
        help="fault-inject a profiling run; show salvage + degradation",
    )
    p_robust.add_argument("workload", nargs="?", default="quarkus")
    p_robust.add_argument("--strategy", default="cu+heap path")
    p_robust.add_argument("--seed", type=int, default=1)
    p_robust.add_argument(
        "--faults", nargs="*",
        help="explicit faults as kind[:at[:bit]] "
        "(truncate_at_byte, drop_flush, bit_flip, kill_at_record, "
        "partial_header); default: a random plan from --fault-seed",
    )
    p_robust.add_argument("--fault-seed", type=int, default=1,
                          help="seed for the random fault plan")
    p_robust.add_argument("--n-faults", type=int, default=2,
                          help="faults in the random plan")
    from .robustness.degradation import DegradationPolicy as _DegradationPolicy

    p_robust.add_argument("--retries", type=int,
                          default=_field_default(_DegradationPolicy, "max_retries"),
                          help="profiling retries before default-layout "
                          "fallback (default: %(default)s)")
    p_robust.add_argument("--min-match-rate", type=float,
                          default=_field_default(_DegradationPolicy,
                                                 "min_match_rate"),
                          help="heap ID match-rate floor before heap fallback "
                          "(default: %(default)s)")
    p_robust.set_defaults(func=cmd_robustness)

    p_verify = sub.add_parser(
        "verify",
        help="layout-verification oracle: invariants + differential runs",
    )
    p_verify.add_argument("workloads", nargs="+",
                          help="workload names (AWFY or microservice)")
    p_verify.add_argument("--strategy", action="append",
                          help="a strategy to verify (repeatable; default: all)")
    p_verify.add_argument("--seed", type=int, default=1)
    p_verify.add_argument("--max-ops", type=int, default=None,
                          help="watchdog instruction budget per run")
    p_verify.add_argument("--deadline", type=float, default=None,
                          help="watchdog wall-clock budget per run (seconds)")
    p_verify.add_argument("--no-differential", action="store_true",
                          help="skip the differential execution oracle")
    p_verify.add_argument("--mutate",
                          help="inject a layout mutation after each optimized "
                          "build to demo quarantine-and-rollback")
    p_verify.add_argument("--mutate-seed", type=int, default=1,
                          help="target pick for --mutate")
    p_verify.set_defaults(func=cmd_verify)

    from .eval.bench import DEFAULT_OUTPUT as _BENCH_OUTPUT
    from .eval.bench import BenchConfig as _BenchConfig

    p_bench = sub.add_parser(
        "bench",
        help="benchmark the evaluation pipeline: serial vs parallel vs "
        "warm cache",
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="CI smoke matrix (3 workloads x 2 strategies)")
    p_bench.add_argument("--only", nargs="*",
                         help="restrict to these workloads (default: all)")
    p_bench.add_argument("--strategy", action="append",
                         help="a strategy to bench (repeatable; default: all)")
    p_bench.add_argument("--iterations", type=int,
                         default=_field_default(_BenchConfig, "iterations"),
                         help="measurement runs per binary "
                         "(default: %(default)s)")
    p_bench.add_argument("--seed", type=int,
                         default=_field_default(_BenchConfig, "base_seed"),
                         help="base seed for per-task seeding "
                         "(default: %(default)s)")
    p_bench.add_argument("--workers", type=int,
                         default=_field_default(_BenchConfig, "max_workers"),
                         help="worker processes; 0 = one per core "
                         "(default: %(default)s)")
    p_bench.add_argument("--cache-dir",
                         default=_field_default(_BenchConfig, "cache_dir"),
                         help="persistent cache directory (default: a fresh "
                         "temporary directory, deleted afterwards)")
    p_bench.add_argument("-o", "--output",
                         default=_field_default(_BenchConfig, "output"),
                         help="result JSON path (default: %(default)s)")
    p_bench.add_argument("--skip-serial", action="store_true",
                         help="skip the slow serial reference phase")
    p_bench.add_argument("--no-attribution", action="store_true",
                         help="skip the attribution phase (observer-enabled "
                         "runs + per-workload blame report)")
    p_bench.add_argument("--no-chaos", action="store_true",
                         help="skip the chaos phase (fault-injected sweep "
                         "+ identity check)")
    p_bench.add_argument("--chaos-rate", type=float,
                         default=_field_default(_BenchConfig, "chaos_rate"),
                         help="per-cell fault probability of the chaos phase "
                         "(default: %(default)s)")
    p_bench.add_argument("--chaos-seed", type=int,
                         default=_field_default(_BenchConfig, "chaos_seed"),
                         help="chaos schedule seed (default: %(default)s)")
    p_bench.add_argument("--no-pgo", action="store_true",
                         help="skip the pgo phase (continuous-PGO drift "
                         "scenario + canary gate)")
    p_bench.add_argument("--pgo-epochs", type=int,
                         default=_field_default(_BenchConfig, "pgo_epochs"),
                         help="traffic epochs of the pgo drift scenario "
                         "(default: %(default)s)")
    p_bench.add_argument("--pgo-seed", type=int,
                         default=_field_default(_BenchConfig, "pgo_seed"),
                         help="pgo scenario seed (default: %(default)s)")
    p_bench.add_argument("--no-optimize", action="store_true",
                         help="skip the optimize phase (search-based layout "
                         "optimizer vs seed strategies)")
    p_bench.add_argument("--optimize-budget", type=int,
                         default=_field_default(_BenchConfig,
                                                "optimize_budget"),
                         help="annealing cost evaluations per section in the "
                         "optimize phase (default: %(default)s)")
    p_bench.add_argument("--optimize-seed", type=int,
                         default=_field_default(_BenchConfig,
                                                "optimize_seed"),
                         help="search RNG seed of the optimize phase "
                         "(default: %(default)s)")
    p_bench.add_argument("--check", action="store_true",
                         help="exit non-zero unless warm hit rate is 100%% "
                         "and all phases agree (CI mode)")
    from .eval.bench import DEFAULT_WALL_TOLERANCE as _WALL_TOL

    p_bench.add_argument("--baseline",
                         help="committed BENCH_pipeline.json to gate against; "
                         "exit non-zero on wall-clock or hit-rate regression")
    p_bench.add_argument("--max-regression", type=float, default=_WALL_TOL,
                         help="allowed fractional wall-clock slowdown vs the "
                         "baseline (default: %(default)s)")
    p_bench.add_argument("--history",
                         default=_field_default(_BenchConfig, "history"),
                         help="bench history store (JSONL) clean runs append "
                         "to (default: %(default)s)")
    p_bench.add_argument("--no-history", action="store_true",
                         help="do not append this run to the history store")
    p_bench.add_argument("--trend", action="store_true",
                         help="gate against the history trend: rolling "
                         "median ± MAD step detection plus CUSUM drift "
                         "detection per phase/cell series (exit 1 names the "
                         "regressed series and the top blamed symbols)")
    p_bench.add_argument("--trend-window", type=int,
                         default=_field_default(_BenchConfig, "trend_window"),
                         help="history entries the trend gate compares "
                         "against (default: %(default)s)")
    p_bench.add_argument("--openmetrics", metavar="PATH",
                         help="also export the run's merged metrics registry "
                         "as OpenMetrics text exposition (validated; "
                         "problems fail the command)")
    p_bench.set_defaults(func=cmd_bench)

    p_report = sub.add_parser(
        "report",
        help="render the bench history as a terminal summary + a "
        "self-contained HTML dashboard (sparklines, PGO timeline, "
        "regression annotations)",
    )
    p_report.add_argument("--history",
                          default=_field_default(_BenchConfig, "history"),
                          help="bench history store to render "
                          "(default: %(default)s)")
    p_report.add_argument("-o", "--output", default="BENCH_report.html",
                          help="HTML dashboard path (default: %(default)s)")
    p_report.add_argument("--no-html", action="store_true",
                          help="terminal summary only, skip the HTML file")
    p_report.add_argument("--matrix", metavar="HASH",
                          help="restrict to entries with this matrix hash "
                          "(default: all entries)")
    p_report.add_argument("--last", type=int, default=0,
                          help="render only the newest N entries "
                          "(default: all)")
    p_report.set_defaults(func=cmd_report)

    p_history = sub.add_parser(
        "history",
        help="manage the bench history store: list, prune, compact, or "
        "trend-gate a payload against it",
    )
    p_history.add_argument("action",
                           choices=("list", "prune", "compact", "gate"),
                           help="list entries / drop old entries / rewrite "
                           "at the current schema / trend-gate a payload")
    p_history.add_argument("--history",
                           default=_field_default(_BenchConfig, "history"),
                           help="bench history store (default: %(default)s)")
    p_history.add_argument("--keep", type=int, default=None,
                           help="prune: retain only the newest N entries")
    p_history.add_argument("--max-age-days", type=float, default=None,
                           help="prune: drop entries older than this many "
                           "days")
    p_history.add_argument("--payload", default=_BENCH_OUTPUT,
                           help="gate: bench payload JSON to trend-gate "
                           "(default: %(default)s)")
    p_history.add_argument("--window", type=int,
                           default=_field_default(_BenchConfig,
                                                  "trend_window"),
                           help="gate: history entries to compare against "
                           "(default: %(default)s)")
    p_history.set_defaults(func=cmd_history)

    from .eval.scheduler import RetryPolicy as _RetryPolicy
    from .eval.scheduler import SchedulerConfig as _SchedulerConfig
    from .robustness.chaos import CHAOS_CLASS_UNIVERSE as _CHAOS_CLASSES
    from .robustness.chaos import ChaosPolicy as _ChaosPolicy

    p_chaos = sub.add_parser(
        "chaos",
        help="fault-inject a parallel sweep and verify surviving results "
        "are byte-identical to a fault-free serial run",
    )
    p_chaos.add_argument("--only", nargs="*",
                         help="restrict to these workloads (default: all)")
    p_chaos.add_argument("--strategy", action="append",
                         help="a strategy to sweep (repeatable; default: all)")
    p_chaos.add_argument("--seed", type=int,
                         default=_field_default(_ChaosPolicy, "seed"),
                         help="chaos schedule seed; the same seed fails the "
                         "same cells the same way (default: %(default)s)")
    p_chaos.add_argument("--rate", type=float, default=0.2,
                         help="per-cell fault probability in [0, 1] "
                         "(default: %(default)s)")
    p_chaos.add_argument("--fault-classes", nargs="*",
                         choices=list(_CHAOS_CLASSES), metavar="CLASS",
                         help="fault classes to inject; choose from "
                         f"{', '.join(_CHAOS_CLASSES)} (default: all sweep "
                         "classes; stale_profile additionally exercises the "
                         "continuous-PGO loop's drift-detector recovery)")
    p_chaos.add_argument("--persistent", action="store_true",
                         help="unrecoverable mode: targeted cells fail every "
                         "attempt and must end in poison-task quarantine "
                         "(the sweep still completes; exit status 1)")
    p_chaos.add_argument("--hang", type=float, default=0.5,
                         help="injected hang duration in seconds "
                         "(default: %(default)s)")
    p_chaos.add_argument("--deadline", type=float, default=None,
                         help="per-task wall-clock ceiling in seconds "
                         "(default: unbounded)")
    p_chaos.add_argument("--max-attempts", type=int,
                         default=_field_default(_RetryPolicy, "max_attempts"),
                         help="attempts per task before poison conviction "
                         "(default: %(default)s)")
    p_chaos.add_argument("--workers", type=int,
                         default=_field_default(_SchedulerConfig,
                                                "max_workers"),
                         help="worker processes; 0 = one per core, 1 = inline "
                         "(default: %(default)s)")
    p_chaos.add_argument("--base-seed", type=int,
                         default=_field_default(_SchedulerConfig, "base_seed"),
                         help="base seed for per-task seeding "
                         "(default: %(default)s)")
    p_chaos.add_argument("--iterations", type=int,
                         default=_field_default(_SchedulerConfig,
                                                "iterations"),
                         help="measurement runs per binary "
                         "(default: %(default)s)")
    p_chaos.add_argument("--cache-dir",
                         help="artifact-cache directory for the chaos sweep "
                         "(default: a fresh temporary directory)")
    p_chaos.add_argument("--json", action="store_true",
                         help="print the machine-readable health report")
    p_chaos.set_defaults(func=cmd_chaos)

    from .pgo import CanaryPolicy as _CanaryPolicy
    from .pgo import DriftScenario as _DriftScenario
    from .pgo import DriftThresholds as _DriftThresholds

    p_pgo = sub.add_parser(
        "pgo",
        help="drive the continuous-PGO loop through a seeded drift "
        "scenario: detect profile staleness, canary-gate the re-layout, "
        "quarantine and roll back bad candidates",
    )
    p_pgo.add_argument("--workload", default="Queens")
    p_pgo.add_argument("--strategy", default="cu+heap path",
                       help="ordering strategy the loop deploys "
                       "(default: %(default)s)")
    p_pgo.add_argument("--epochs", type=int,
                       default=_field_default(_DriftScenario, "epochs"),
                       help="traffic epochs to observe (default: %(default)s)")
    p_pgo.add_argument("--seed", type=int,
                       default=_field_default(_DriftScenario, "seed"),
                       help="scenario seed; drives traffic synthesis, the "
                       "mix schedule and all builds (default: %(default)s)")
    p_pgo.add_argument("--drift-epoch", type=int,
                       default=_field_default(_DriftScenario, "drift_epoch"),
                       help="epoch at which live traffic genuinely shifts "
                       "(default: %(default)s)")
    p_pgo.add_argument("--inject-bad", type=int, metavar="EPOCH",
                       default=_field_default(_DriftScenario,
                                              "inject_bad_epoch"),
                       help="damage the re-layout candidate built at this "
                       "epoch; the canary gate must quarantine it and roll "
                       "back (exit 1 names the quarantined layout; "
                       "default: no injection)")
    p_pgo.add_argument("--max-drift", type=float,
                       default=_field_default(_DriftThresholds,
                                              "max_rank_distance"),
                       help="rank-distance threshold above which the "
                       "deployed profile counts as drifted "
                       "(default: %(default)s)")
    p_pgo.add_argument("--max-regression", type=float,
                       default=_field_default(_CanaryPolicy,
                                              "max_regression"),
                       help="allowed fractional fault regression of a "
                       "candidate vs the deployed layout "
                       "(default: %(default)s)")
    p_pgo.add_argument("--cache-dir",
                       help="artifact-cache directory shared with other "
                       "commands (default: uncached)")
    p_pgo.add_argument("--json", action="store_true",
                       help="print the machine-readable scenario outcome")
    p_pgo.set_defaults(func=cmd_pgo)

    p_stats = sub.add_parser(
        "stats",
        help="run a sweep and print the merged metrics-registry summary",
    )
    p_stats.add_argument("workloads", nargs="+",
                         help="workload names (AWFY or microservice)")
    p_stats.add_argument("--strategy", action="append",
                         help="a strategy to run (repeatable; default: all)")
    p_stats.add_argument("--seed", type=int,
                         default=_field_default(_SchedulerConfig, "base_seed"),
                         help="base seed for per-task seeding "
                         "(default: %(default)s)")
    p_stats.add_argument("--iterations", type=int,
                         default=_field_default(_SchedulerConfig, "iterations"),
                         help="measurement runs per binary "
                         "(default: %(default)s)")
    p_stats.add_argument("--workers", type=int,
                         default=_field_default(_SchedulerConfig, "max_workers"),
                         help="worker processes; 0 = one per core, 1 = inline "
                         "(default: %(default)s)")
    p_stats.add_argument("--cache-dir",
                         default=_field_default(_SchedulerConfig, "cache_dir"),
                         help="persistent artifact-cache directory "
                         "(default: uncached)")
    p_stats.add_argument("--json", action="store_true",
                         help="print the snapshot as JSON (with the "
                         "deterministic sweep.* plane broken out)")
    p_stats.add_argument("--openmetrics", metavar="PATH",
                         help="also export the snapshot as OpenMetrics text "
                         "exposition (validated; problems exit 1)")
    p_stats.set_defaults(func=cmd_stats)

    p_trace = sub.add_parser(
        "trace",
        help="run one strategy end-to-end and export a Chrome trace",
    )
    p_trace.add_argument("workload", nargs="?", default="Bounce")
    p_trace.add_argument("--strategy", default="cu+heap path")
    p_trace.add_argument("--seed", type=int, default=1)
    p_trace.add_argument("-o", "--output", default="trace.json",
                         help="trace-event JSON path (default: %(default)s)")
    p_trace.add_argument("--events", metavar="PATH",
                         help="also export the correlated JSONL event log "
                         "(degradation notes, chaos injections, PGO epoch "
                         "markers with causal ids)")
    p_trace.set_defaults(func=cmd_trace)

    p_why = sub.add_parser(
        "why",
        help="explain a layout's fault profile: ranked per-unit blame vs "
        "the baseline image",
    )
    p_why.add_argument("--workload", default="Bounce")
    p_why.add_argument("--strategy", default="cu",
                       help="optimized layout to explain (default: %(default)s)")
    p_why.add_argument("--seed", type=int, default=1)
    p_why.add_argument("--top", type=int, default=10,
                       help="changed units shown in the text report "
                       "(default: %(default)s)")
    p_why.add_argument("--json", action="store_true",
                       help="print the full machine-readable report")
    p_why.add_argument("--csv",
                       help="also export the per-unit delta table as CSV")
    p_why.add_argument("--baseline-strategy", metavar="STRATEGY",
                       help="diff against this strategy's optimized layout "
                       "instead of the regular baseline image (e.g. "
                       "--baseline-strategy cu --strategy cu-opt explains "
                       "per-CU where the search beat first-use order)")
    p_why.set_defaults(func=cmd_why)

    from .ordering.optimize import ALL_OPTIMIZERS as _ALL_OPTIMIZERS
    from .ordering.optimize import OptimizeConfig as _OptimizeConfig

    p_opt = sub.add_parser(
        "optimize",
        help="search-based layout optimizer: beat first-use ordering, "
        "verify the winners, report optimizer-vs-seed fault counts",
    )
    p_opt.add_argument("workloads", nargs="+",
                       help="workload names (AWFY or microservice)")
    p_opt.add_argument("--strategy", action="append",
                       help="an optimizer strategy to run: cu-opt and/or "
                       "heap-opt (repeatable; default: both)")
    p_opt.add_argument("--budget", type=int,
                       default=_field_default(_OptimizeConfig, "budget"),
                       help="annealing cost evaluations per section "
                       "(default: %(default)s)")
    p_opt.add_argument("--seed", type=int, default=0,
                       help="pipeline seed for profiling and builds "
                       "(default: %(default)s)")
    p_opt.add_argument("--search-seed", type=int,
                       default=_field_default(_OptimizeConfig, "seed"),
                       help="search RNG seed; same seed => byte-identical "
                       "layout (default: %(default)s)")
    p_opt.add_argument("--window", type=int,
                       default=_field_default(_OptimizeConfig, "window"),
                       help="co-access window: first-touch pairs closer than "
                       "this many ranks gain edge weight "
                       "(default: %(default)s)")
    p_opt.add_argument("--optimizer", action="append",
                       choices=list(_ALL_OPTIMIZERS),
                       help="restrict the candidate families (repeatable; "
                       "default: all three; the seed strategy's own order "
                       "always stays a candidate)")
    p_opt.add_argument("--cache-dir",
                       help="artifact-cache directory shared with other "
                       "commands (default: uncached)")
    p_opt.add_argument("--json", action="store_true",
                       help="print the machine-readable reports")
    p_opt.set_defaults(func=cmd_optimize)

    p_emit = sub.add_parser("emit", help="write a built image as a SNIB file")
    p_emit.add_argument("workload")
    p_emit.add_argument("-o", "--output")
    p_emit.add_argument("--strategy", help="build optimized with this strategy")
    p_emit.add_argument("--seed", type=int, default=1)
    p_emit.set_defaults(func=cmd_emit)

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
