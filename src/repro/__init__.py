"""repro — reproduction of "Improving Native-Image Startup Performance" (CGO '25).

A simulated GraalVM-Native-Image toolchain in pure Python: a Java-like
front-end (MiniJava), a Graal-style mid-end (RTA reachability, inlining into
compilation units, PGO folding), an image builder with heap snapshotting,
the paper's profile-guided code- and heap-ordering strategies with all three
object-identity algorithms, a Ball–Larus path-tracing profiler, and a
demand-paging runtime that measures startup page faults and time.

Entry points:

* :class:`repro.api.NativeImageToolchain` — build/profile/optimize one app;
* :mod:`repro.eval.figures` — regenerate every figure of the paper;
* :mod:`repro.workloads` — the AWFY suite and microservice workloads.
"""

# defined before the imports below: repro.cache.keys reads it while this
# module is still initializing (version is part of every cache key)
__version__ = "1.1.0"

from .api import STRATEGIES, ComparisonReport, NativeImageToolchain, compare_all_strategies
from .eval.pipeline import Workload

__all__ = [
    "STRATEGIES",
    "ComparisonReport",
    "NativeImageToolchain",
    "compare_all_strategies",
    "Workload",
    "__version__",
]
