"""Pure-Python implementation of MurmurHash3.

The paper's *structural hash* and *heap path* strategies (Algorithms 2 and 3)
compute 64-bit object identities with MurmurHash3 over a byte encoding of the
object.  We implement the x64 128-bit variant from scratch and expose a 64-bit
convenience wrapper (the low 64 bits of the 128-bit digest), plus the x86
32-bit variant used by some trace-file checksums.
"""

from __future__ import annotations

_MASK64 = 0xFFFFFFFFFFFFFFFF
_MASK32 = 0xFFFFFFFF


def _rotl64(x: int, r: int) -> int:
    return ((x << r) | (x >> (64 - r))) & _MASK64


def _rotl32(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _MASK32


def _fmix64(k: int) -> int:
    k ^= k >> 33
    k = (k * 0xFF51AFD7ED558CCD) & _MASK64
    k ^= k >> 33
    k = (k * 0xC4CEB9FE1A85EC53) & _MASK64
    k ^= k >> 33
    return k


def _fmix32(h: int) -> int:
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def murmur3_x64_128(data: bytes, seed: int = 0) -> int:
    """Return the 128-bit MurmurHash3 (x64 variant) of ``data`` as an int."""
    c1 = 0x87C37B91114253D5
    c2 = 0x4CF5AD432745937F
    length = len(data)
    h1 = seed & _MASK64
    h2 = seed & _MASK64

    nblocks = length // 16
    for i in range(nblocks):
        base = i * 16
        k1 = int.from_bytes(data[base : base + 8], "little")
        k2 = int.from_bytes(data[base + 8 : base + 16], "little")

        k1 = (k1 * c1) & _MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * c2) & _MASK64
        h1 ^= k1
        h1 = _rotl64(h1, 27)
        h1 = (h1 + h2) & _MASK64
        h1 = (h1 * 5 + 0x52DCE729) & _MASK64

        k2 = (k2 * c2) & _MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * c1) & _MASK64
        h2 ^= k2
        h2 = _rotl64(h2, 31)
        h2 = (h2 + h1) & _MASK64
        h2 = (h2 * 5 + 0x38495AB5) & _MASK64

    tail = data[nblocks * 16 :]
    k1 = 0
    k2 = 0
    tail_len = len(tail)
    if tail_len > 8:
        k2 = int.from_bytes(tail[8:].ljust(8, b"\x00"), "little")
        k2 = (k2 * c2) & _MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * c1) & _MASK64
        h2 ^= k2
    if tail_len > 0:
        k1 = int.from_bytes(tail[:8].ljust(8, b"\x00"), "little")
        k1 = (k1 * c1) & _MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * c2) & _MASK64
        h1 ^= k1

    h1 ^= length
    h2 ^= length
    h1 = (h1 + h2) & _MASK64
    h2 = (h2 + h1) & _MASK64
    h1 = _fmix64(h1)
    h2 = _fmix64(h2)
    h1 = (h1 + h2) & _MASK64
    h2 = (h2 + h1) & _MASK64
    return (h2 << 64) | h1


def murmur3_64(data: bytes, seed: int = 0) -> int:
    """Return a 64-bit MurmurHash3 digest (low half of the x64 128-bit hash)."""
    return murmur3_x64_128(data, seed) & _MASK64


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """Return the 32-bit MurmurHash3 (x86 variant) of ``data``."""
    c1 = 0xCC9E2D51
    c2 = 0x1B873593
    length = len(data)
    h1 = seed & _MASK32

    nblocks = length // 4
    for i in range(nblocks):
        k1 = int.from_bytes(data[i * 4 : i * 4 + 4], "little")
        k1 = (k1 * c1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * c2) & _MASK32
        h1 ^= k1
        h1 = _rotl32(h1, 13)
        h1 = (h1 * 5 + 0xE6546B64) & _MASK32

    tail = data[nblocks * 4 :]
    if tail:
        k1 = int.from_bytes(tail.ljust(4, b"\x00"), "little")
        k1 = (k1 * c1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * c2) & _MASK32
        h1 ^= k1

    h1 ^= length
    return _fmix32(h1)
