"""Shared page arithmetic for sections, the paging simulator, and attribution.

Every layer that reasons about 4 KiB pages — section layout
(:mod:`repro.image.sections`), the demand-paging simulator
(:mod:`repro.runtime.paging`), the Fig. 6 visualizations
(:mod:`repro.eval.textmap` / :mod:`repro.eval.heapmap`), and the startup
attribution layer (:mod:`repro.obs.attrib`) — must agree byte-for-byte on
which pages a byte range touches.  This module is the single source of that
arithmetic; duplicating the first/last-page computation is how off-by-one
spanning bugs creep in between layers.

Zero-length ranges span **no** pages: mapping zero bytes must not charge a
phantom fault (the :meth:`~repro.runtime.paging.PageCache.touch` contract).
Negative sizes are programming errors and raise.
"""

from __future__ import annotations

#: The simulated page size; matches the paper's 4 KiB accounting (Sec. 7.1).
PAGE_SIZE = 4096


def page_of(offset: int, page_size: int = PAGE_SIZE) -> int:
    """The page index containing byte ``offset``."""
    return offset // page_size


def page_count(size_bytes: int, page_size: int = PAGE_SIZE) -> int:
    """Pages needed to hold ``size_bytes`` (0 bytes -> 0 pages)."""
    if size_bytes < 0:
        raise ValueError(f"negative size {size_bytes}")
    return (size_bytes + page_size - 1) // page_size


def pages_spanned(offset: int, size: int, page_size: int = PAGE_SIZE) -> range:
    """The page indices touched by a byte range.

    A zero-length range spans no pages (empty range) — mirroring
    :meth:`repro.runtime.paging.PageCache.touch`, which treats zero-length
    touches as no-ops rather than silently charging one page.
    """
    if size < 0:
        raise ValueError(f"negative size {size}")
    first = offset // page_size
    if size == 0:
        return range(first, first)
    last = (offset + size - 1) // page_size
    return range(first, last + 1)
