"""LEB128-style variable-length integer codec.

Trace files produced by the tracing profiler (Sec. 6.1 of the paper) store
path IDs and object identities compactly.  We use unsigned LEB128 for
non-negative values and a zig-zag transform for signed values.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


class VarintDecodeError(ValueError):
    """A varint could not be decoded (truncated or overlong input).

    Subclasses :class:`ValueError` so existing ``except ValueError`` callers
    keep working; trace-level code re-wraps it into ``TraceDecodeError``.
    """


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as unsigned LEB128."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode an unsigned LEB128 integer.

    Returns ``(value, next_offset)``.
    """
    if offset < 0 or offset > len(data):
        raise VarintDecodeError(f"uvarint offset {offset} out of range")
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise VarintDecodeError("truncated uvarint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise VarintDecodeError("uvarint too long")


def zigzag_encode(value: int) -> int:
    """Map a signed integer to an unsigned one (zig-zag)."""
    return (value << 1) ^ (value >> 63) if value >= -(1 << 63) else _zigzag_big(value)


def _zigzag_big(value: int) -> int:
    # Arbitrary-precision fallback: Python ints are unbounded, so emulate the
    # usual two's-complement trick directly.
    return (value << 1) ^ (value >> (max(value.bit_length(), 63)))


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


def encode_svarint(value: int) -> bytes:
    """Encode a signed integer (zig-zag + LEB128)."""
    return encode_uvarint(zigzag_encode(value))


def decode_svarint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a signed integer (zig-zag + LEB128)."""
    raw, pos = decode_uvarint(data, offset)
    return zigzag_decode(raw), pos


def encode_uvarints(values: Iterable[int]) -> bytes:
    """Encode a sequence of non-negative integers back to back."""
    out = bytearray()
    for value in values:
        out += encode_uvarint(value)
    return bytes(out)


def decode_all_uvarints(data: bytes) -> List[int]:
    """Decode every unsigned varint in ``data``."""
    values: List[int] = []
    pos = 0
    while pos < len(data):
        value, pos = decode_uvarint(data, pos)
        values.append(value)
    return values
