"""Mergeable deterministic quantile sketches.

The fleet-scale north star needs p50/p95/p99 cold-start latency, and the
bench trend gate needs those percentiles to be *comparable across runs
and processes*: a worker's sketch merged into the parent must report the
same quantiles as one process observing the whole stream.  The
frexp-bucketed histograms of :mod:`repro.obs.metrics` cannot do that —
one-bucket-per-octave resolution turns p95 and p99 into the same number.

:class:`QuantileSketch` is a two-mode sketch:

* **exact mode** — up to :data:`DEFAULT_EXACT_CAP` observations are kept
  as an exact multiset (``{value: count}``); quantile queries are exact
  nearest-rank order statistics.
* **bucket mode** — past the cap, observations collapse into DDSketch-
  style logarithmic buckets with relative accuracy
  :data:`DEFAULT_ALPHA`: bucket ``i`` holds values in
  ``(gamma^(i-1), gamma^i]`` with ``gamma = (1+alpha)/(1-alpha)``, and a
  quantile query returns the bucket midpoint, guaranteeing
  ``|reported - true| <= alpha * true`` (relative rank-value error).
  Zeros and negative values get their own stores, so the sketch accepts
  any finite observation.

Every piece of state is an integer count keyed by a value or a bucket
index, and bucketing a value is a pure per-value function — so merge is
bucket-wise addition: **associative, commutative, and representation-
deterministic**.  Whether a stream is observed serially, or split across
workers and merged in any order or grouping, the final sketch (and
therefore every reported percentile) is byte-identical; the hypothesis
properties in ``tests/test_quantiles.py`` hold exactly that line.  The
exact→bucket transition preserves this: the merged representation
depends only on the observed multiset and the total count, never on the
merge tree.

Counts are monotone, so a sketch also supports :meth:`diff` — the
scheduler's worker-delta fold ships per-task sketch deltas exactly like
counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: relative accuracy of bucket-mode quantiles (1% of the true value)
DEFAULT_ALPHA = 0.01

#: observations kept exactly before collapsing into buckets
DEFAULT_EXACT_CAP = 512

#: the percentiles every surface reports by default
REPORTED_QUANTILES = (0.5, 0.95, 0.99)


def _gamma(alpha: float) -> float:
    return (1.0 + alpha) / (1.0 - alpha)


@dataclass
class QuantileSketch:
    """Deterministic mergeable quantile sketch (exact below a cap).

    All mutating operations keep the invariant that the internal
    representation is a pure function of (observed multiset, alpha, cap)
    — the bedrock of the serial-vs-parallel identity guarantee.
    """

    alpha: float = DEFAULT_ALPHA
    cap: int = DEFAULT_EXACT_CAP
    count: int = 0
    #: exact multiset while ``count <= cap`` (None once bucketized)
    exact: Optional[Dict[float, int]] = field(default_factory=dict)
    #: bucket index -> count for positive values (bucket mode)
    positive: Dict[int, int] = field(default_factory=dict)
    #: bucket index of ``abs(value)`` -> count for negative values
    negative: Dict[int, int] = field(default_factory=dict)
    #: exact-zero observations (log buckets cannot hold zero)
    zeros: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.cap < 0:
            raise ValueError(f"cap must be >= 0, got {self.cap}")

    # -- recording -----------------------------------------------------------

    def _bucket_index(self, magnitude: float) -> int:
        """Log-bucket index of a positive magnitude (pure per-value)."""
        return math.ceil(math.log(magnitude) / math.log(_gamma(self.alpha)))

    def _bucket_value(self, index: int) -> float:
        """Representative (midpoint) value of bucket ``index``."""
        gamma = _gamma(self.alpha)
        return 2.0 * gamma ** index / (gamma + 1.0)

    def observe(self, value: float, n: int = 1) -> None:
        """Record ``n`` observations of ``value``."""
        if n < 0:
            raise ValueError(f"observation count must be >= 0, got {n}")
        if not math.isfinite(value):
            raise ValueError(f"observations must be finite, got {value!r}")
        if n == 0:
            return
        value = float(value)
        if value == 0.0:
            # normalize -0.0: dict keys treat it as equal to +0.0 but
            # keep the first-inserted spelling, which would make the
            # representation depend on observation order
            value = 0.0
        self.count += n
        if self.exact is not None:
            self.exact[value] = self.exact.get(value, 0) + n
            if self.count > self.cap:
                self._densify()
            return
        self._bucket(value, n)

    def _bucket(self, value: float, n: int) -> None:
        if value == 0.0:
            self.zeros += n
        elif value > 0.0:
            index = self._bucket_index(value)
            self.positive[index] = self.positive.get(index, 0) + n
        else:
            index = self._bucket_index(-value)
            self.negative[index] = self.negative.get(index, 0) + n

    def _densify(self) -> None:
        """One-way exact -> bucket transition (count exceeded the cap)."""
        assert self.exact is not None
        items = self.exact
        self.exact = None
        for value, n in items.items():
            self._bucket(value, n)

    # -- merging / shipping --------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` in (in place; returns self).  Associative.

        Both sketches must share ``alpha`` and ``cap`` — quantile grids of
        different accuracy are not comparable and refusing loudly beats a
        silently wrong percentile.
        """
        if (other.alpha, other.cap) != (self.alpha, self.cap):
            raise ValueError(
                f"cannot merge sketches with different grids: "
                f"alpha/cap {self.alpha}/{self.cap} vs "
                f"{other.alpha}/{other.cap}")
        self.count += other.count
        if self.exact is not None and other.exact is not None:
            for value, n in other.exact.items():
                self.exact[value] = self.exact.get(value, 0) + n
            if self.count > self.cap:
                self._densify()
            return self
        if self.exact is not None:
            self._densify()
        self.zeros += other.zeros
        for index, n in other.positive.items():
            self.positive[index] = self.positive.get(index, 0) + n
        for index, n in other.negative.items():
            self.negative[index] = self.negative.get(index, 0) + n
        if other.exact is not None:
            for value, n in other.exact.items():
                self._bucket(value, n)
        return self

    def diff(self, earlier: "QuantileSketch") -> "QuantileSketch":
        """What accrued since ``earlier`` (same-stream snapshots only).

        Counts are monotone and the exact->bucket transition is one-way,
        so the delta is plain subtraction in whichever representation the
        *later* sketch is in.
        """
        delta = QuantileSketch(alpha=self.alpha, cap=self.cap)
        delta.count = self.count - earlier.count
        if self.exact is not None:
            # earlier is a prefix of the same stream => also exact
            prior = earlier.exact or {}
            delta.exact = {}
            for value, n in self.exact.items():
                d = n - prior.get(value, 0)
                if d:
                    delta.exact[value] = d
            return delta
        delta.exact = None
        prior_pos, prior_neg, prior_zero = _densified_view(earlier)
        delta.zeros = self.zeros - prior_zero
        for index, n in self.positive.items():
            d = n - prior_pos.get(index, 0)
            if d:
                delta.positive[index] = d
        for index, n in self.negative.items():
            d = n - prior_neg.get(index, 0)
            if d:
                delta.negative[index] = d
        return delta

    def copy(self) -> "QuantileSketch":
        return QuantileSketch(
            alpha=self.alpha, cap=self.cap, count=self.count,
            exact=dict(self.exact) if self.exact is not None else None,
            positive=dict(self.positive), negative=dict(self.negative),
            zeros=self.zeros,
        )

    # -- queries -------------------------------------------------------------

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (nearest-rank); ``None`` on an empty sketch.

        Exact mode returns the true order statistic; bucket mode returns
        a value within ``alpha`` relative error of it.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = max(1, math.ceil(q * self.count))
        seen = 0
        for value, n in self._ascending():
            seen += n
            if seen >= target:
                return value
        return None  # pragma: no cover - counts always sum to self.count

    def _ascending(self) -> Iterable[Tuple[float, int]]:
        """(value, count) pairs in ascending value order."""
        if self.exact is not None:
            yield from sorted(self.exact.items())
            return
        # negatives: larger magnitude bucket = smaller value
        for index in sorted(self.negative, reverse=True):
            yield -self._bucket_value(index), self.negative[index]
        if self.zeros:
            yield 0.0, self.zeros
        for index in sorted(self.positive):
            yield self._bucket_value(index), self.positive[index]

    def quantiles(self,
                  qs: Tuple[float, ...] = REPORTED_QUANTILES,
                  ) -> Dict[str, Optional[float]]:
        """The standard percentile report (``{"p50": ..., ...}``)."""
        return {f"p{round(q * 100):d}": self.quantile(q) for q in qs}

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Key-sorted plain-dict view (stable JSON serialization)."""
        return {
            "alpha": self.alpha,
            "cap": self.cap,
            "count": self.count,
            "exact": (sorted(self.exact.items())
                      if self.exact is not None else None),
            "negative": {str(k): v for k, v in sorted(self.negative.items())},
            "positive": {str(k): v for k, v in sorted(self.positive.items())},
            "zeros": self.zeros,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QuantileSketch":
        """Inverse of :meth:`as_dict` (history-store deserialization)."""
        exact = payload.get("exact")
        return cls(
            alpha=payload["alpha"],
            cap=payload["cap"],
            count=payload["count"],
            exact=({float(v): int(n) for v, n in exact}
                   if exact is not None else None),
            positive={int(k): int(v)
                      for k, v in payload.get("positive", {}).items()},
            negative={int(k): int(v)
                      for k, v in payload.get("negative", {}).items()},
            zeros=payload.get("zeros", 0),
        )


def _densified_view(sketch: QuantileSketch,
                    ) -> Tuple[Dict[int, int], Dict[int, int], int]:
    """Bucket-mode view of a sketch without mutating it."""
    if sketch.exact is None:
        return sketch.positive, sketch.negative, sketch.zeros
    view = sketch.copy()
    view._densify()
    return view.positive, view.negative, view.zeros


def merge_sketches(sketches: Iterable[QuantileSketch]) -> QuantileSketch:
    """Merge any number of sketches into a fresh one (inputs untouched)."""
    merged: Optional[QuantileSketch] = None
    for sketch in sketches:
        if merged is None:
            merged = sketch.copy()
        else:
            merged.merge(sketch)
    return merged if merged is not None else QuantileSketch()


__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_EXACT_CAP",
    "REPORTED_QUANTILES",
    "QuantileSketch",
    "merge_sketches",
]
