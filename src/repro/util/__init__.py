"""Shared utilities: hashing, varints, statistics."""

from .murmur3 import murmur3_32, murmur3_64, murmur3_x64_128
from .stats import ConfidenceInterval, confidence_interval_95, geomean, mean, ratio_factor, stdev

__all__ = [
    "murmur3_32", "murmur3_64", "murmur3_x64_128",
    "ConfidenceInterval", "confidence_interval_95", "geomean", "mean",
    "ratio_factor", "stdev",
]
