"""Shared utilities: hashing, varints, statistics, page arithmetic."""

from .murmur3 import murmur3_32, murmur3_64, murmur3_x64_128
from .pagemath import PAGE_SIZE, page_count, page_of, pages_spanned
from .stats import ConfidenceInterval, confidence_interval_95, geomean, mean, ratio_factor, stdev

__all__ = [
    "murmur3_32", "murmur3_64", "murmur3_x64_128",
    "PAGE_SIZE", "page_count", "page_of", "pages_spanned",
    "ConfidenceInterval", "confidence_interval_95", "geomean", "mean",
    "ratio_factor", "stdev",
]
