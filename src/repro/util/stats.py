"""Statistics helpers used by the evaluation harness.

The paper reports per-benchmark factors ``M_baseline / M_optimized`` (higher
is better), geometric means across benchmarks, and 95% confidence intervals
over 10 builds x 10 runs.  These helpers implement exactly those summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

# Two-sided 97.5% quantiles of Student's t distribution, indexed by degrees
# of freedom.  We avoid a scipy dependency in the core library; the table
# covers the sample sizes used by the harness (<=30) and falls back to the
# normal quantile beyond that.
_T_975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093,
    20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}
_Z_975 = 1.960


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator); 0.0 for n < 2."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of a sequence of positive numbers."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def t_quantile_975(dof: int) -> float:
    """Two-sided 95% Student-t quantile for ``dof`` degrees of freedom."""
    if dof < 1:
        raise ValueError("degrees of freedom must be >= 1")
    return _T_975.get(dof, _Z_975)


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean together with its symmetric 95% confidence half-width."""

    mean: float
    half_width: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} +/- {self.half_width:.3f}"


def confidence_interval_95(values: Sequence[float]) -> ConfidenceInterval:
    """95% CI for the mean of ``values`` using Student's t distribution."""
    n = len(values)
    if n == 0:
        raise ValueError("CI of empty sequence")
    m = mean(values)
    if n == 1:
        return ConfidenceInterval(m, 0.0)
    half = t_quantile_975(n - 1) * stdev(values) / math.sqrt(n)
    return ConfidenceInterval(m, half)


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence (mean of the middle two when even)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation (robust spread; 0.0 for n < 2)."""
    if len(values) < 2:
        return 0.0
    center = median(values)
    return median([abs(v - center) for v in values])


#: MAD -> sigma consistency constant for normal data (1 / Phi^-1(3/4))
MAD_SIGMA = 1.4826


def cusum_alarm(
    series: Sequence[float],
    target: float,
    sigma: float,
    k: float = 0.5,
    h: float = 4.0,
) -> "int | None":
    """One-sided (upward) CUSUM changepoint detector.

    Accumulates ``S_i = max(0, S_{i-1} + (x_i - target - k*sigma))`` and
    alarms at the first index where ``S_i > h*sigma`` — the classic Page
    test: a single large step trips it immediately, while a slow drift
    accumulates over several points and trips it late but surely, which
    per-point threshold checks (median ± MAD bands) structurally miss.

    ``target`` is the in-control level (e.g. the rolling median of the
    healthy history) and ``sigma`` the in-control spread (e.g. scaled
    MAD); ``k`` is the slack in sigmas (drifts smaller than ``k*sigma``
    per point never alarm) and ``h`` the decision interval.  Returns the
    alarming index or ``None``.  ``sigma`` must be positive — callers
    floor it (a deterministic series has MAD 0, and any change would be a
    genuine step).
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    s = 0.0
    for index, x in enumerate(series):
        s = max(0.0, s + (x - target - k * sigma))
        if s > h * sigma:
            return index
    return None


def ratio_factor(baseline: float, optimized: float) -> float:
    """The paper's improvement factor ``M_baseline / M_optimized``.

    Degenerate measurements (both zero) count as no change; a zero optimized
    measurement with a non-zero baseline is capped rather than infinite so
    that geometric means stay finite.
    """
    if baseline < 0 or optimized < 0:
        raise ValueError("measurements must be non-negative")
    if baseline == 0 and optimized == 0:
        return 1.0
    if optimized == 0:
        return float(baseline) if baseline > 0 else 1.0
    return baseline / optimized
