"""Content-addressed cache keys for pipeline artifacts.

Every cacheable artifact of the evaluation pipeline — compiled programs,
raw trace files, post-processed ordering profiles, built images, and run
metrics — is addressed by a SHA-256 digest of *everything that determines
its content*:

* the workload's MiniJava source text,
* the build/execution/policy configuration (fingerprinted from the
  dataclass fields, canonically serialized),
* the ordering strategy,
* the build seed, and
* the toolchain version (:data:`TOOLCHAIN_VERSION`), so artifacts from an
  older code revision or a different Python major.minor can never be
  confused with current ones.

Keys are pure functions of their inputs: the same (source, strategy,
config, seed, toolchain) always derives the same key, and any edit to any
ingredient derives a different key.  There is deliberately no "update"
notion — a changed input is a *different* artifact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sys
from typing import Any, Optional

from .. import __version__

#: bump when the cached payload layout changes incompatibly
CACHE_SCHEMA = 1

#: identity of the toolchain that produced an artifact; part of every key's
#: sidecar metadata and the stale-eviction criterion
TOOLCHAIN_VERSION = (
    f"repro-{__version__}/py{sys.version_info.major}.{sys.version_info.minor}"
    f"/cache-v{CACHE_SCHEMA}"
)


def _canon(value: Any) -> Any:
    """Reduce ``value`` to JSON-serializable canonical form.

    Dataclasses become ``{"__dc__": <class name>, <field>: ...}`` maps,
    mappings are key-sorted by the JSON encoder, and sets are sorted.
    Raises :class:`TypeError` for values with no canonical form (functions,
    open handles, ...) rather than silently fingerprinting their ``repr``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {"__dc__": type(value).__name__}
        for field in dataclasses.fields(value):
            out[field.name] = _canon(getattr(value, field.name))
        return out
    if isinstance(value, dict):
        return {str(key): _canon(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canon(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canon(item) for item in value)
    if isinstance(value, bytes):
        return {"__bytes__": hashlib.sha256(value).hexdigest()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__} for a cache key")


def fingerprint(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``value``.

    Used to reduce configuration dataclasses (:class:`BuildConfig`,
    :class:`ExecutionConfig`, policies) to a stable string that changes
    exactly when any field changes.  Raises :class:`TypeError` if ``value``
    contains something non-canonicalizable.
    """
    payload = json.dumps(_canon(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def source_digest(source: str) -> str:
    """Digest of a workload's MiniJava source text (byte-exact)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _derive(kind: str, *parts: Optional[str]) -> str:
    material = "\x1f".join([TOOLCHAIN_VERSION, kind] + [p or "" for p in parts])
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def program_key(src_digest: str) -> str:
    """Key of a compiled :class:`~repro.minijava.bytecode.Program`."""
    return _derive("program", src_digest)


def trace_key(src_digest: str, build_fp: str, profiler_fp: str,
              seed: int) -> str:
    """Key of the raw per-thread trace files of one instrumented run.

    ``profiler_fp`` fingerprints everything that shapes the traces beyond
    the build itself: dump mode, probe cost model, microservice flag.
    """
    return _derive("trace", src_digest, build_fp, profiler_fp, str(seed))


def profile_key(src_digest: str, build_fp: str, profiler_fp: str,
                seed: int, policy_fp: str) -> str:
    """Key of a post-processed :class:`ProfilingOutcome`.

    Includes the degradation-policy fingerprint: lenient/strict parsing and
    retry behaviour are part of what the outcome *is*.
    """
    return _derive("profile", src_digest, build_fp, profiler_fp, str(seed),
                   policy_fp)


def image_key(src_digest: str, build_fp: str, mode: str,
              code_ordering: Optional[str], heap_ordering: Optional[str],
              profiles_digest: str, seed: int) -> str:
    """Key of one built :class:`NativeImageBinary`.

    ``profiles_digest`` is empty for regular/instrumented builds; for
    optimized builds it binds the image to the exact profile content that
    guided it (so a re-profiled workload re-builds).
    """
    return _derive("image", src_digest, build_fp, mode, code_ordering,
                   heap_ordering, profiles_digest, str(seed))


def metrics_key(img_key: str, exec_fp: str, iterations: int, seed: int,
                watchdog_fp: str) -> str:
    """Key of the measured :class:`RunMetrics` list of one image."""
    return _derive("metrics", img_key, exec_fp, str(iterations), str(seed),
                   watchdog_fp)
