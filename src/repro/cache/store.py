"""Content-addressed on-disk artifact store.

Layout::

    <root>/
      trace/ab/abcdef....pkl      artifact payload (pickle)
      trace/ab/abcdef....json     sidecar metadata (toolchain, created, note)
      profile/..., image/..., metrics/..., program/...

Entries are immutable: a key fully determines the payload, so a ``put`` of
an existing key is a no-op.  Writes go through a temporary file that is
fsynced and then ``os.replace``d, so concurrent writers (the parallel
scheduler's worker processes) can race on the same key without ever
exposing a torn file, and a power cut between write and rename cannot
leave a short payload under the final name.  Temporary files orphaned by a
killed writer are swept on the next store open.

Every sidecar records a CRC32 of the payload; reads verify it before
unpickling, so a corrupted or truncated entry (storage rot, a torn write
outside the rename window) is *detected*, evicted, and recomputed by the
caller — never unpickled into garbage.  Failure modes are non-fatal by
design: an unreadable, stale, or checksum-mismatched payload is treated as
a miss (self-healing), and I/O errors during ``put`` skip the write;
nothing here ever raises into the pipeline.

``fault_injector`` is the chaos hook (see
:class:`repro.robustness.chaos.ChaosCacheInjector`): an object whose
``before_io(op, kind, key)`` may raise a transient :class:`OSError` and
whose ``after_put(kind, key, path)`` may damage the just-written payload.
Both failure shapes are absorbed by the store itself, which is exactly
what the chaos tests assert.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..obs import get_tracer, metrics
from .keys import TOOLCHAIN_VERSION

#: artifact namespaces (subdirectories of the cache root)
KIND_PROGRAM = "program"
KIND_TRACE = "trace"
KIND_PROFILE = "profile"
KIND_IMAGE = "image"
KIND_METRICS = "metrics"
#: small rung-decision records (verification/degradation/quarantine) stored
#: beside each optimized image, loadable without the image payload itself
KIND_REPORT = "report"
ALL_KINDS = (KIND_PROGRAM, KIND_TRACE, KIND_PROFILE, KIND_IMAGE,
             KIND_METRICS, KIND_REPORT)


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`ArtifactCache` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    #: corrupted/torn entries detected (checksum or unpickle failure),
    #: evicted, and left for the caller to recompute
    healed: int = 0
    #: transient I/O errors absorbed (read served as a miss, write skipped)
    io_errors: int = 0
    #: per-kind breakdown of hits/misses, e.g. ``{"image": [3, 1]}``
    by_kind: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when none)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def record(self, kind: str, hit: bool) -> None:
        slot = self.by_kind.setdefault(kind, [0, 0])
        if hit:
            self.hits += 1
            slot[0] += 1
        else:
            self.misses += 1
            slot[1] += 1

    def snapshot(self) -> Tuple[int, int]:
        """(hits, misses) — for delta accounting around a task."""
        return (self.hits, self.misses)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "healed": self.healed,
            "io_errors": self.io_errors,
            "hit_rate": round(self.hit_rate, 4),
            "by_kind": {k: {"hits": v[0], "misses": v[1]}
                        for k, v in sorted(self.by_kind.items())},
        }


class ArtifactCache:
    """Content-addressed pickle store with stale and size-bound eviction.

    Parameters
    ----------
    root:
        Cache directory (created on demand).  Safe to share between
        processes; all writes are atomic renames.
    toolchain:
        Identity recorded with every entry; entries recorded under a
        different toolchain are treated as misses and evicted lazily
        (or eagerly via :meth:`evict_stale`).
    max_entries_per_kind:
        Optional ceiling per namespace; the oldest entries (by creation
        stamp, tie-broken by insertion sequence then key) are evicted
        once a ``put`` exceeds it.
    """

    def __init__(self, root: Path, toolchain: str = TOOLCHAIN_VERSION,
                 max_entries_per_kind: Optional[int] = None,
                 memo_entries: int = 64) -> None:
        self.root = Path(root)
        self.toolchain = toolchain
        self.max_entries_per_kind = max_entries_per_kind
        self.stats = CacheStats()
        #: chaos hook: ``before_io(op, kind, key)`` may raise OSError,
        #: ``after_put(kind, key, path)`` may damage the written payload.
        #: Armed per task by the scheduler's chaos machinery; None = off.
        self.fault_injector = None
        self._sweep_orphans()
        # In-memory LRU over disk loads: repeat lookups of the same key
        # (six strategies sharing one baseline image / profile) skip the
        # unpickle, which dominates warm-path wall-clock.  Entries are
        # immutable by contract, so handing out the same object is safe;
        # only successful *disk* loads are memoized, keeping the disk the
        # source of truth right after a put.
        self._memo: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
        self._memo_entries = memo_entries
        # Monotonic insertion sequence recorded in every sidecar: the
        # ``created`` wall-clock stamp alone cannot order entries written
        # faster than clock resolution (and goes backwards on clock
        # steps), so eviction tie-breaks on (created, seq, key).
        self._seq = 0

    # -- paths -----------------------------------------------------------------

    def _entry_path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.pkl"

    def _meta_path(self, kind: str, key: str) -> Path:
        return self._entry_path(kind, key).with_suffix(".json")

    def _sweep_orphans(self) -> int:
        """Delete ``.tmp-*`` files a killed writer left behind.

        ``put`` stages payloads in ``mkstemp`` files next to their final
        path; a process killed between write and rename orphans one.  They
        are invisible to lookups (the final name was never created) but
        accumulate dead space, so every store open sweeps them.  Returns
        the number of orphans removed.
        """
        if not self.root.exists():
            return 0
        removed = 0
        for orphan in self.root.glob("*/*/.tmp-*"):
            try:
                orphan.unlink()
                removed += 1
            except OSError:
                continue
        if removed:
            metrics().counter("cache.orphans_swept", removed)
        return removed

    def _transient_error(self, kind: str, op: str) -> None:
        """Account one absorbed I/O error (read → miss, write → skip)."""
        self.stats.io_errors += 1
        metrics().counter(f"cache.io_error.{op}")
        get_tracer().instant("cache.io_error", cat="cache",
                             kind=kind, op=op)

    # -- lookup ----------------------------------------------------------------

    def contains(self, kind: str, key: str) -> bool:
        """Whether an entry exists (without counting a hit or a miss)."""
        return self._entry_path(kind, key).exists()

    def get(self, kind: str, key: str) -> Optional[Any]:
        """Load an artifact; ``None`` on miss.

        A stale (different-toolchain) or missing entry counts as a miss
        and is deleted so the caller's rebuild replaces it.  A payload
        whose CRC32 sidecar does not match — or that fails to unpickle —
        is *healed*: detected, evicted, counted, and reported as a miss so
        the caller recomputes; corrupted bytes are never returned.  A
        transient I/O error (including an armed ``fault_injector``) is a
        plain miss that leaves the entry in place for the next reader.
        """
        memo_key = (kind, key)
        if memo_key in self._memo:
            self._memo.move_to_end(memo_key)
            self.stats.record(kind, hit=True)
            metrics().counter(f"cache.hit.{kind}")
            return self._memo[memo_key]
        injector = self.fault_injector
        if injector is not None:
            try:
                injector.before_io("get", kind, key)
            except OSError:
                self._transient_error(kind, "get")
                return self._miss(kind)
        path = self._entry_path(kind, key)
        try:
            meta = json.loads(self._meta_path(kind, key).read_text())
        except (OSError, ValueError):
            self._delete(kind, key)
            return self._miss(kind)
        if meta.get("toolchain") != self.toolchain:
            self._delete(kind, key)
            return self._miss(kind)
        try:
            payload = path.read_bytes()
        except OSError:
            self._delete(kind, key)
            return self._miss(kind)
        crc = meta.get("crc32")
        if crc is not None and zlib.crc32(payload) != crc:
            return self._heal(kind, key, "checksum mismatch")
        try:
            value = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any damage shape, never raise
            # Legacy entry without a checksum, or a corruption the CRC
            # cannot see (it covers the bytes we read, not the pickle
            # semantics): still detect-evict-recompute.
            return self._heal(kind, key, "undecodable payload")
        self.stats.record(kind, hit=True)
        metrics().counter(f"cache.hit.{kind}")
        if self._memo_entries > 0:
            self._memo[memo_key] = value
            while len(self._memo) > self._memo_entries:
                self._memo.popitem(last=False)
        return value

    def _miss(self, kind: str) -> None:
        self.stats.record(kind, hit=False)
        metrics().counter(f"cache.miss.{kind}")
        return None

    def _heal(self, kind: str, key: str, reason: str) -> None:
        """Evict a corrupted entry and account the self-heal as a miss."""
        self._delete(kind, key)
        self.stats.healed += 1
        metrics().counter(f"cache.heal.{kind}")
        get_tracer().instant("cache.heal", cat="cache", kind=kind,
                             key=key, reason=reason)
        return self._miss(kind)

    def put(self, kind: str, key: str, value: Any,
            note: str = "") -> bool:
        """Store an artifact; returns whether a new entry was written.

        A value that cannot be pickled is skipped (``False``) rather than
        raised — caching is an accelerator, never a correctness gate.  So
        is any I/O error during the write (disk full, transient storage
        fault, an armed ``fault_injector``): the entry simply is not
        stored and the caller keeps its computed value.
        """
        path = self._entry_path(kind, key)
        injector = self.fault_injector
        try:
            if injector is not None:
                injector.before_io("put", kind, key)
            if path.exists():
                return False
            try:
                payload = pickle.dumps(value,
                                       protocol=pickle.HIGHEST_PROTOCOL)
            except (TypeError, AttributeError, pickle.PicklingError):
                return False
            path.parent.mkdir(parents=True, exist_ok=True)
            self._atomic_write(path, payload)
            self._seq += 1
            meta = {
                "toolchain": self.toolchain,
                "created": time.time(),
                "seq": self._seq,
                "kind": kind,
                "key": key,
                "crc32": zlib.crc32(payload),
                "note": note,
            }
            self._atomic_write(self._meta_path(kind, key),
                               json.dumps(meta, sort_keys=True)
                               .encode("utf-8"))
        except OSError:
            self._transient_error(kind, "put")
            return False
        self.stats.puts += 1
        metrics().counter(f"cache.put.{kind}")
        if injector is not None:
            injector.after_put(kind, key, path)
        if self.max_entries_per_kind is not None:
            self._evict_over_limit(kind)
        return True

    @staticmethod
    def _atomic_write(path: Path, payload: bytes) -> None:
        """Write-fsync-rename so the final name never holds a torn file.

        Without the fsync a crash after ``os.replace`` could surface a
        payload whose data blocks never reached the disk — the classic
        torn-write window.  The checksum sidecar would still catch it on
        read, but durability-before-visibility keeps the window closed in
        the first place.
        """
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- eviction ----------------------------------------------------------------

    def _delete(self, kind: str, key: str) -> None:
        self._memo.pop((kind, key), None)
        for path in (self._entry_path(kind, key), self._meta_path(kind, key)):
            try:
                path.unlink()
            except OSError:
                pass

    def entries(self, kind: str) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """All (key, metadata) pairs of one namespace."""
        base = self.root / kind
        if not base.exists():
            return
        for meta_path in sorted(base.glob("*/*.json")):
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError):
                continue
            yield meta_path.stem, meta

    def entry_count(self, kind: str) -> int:
        base = self.root / kind
        return sum(1 for _ in base.glob("*/*.pkl")) if base.exists() else 0

    def evict_stale(self) -> int:
        """Delete every entry recorded under a different toolchain.

        Returns the number of entries evicted.  Run this after upgrading
        the repo (or switching Python versions) to reclaim dead space;
        lookups already skip stale entries lazily either way.
        """
        evicted = 0
        for kind in ALL_KINDS:
            for key, meta in list(self.entries(kind)):
                if meta.get("toolchain") != self.toolchain:
                    self._delete(kind, key)
                    evicted += 1
        self.stats.evictions += evicted
        if evicted:
            metrics().counter("cache.evict", evicted)
            get_tracer().instant("cache.evict_stale", cat="cache",
                                 evicted=evicted)
        return evicted

    def _evict_over_limit(self, kind: str) -> None:
        limit = self.max_entries_per_kind
        assert limit is not None
        # Oldest-first by creation stamp, tie-broken by the monotonic
        # insertion sequence and finally the key: equal timestamps from
        # fast successive puts (or a backwards clock step within one
        # stamp) can no longer scramble the eviction order.  Entries
        # written before sequence numbers existed sort oldest (-1).
        aged = sorted(
            self.entries(kind),
            key=lambda item: (item[1].get("created", 0.0),
                              item[1].get("seq", -1),
                              item[0]),
        )
        excess = len(aged) - limit
        for key, _meta in aged[:max(excess, 0)]:
            self._delete(kind, key)
            self.stats.evictions += 1
            metrics().counter("cache.evict")
            get_tracer().instant("cache.evict", cat="cache",
                                 kind=kind, key=key)

    def clear(self) -> None:
        """Delete every entry (the directory tree stays in place)."""
        for kind in ALL_KINDS:
            for key, _meta in list(self.entries(kind)):
                self._delete(kind, key)

    # -- reporting ---------------------------------------------------------------

    def describe(self) -> str:
        lines = [f"artifact cache at {self.root} ({self.toolchain})"]
        for kind in ALL_KINDS:
            count = self.entry_count(kind)
            if count:
                lines.append(f"  {kind}: {count} entries")
        stats = self.stats
        lines.append(f"  session: {stats.hits} hits / {stats.misses} misses "
                     f"({stats.hit_rate:.0%}), {stats.puts} puts, "
                     f"{stats.evictions} evictions, {stats.healed} healed, "
                     f"{stats.io_errors} I/O errors absorbed")
        return "\n".join(lines)
