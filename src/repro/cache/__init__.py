"""Content-addressed artifact cache for the evaluation pipeline.

Keys every expensive pipeline artifact — compiled programs, raw traces,
post-processed ordering profiles, built images, and run metrics — by a
digest of (workload source, ordering strategy, build/execution/policy
configuration, toolchain version, seed), so unchanged combinations are
loaded instead of rebuilt.  See :mod:`repro.cache.keys` for the key
derivations and :mod:`repro.cache.store` for the on-disk store.

Arm it on a pipeline::

    from repro.cache import ArtifactCache
    pipeline = WorkloadPipeline(workload, cache=ArtifactCache(Path(".cache")))

or let :class:`repro.eval.scheduler.SweepScheduler` /
``python -m repro bench`` manage one for a whole sweep.
"""

from .keys import (
    CACHE_SCHEMA,
    TOOLCHAIN_VERSION,
    fingerprint,
    image_key,
    metrics_key,
    profile_key,
    program_key,
    source_digest,
    trace_key,
)
from .store import (
    ALL_KINDS,
    KIND_IMAGE,
    KIND_METRICS,
    KIND_PROFILE,
    KIND_PROGRAM,
    KIND_REPORT,
    KIND_TRACE,
    ArtifactCache,
    CacheStats,
)

__all__ = [
    "ALL_KINDS",
    "ArtifactCache",
    "CACHE_SCHEMA",
    "CacheStats",
    "KIND_IMAGE",
    "KIND_METRICS",
    "KIND_PROFILE",
    "KIND_PROGRAM",
    "KIND_REPORT",
    "KIND_TRACE",
    "TOOLCHAIN_VERSION",
    "fingerprint",
    "image_key",
    "metrics_key",
    "profile_key",
    "program_key",
    "source_digest",
    "trace_key",
]
