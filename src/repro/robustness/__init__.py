"""Fault injection and degraded operation.

The paper's profiling methodology (Sec. 6.1) lives with abnormal
termination: microservice workloads are SIGKILLed after the first response,
and buffered trace records die with the process.  This package makes every
such failure mode *reproducible* and gives the pipeline a principled answer
when it happens anyway:

* :mod:`repro.robustness.faults` — a deterministic, seed-driven
  :class:`FaultInjector` that plugs into the trace buffers and damages
  traces in controlled ways (truncation, dropped flushes, bit flips,
  mid-run kills, partial header writes);
* :mod:`repro.robustness.degradation` — the
  :class:`DegradationPolicy`/:class:`DegradationReport` pair that lets
  :class:`repro.eval.pipeline.WorkloadPipeline` retry, salvage, and fall
  back to the default layout instead of raising;
* the salvage parser itself lives next to the format in
  :mod:`repro.profiling.tracefile` and is re-exported here.
"""

from ..profiling.tracefile import (
    SalvagedTrace,
    SalvageReport,
    TraceDecodeError,
    parse_trace_lenient,
)
from .degradation import (
    DegradationPolicy,
    DegradationReport,
    ProfilingAttempt,
)
from .faults import (
    ALL_FAULT_KINDS,
    FAULT_BIT_FLIP,
    FAULT_DROP_FLUSH,
    FAULT_KILL_AT_RECORD,
    FAULT_PARTIAL_HEADER,
    FAULT_TRUNCATE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "SalvagedTrace", "SalvageReport", "TraceDecodeError", "parse_trace_lenient",
    "DegradationPolicy", "DegradationReport", "ProfilingAttempt",
    "ALL_FAULT_KINDS", "FAULT_BIT_FLIP", "FAULT_DROP_FLUSH",
    "FAULT_KILL_AT_RECORD", "FAULT_PARTIAL_HEADER", "FAULT_TRUNCATE",
    "FaultInjector", "FaultPlan", "FaultSpec",
]
