"""Fault injection and degraded operation.

The paper's profiling methodology (Sec. 6.1) lives with abnormal
termination: microservice workloads are SIGKILLed after the first response,
and buffered trace records die with the process.  This package makes every
such failure mode *reproducible* and gives the pipeline a principled answer
when it happens anyway:

* :mod:`repro.robustness.faults` — a deterministic, seed-driven
  :class:`FaultInjector` that plugs into the trace buffers and damages
  traces in controlled ways (truncation, dropped flushes, bit flips,
  mid-run kills, partial header writes);
* :mod:`repro.robustness.degradation` — the
  :class:`DegradationPolicy`/:class:`DegradationReport` pair that lets
  :class:`repro.eval.pipeline.WorkloadPipeline` retry, salvage, and fall
  back to the default layout instead of raising;
* the salvage parser itself lives next to the format in
  :mod:`repro.profiling.tracefile` and is re-exported here;
* :mod:`repro.robustness.chaos` — the layer-above counterpart of
  ``faults``: a seed-driven :class:`ChaosPolicy` that injects worker
  crashes, hangs, transient cache I/O errors, artifact corruption, and
  oversized results into the *parallel sweep*, which the scheduler and
  artifact cache must survive without changing any surviving result.
"""

from ..profiling.tracefile import (
    SalvagedTrace,
    SalvageReport,
    TraceDecodeError,
    parse_trace_lenient,
)
from .chaos import (
    ALL_CHAOS_CLASSES,
    CHAOS_CACHE_IO,
    CHAOS_CLASS_UNIVERSE,
    CHAOS_CORRUPT_ARTIFACT,
    CHAOS_CRASH_EXIT,
    CHAOS_HANG,
    CHAOS_OVERSIZED_RESULT,
    CHAOS_STALE_PROFILE,
    CHAOS_WORKER_CRASH,
    ChaosCacheInjector,
    ChaosPolicy,
    SimulatedWorkerCrash,
)
from .degradation import (
    DegradationPolicy,
    DegradationReport,
    ProfilingAttempt,
)
from .faults import (
    ALL_FAULT_KINDS,
    FAULT_BIT_FLIP,
    FAULT_DROP_FLUSH,
    FAULT_KILL_AT_RECORD,
    FAULT_PARTIAL_HEADER,
    FAULT_TRUNCATE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "SalvagedTrace", "SalvageReport", "TraceDecodeError", "parse_trace_lenient",
    "ALL_CHAOS_CLASSES", "CHAOS_CACHE_IO", "CHAOS_CLASS_UNIVERSE",
    "CHAOS_CORRUPT_ARTIFACT", "CHAOS_CRASH_EXIT", "CHAOS_HANG",
    "CHAOS_OVERSIZED_RESULT", "CHAOS_STALE_PROFILE", "CHAOS_WORKER_CRASH",
    "ChaosCacheInjector", "ChaosPolicy", "SimulatedWorkerCrash",
    "DegradationPolicy", "DegradationReport", "ProfilingAttempt",
    "ALL_FAULT_KINDS", "FAULT_BIT_FLIP", "FAULT_DROP_FLUSH",
    "FAULT_KILL_AT_RECORD", "FAULT_PARTIAL_HEADER", "FAULT_TRUNCATE",
    "FaultInjector", "FaultPlan", "FaultSpec",
]
