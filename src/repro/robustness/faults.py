"""Deterministic, seed-driven fault injection for the tracing profiler.

A :class:`FaultPlan` is a small immutable description of *what* goes wrong;
a :class:`FaultInjector` executes it through the hook surface of
:class:`repro.profiling.tracebuf.ThreadTraceBuffer` (``on_record`` /
``on_flush`` / ``on_emit``).  Because plans are plain data and all
randomness is confined to :meth:`FaultPlan.random`, every failure mode is
exactly reproducible from a seed — the property the robustness tests and
the CI fuzz job rely on.

Fault kinds:

``truncate_at_byte``
    The trace file ends at byte N (storage loss, kill mid-flush when N
    lands inside the last chunk).
``drop_flush``
    The Nth buffer flush never reaches the file (lost write).
``bit_flip``
    One bit of the emitted file is flipped (storage corruption).
``kill_at_record``
    The whole session is SIGKILLed after the Nth appended record
    (mid-run abnormal termination; pending buffers are lost).
``partial_header``
    Only the first N (< 6) header bytes reach the file (kill during
    trace-file creation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..profiling.tracefile import HEADER_FIXED_BYTES

FAULT_TRUNCATE = "truncate_at_byte"
FAULT_DROP_FLUSH = "drop_flush"
FAULT_BIT_FLIP = "bit_flip"
FAULT_KILL_AT_RECORD = "kill_at_record"
FAULT_PARTIAL_HEADER = "partial_header"

ALL_FAULT_KINDS = (
    FAULT_TRUNCATE,
    FAULT_DROP_FLUSH,
    FAULT_BIT_FLIP,
    FAULT_KILL_AT_RECORD,
    FAULT_PARTIAL_HEADER,
)


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    ``at`` is kind-specific: a byte offset (``truncate_at_byte``,
    ``bit_flip`` — taken modulo the file length at emit time), a flush
    index (``drop_flush``), a record index (``kill_at_record``), or a
    header byte count (``partial_header``).  ``thread_id`` restricts the
    fault to one thread's trace file (``None`` = any thread).
    """

    kind: str
    at: int = 0
    bit: int = 0  # bit_flip only: which bit (0-7) of the byte to flip
    thread_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"fault position must be >= 0, got {self.at}")

    def applies_to(self, thread_id: int) -> bool:
        return self.thread_id is None or self.thread_id == thread_id

    def describe(self) -> str:
        where = "" if self.thread_id is None else f" [thread {self.thread_id}]"
        if self.kind == FAULT_BIT_FLIP:
            return f"bit_flip(byte {self.at}, bit {self.bit}){where}"
        return f"{self.kind}({self.at}){where}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seed-labelled list of faults."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: Optional[int] = None

    @classmethod
    def of(cls, *faults: FaultSpec) -> "FaultPlan":
        return cls(faults=tuple(faults))

    @classmethod
    def random(cls, seed: int, n_faults: int = 2,
               kinds: Optional[Sequence[str]] = None) -> "FaultPlan":
        """A reproducible plan: same seed, same faults, forever."""
        rng = random.Random(seed)
        kinds = tuple(kinds or ALL_FAULT_KINDS)
        faults = []
        for _ in range(max(1, n_faults)):
            kind = rng.choice(kinds)
            if kind == FAULT_TRUNCATE:
                spec = FaultSpec(kind, at=rng.randint(HEADER_FIXED_BYTES, 4096))
            elif kind == FAULT_DROP_FLUSH:
                spec = FaultSpec(kind, at=rng.randint(0, 3))
            elif kind == FAULT_BIT_FLIP:
                spec = FaultSpec(kind, at=rng.randint(0, 4096),
                                 bit=rng.randint(0, 7))
            elif kind == FAULT_KILL_AT_RECORD:
                spec = FaultSpec(kind, at=rng.randint(1, 500))
            else:  # FAULT_PARTIAL_HEADER
                spec = FaultSpec(kind, at=rng.randint(0, HEADER_FIXED_BYTES - 1))
            faults.append(spec)
        return cls(faults=tuple(faults), seed=seed)

    def describe(self) -> str:
        label = "" if self.seed is None else f" (seed {self.seed})"
        if not self.faults:
            return f"no faults{label}"
        return "; ".join(f.describe() for f in self.faults) + label


class FaultInjector:
    """Executes a :class:`FaultPlan` through the trace-buffer hooks.

    Pass one as ``fault_hook=`` to
    :class:`repro.profiling.tracebuf.TraceSession`; the session calls
    :meth:`attach` so mid-run kill faults can reach every buffer.  One
    injector can be reused across profiling retries — per-run counters
    reset on every :meth:`attach`.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.session = None
        #: human-readable log of faults that actually fired
        self.triggered: List[str] = []
        self._fired: set = set()
        self._records_seen = 0
        self._flushes_seen = 0

    # -- lifecycle -------------------------------------------------------

    def attach(self, session) -> None:
        """Bind to a new profiling session and reset per-run counters."""
        self.session = session
        self._records_seen = 0
        self._flushes_seen = 0

    def _fire(self, spec: FaultSpec, detail: str = "") -> None:
        key = (id(spec), detail)
        if key not in self._fired:
            self._fired.add(key)
            self.triggered.append(spec.describe() + (f" {detail}" if detail else ""))

    # -- hook surface (called by ThreadTraceBuffer) ------------------------

    def on_record(self, buffer, record: bytes) -> Optional[bytes]:
        self._records_seen += 1
        for spec in self.plan.faults:
            if (spec.kind == FAULT_KILL_AT_RECORD
                    and spec.applies_to(buffer.thread_id)
                    and self._records_seen == spec.at):
                self._fire(spec)
                if self.session is not None:
                    self.session.kill_all()
                else:
                    buffer.kill()
                return None
        return record

    def on_flush(self, buffer, payload: bytes) -> Optional[bytes]:
        index = self._flushes_seen
        self._flushes_seen += 1
        for spec in self.plan.faults:
            if (spec.kind == FAULT_DROP_FLUSH
                    and spec.applies_to(buffer.thread_id)
                    and index == spec.at):
                self._fire(spec)
                return None
        return payload

    def on_emit(self, buffer, data: bytes) -> bytes:
        """Apply storage-level damage to the emitted file bytes.

        Pure in ``data``, so repeated reads of ``buffer.data`` stay
        consistent.
        """
        for spec in self.plan.faults:
            if not spec.applies_to(buffer.thread_id):
                continue
            if spec.kind == FAULT_PARTIAL_HEADER:
                keep = min(spec.at, len(data))
                self._fire(spec, f"kept {keep} bytes")
                data = data[:keep]
            elif spec.kind == FAULT_TRUNCATE:
                if spec.at < len(data):
                    self._fire(spec, f"cut {len(data) - spec.at} bytes")
                    data = data[:spec.at]
            elif spec.kind == FAULT_BIT_FLIP:
                if data:
                    pos = spec.at % len(data)
                    mutated = bytearray(data)
                    mutated[pos] ^= 1 << (spec.bit % 8)
                    self._fire(spec, f"at byte {pos}")
                    data = bytes(mutated)
        return data
