"""Deterministic, seed-driven fault injection for the *parallel pipeline*.

PR 1's :class:`~repro.robustness.faults.FaultInjector` damages trace bytes
inside one profiling run; this module attacks the layer above it — the
sweep scheduler and the content-addressed artifact cache — with the
failure modes a fleet-scale evaluation actually meets:

``worker_crash``
    The worker process dies mid-task (``os._exit`` in pool mode, which
    breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`; a
    raised :class:`SimulatedWorkerCrash` in inline mode).
``hang``
    The task wedges: the worker sleeps instead of running the task body,
    so the scheduler's hung-task deadline (reusing the
    :mod:`repro.validation.watchdog` pattern) must trip and retry.
``cache_io``
    Transient :class:`OSError` on artifact-cache reads and writes (NFS
    blips, ``EMFILE``, a disk briefly going away).  The cache must treat
    reads as misses and skip writes, never raise.
``corrupt_artifact``
    A stored artifact pickle is damaged on disk right after the ``put``
    (bit flip or truncation — a torn write the atomic rename did not
    cover, or storage rot).  The checksum sidecar must detect it on read,
    evict the entry, and let the caller recompute.
``oversized_result``
    The task's result ships with a large ballast payload and a stall —
    a worker returning far more data than expected (IPC pressure).
``stale_profile``
    The profile service serves an old-epoch profile as if it were live
    traffic (a lagging collection pipeline).  Consumed by the
    continuous-PGO loop (:mod:`repro.pgo.loop`), not the sweep scheduler:
    the drift detector sees no movement, misses the refresh, and must
    recover on the next epoch's fresh data — exercised by
    ``repro chaos --fault-classes stale_profile``.

Everything is a pure function of the policy seed and the (workload,
strategy, attempt) coordinates, so a chaos schedule is exactly
reproducible: ``repro chaos --seed N`` fails the same cells the same way,
forever.  The headline invariant the scheduler + cache must uphold under
any schedule: **surviving canonical sweep results are byte-identical to a
fault-free serial run** — faults may cost time or quarantine cells, never
silently change results.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from ..util.murmur3 import murmur3_64

CHAOS_WORKER_CRASH = "worker_crash"
CHAOS_HANG = "hang"
CHAOS_CACHE_IO = "cache_io"
CHAOS_CORRUPT_ARTIFACT = "corrupt_artifact"
CHAOS_OVERSIZED_RESULT = "oversized_result"
CHAOS_STALE_PROFILE = "stale_profile"

#: the sweep-layer classes `repro chaos` sweeps by default (stale_profile
#: attacks the PGO loop, not the scheduler, so it is not among them)
ALL_CHAOS_CLASSES = (
    CHAOS_WORKER_CRASH,
    CHAOS_HANG,
    CHAOS_CACHE_IO,
    CHAOS_CORRUPT_ARTIFACT,
    CHAOS_OVERSIZED_RESULT,
)

#: every class a ChaosPolicy accepts (sweep classes + PGO-loop classes)
CHAOS_CLASS_UNIVERSE = ALL_CHAOS_CLASSES + (CHAOS_STALE_PROFILE,)

#: exit status a chaos-crashed pool worker dies with (shows up in logs as
#: the reason the pool broke; anything non-zero works)
CHAOS_CRASH_EXIT = 87


class SimulatedWorkerCrash(RuntimeError):
    """Inline-mode stand-in for a worker process dying mid-task."""


@dataclass(frozen=True)
class ChaosPolicy:
    """What goes wrong, where, and how often — all derived from ``seed``.

    A cell (workload, strategy) is *targeted* when a murmur3 hash of its
    coordinates under ``seed`` falls below ``rate``; a targeted cell gets
    exactly one fault class (hash-picked among ``classes``), so ``rate``
    is the per-cell fault probability regardless of how many classes are
    enabled.  Faults fire on attempts ``0 .. faulty_attempts-1`` only —
    the default (1) means every injected failure is recoverable by a
    single retry — unless ``persistent`` is set, in which case the cell
    fails on *every* attempt and must end in poison-task quarantine (the
    CI ``injected-unrecoverable`` mode).

    Frozen and picklable by design: the policy travels unchanged into
    scheduler worker processes.
    """

    seed: int = 0
    #: per-cell fault probability in [0, 1]
    rate: float = 0.0
    classes: Tuple[str, ...] = ALL_CHAOS_CLASSES
    #: attempts (0-based) on which an injected fault fires; 1 = first try
    #: only, so one retry always recovers
    faulty_attempts: int = 1
    #: unrecoverable mode: the fault fires on every attempt
    persistent: bool = False
    #: how long an injected hang sleeps (the scheduler's task deadline
    #: should be below this for the watchdog trip to be exercised)
    hang_s: float = 3.0
    #: stall injected before returning an oversized result
    stall_s: float = 0.05
    #: ballast bytes attached to an oversized result
    ballast_bytes: int = 1 << 16
    #: how many cache operations one cache fault poisons: transient
    #: OSErrors for ``cache_io``, damaged puts for ``corrupt_artifact``
    cache_ops: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        unknown = [c for c in self.classes if c not in CHAOS_CLASS_UNIVERSE]
        if unknown:
            raise ValueError(f"unknown chaos class(es) {unknown}; "
                             f"choose from {CHAOS_CLASS_UNIVERSE}")
        if not self.classes:
            raise ValueError("at least one chaos class is required")

    # -- the deterministic schedule ---------------------------------------

    def _unit(self, *parts: object) -> float:
        """A reproducible uniform draw in [0, 1) for these coordinates."""
        material = "\x1f".join(str(p) for p in parts).encode("utf-8")
        return (murmur3_64(material, seed=self.seed & 0xFFFFFFFF)
                % (1 << 24)) / float(1 << 24)

    def targeted(self, workload: str, strategy: str) -> bool:
        """Whether this cell is on the fault schedule at all."""
        return self.rate > 0.0 and self._unit(workload, strategy) < self.rate

    def fault_for(self, workload: str, strategy: str,
                  attempt: int) -> Optional[str]:
        """The fault class injected into this attempt (None = run clean).

        Pure in its inputs: the same (policy, workload, strategy, attempt)
        always answers the same, regardless of worker, ordering, or host.
        """
        if not self.targeted(workload, strategy):
            return None
        if not self.persistent and attempt >= self.faulty_attempts:
            return None
        pick = int(self._unit(workload, strategy, "class")
                   * len(self.classes))
        return self.classes[min(pick, len(self.classes) - 1)]

    def describe(self) -> str:
        mode = "persistent" if self.persistent else (
            f"first {self.faulty_attempts} attempt(s)")
        return (f"chaos seed={self.seed} rate={self.rate:.0%} "
                f"[{', '.join(self.classes)}] ({mode})")


class ChaosCacheInjector:
    """Per-task cache damage executor, armed on an :class:`ArtifactCache`.

    Implements the cache's fault-injector protocol (see
    :class:`repro.cache.store.ArtifactCache`): :meth:`before_io` may raise
    a transient :class:`OSError` for the first ``transient_ops``
    operations, and :meth:`after_put` damages the freshly written payload
    of the first ``corrupt_puts`` puts (deterministic bit flip or
    truncation, hash-picked).  Budgets are per-instance, i.e. per task
    attempt; the scheduler arms a fresh injector for each chaotic task
    and disarms it afterwards.
    """

    def __init__(self, policy: ChaosPolicy, workload: str, strategy: str,
                 transient_ops: int = 0, corrupt_puts: int = 0) -> None:
        self.policy = policy
        self.workload = workload
        self.strategy = strategy
        self.transient_ops = transient_ops
        self.corrupt_puts = corrupt_puts
        #: log of the damage actually done (for reports and tests)
        self.injected = []

    def before_io(self, op: str, kind: str, key: str) -> None:
        if self.transient_ops <= 0:
            return
        self.transient_ops -= 1
        self.injected.append(f"transient OSError on {op} {kind}/{key[:12]}")
        raise OSError(f"chaos: injected transient I/O error on {op} "
                      f"({self.workload}/{self.strategy})")

    def after_put(self, kind: str, key: str, path: Path) -> None:
        if self.corrupt_puts <= 0:
            return
        self.corrupt_puts -= 1
        try:
            blob = bytearray(path.read_bytes())
        except OSError:
            return
        if not blob:
            return
        draw = self.policy._unit(self.workload, self.strategy, kind, key)
        pos = int(self.policy._unit(key, "pos") * len(blob))
        pos = min(pos, len(blob) - 1)
        if draw < 0.5:
            blob[pos] ^= 1 << int(self.policy._unit(key, "bit") * 8) % 8
            detail = f"bit flip at byte {pos}"
        else:
            del blob[max(pos, 1):]
            detail = f"truncated to {len(blob)} bytes"
        try:
            path.write_bytes(bytes(blob))
        except OSError:
            return
        self.injected.append(f"corrupted {kind}/{key[:12]}: {detail}")
