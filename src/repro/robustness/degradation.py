"""Degradation policy and report for the profile→optimize pipeline.

Related PGO systems stress that production profiles are routinely stale,
partial, or from a mismatched build; layout tooling must degrade gracefully
rather than abort (Hoag et al., arXiv:2211.09285; Makor et al.,
arXiv:2502.20536).  The policy below encodes the ladder the pipeline
descends when a profiling run goes wrong:

1. parse leniently and accept a *salvaged* profile if enough records
   survive;
2. otherwise retry profiling up to ``max_retries`` more times with
   exponential-backoff-style seed perturbation (a fresh build + run);
3. at build time, if the heap-ID match rate against the snapshot falls
   below ``min_match_rate`` (the profile is from a mismatched build —
   exactly what the paper's three ID strategies of Sec. 5 try to prevent),
   drop the heap ordering and keep the default traversal layout;
4. if the built layout fails structural verification
   (:func:`repro.validation.verify_layout`), quarantine the (workload,
   strategy) combination and roll back to the default layout — a proven-bad
   ordering must never be measured;
5. as the last rung, build with the default (build-order) layout.

Every decision is recorded in a :class:`DegradationReport`, surfaced
through :mod:`repro.api` and the ``repro robustness``/``repro verify`` CLI
subcommands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from ..ordering.profiles import ProfileCompleteness

if TYPE_CHECKING:  # type-only: validation must stay importable on its own
    from ..validation.invariants import LayoutVerificationReport


@dataclass(frozen=True)
class DegradationPolicy:
    """Knobs of the degradation ladder."""

    #: additional profiling attempts after the first one fails
    max_retries: int = 2
    #: salvaged records needed to accept a profile at all
    min_records: int = 1
    #: heap-ID profile-to-snapshot match-rate floor; below it the heap
    #: ordering is dropped (mismatched-build guard)
    min_match_rate: float = 0.25
    #: base of the seed perturbation between retries
    seed_stride: int = 101

    def retry_seed(self, seed: int, attempt: int) -> int:
        """Seed for the given attempt (0 = the original seed).

        The perturbation grows like an exponential backoff — attempt ``k``
        moves ``seed_stride * (2^k - 1)`` away — so retries quickly leave
        the neighbourhood of a seed whose build happens to tickle a fault.
        """
        return seed + self.seed_stride * ((1 << attempt) - 1)


@dataclass
class ProfilingAttempt:
    """One profiling try and how it ended."""

    attempt: int
    seed: int
    status: str  # "ok" | "salvaged" | "empty" | "error"
    records: int = 0
    detail: str = ""

    def describe(self) -> str:
        extra = f": {self.detail}" if self.detail else ""
        return (f"attempt {self.attempt} (seed {self.seed}): {self.status}, "
                f"{self.records} records{extra}")


@dataclass
class DegradationReport:
    """Everything the degradation machinery decided, and why."""

    workload: str = ""
    strategy: str = ""
    attempts: List[ProfilingAttempt] = field(default_factory=list)
    completeness: Optional[ProfileCompleteness] = None
    #: where the profile that fed the build came from
    profile_source: str = "profiled"  # "profiled" | "salvaged" | "none"
    code_fallback: bool = False
    heap_fallback: bool = False
    heap_match_rate: Optional[float] = None
    #: the built layout failed structural verification and was replaced by
    #: a default-layout rebuild (quarantine-and-rollback rung)
    layout_fallback: bool = False
    #: the (workload, strategy) ordering profile is now quarantined
    quarantined: bool = False
    #: the convicting verification report, when the rung fired
    verification: Optional["LayoutVerificationReport"] = None
    degraded: bool = False
    reasons: List[str] = field(default_factory=list)

    @property
    def fallback_used(self) -> bool:
        """True when any part of the build fell back to the default layout."""
        return (self.code_fallback or self.heap_fallback
                or self.layout_fallback or self.profile_source == "none")

    def note(self, reason: str) -> None:
        self.degraded = True
        self.reasons.append(reason)
        from ..obs import get_event_log, get_tracer, metrics
        metrics().counter("robustness.degradation.notes")
        get_tracer().instant("degradation", cat="robustness",
                             workload=self.workload, strategy=self.strategy,
                             reason=reason)
        get_event_log().emit("degradation", workload=self.workload,
                             strategy=self.strategy, reason=reason)

    def summary(self) -> str:
        lines = [f"degradation report [{self.workload}"
                 + (f" / {self.strategy}" if self.strategy else "") + "]"]
        for attempt in self.attempts:
            lines.append(f"  {attempt.describe()}")
        lines.append(f"  profile source: {self.profile_source}")
        if self.completeness is not None:
            lines.append(f"  profile data: {self.completeness.summary()}")
        if self.heap_match_rate is not None:
            lines.append(f"  heap ID match rate: {self.heap_match_rate:.0%}")
        if self.code_fallback:
            lines.append("  code ordering: fell back to default (alphabetical)")
        if self.heap_fallback:
            lines.append("  heap ordering: fell back to default (traversal)")
        if self.layout_fallback:
            lines.append("  layout verification: FAILED; rolled back to the "
                         "default layout"
                         + (" and quarantined the ordering profile"
                            if self.quarantined else ""))
        if self.verification is not None and not self.verification.ok:
            for line in self.verification.summary().splitlines():
                lines.append(f"    {line}")
        for reason in self.reasons:
            lines.append(f"  - {reason}")
        if not self.degraded:
            lines.append("  no degradation: profile complete, build fully optimized")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.summary()
