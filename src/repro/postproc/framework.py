"""Post-processing framework (paper Sec. 6.2).

Reads per-thread trace files, decodes path IDs back into event sequences
using the instrumentation manifest, and dispatches events to visitor-style
ordering analyses.  Each analysis keeps an ordered, duplicate-free set in
encounter order; after all events are consumed, the sets become the CSV
ordering profiles used by the optimizing build.

Multi-threaded traces are processed in thread-creation order and
concatenated, with duplicates removed (Sec. 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from ..ordering.ids import ALL_STRATEGIES
from ..ordering.profiles import (
    CallCountProfile,
    CodeOrderProfile,
    HeapOrderProfile,
    ProfileBundle,
)
from ..profiling.instrument import InstrumentationManifest
from ..profiling.tracefile import (
    CuEntryRecord,
    MethodEntryRecord,
    PathRecord,
    parse_trace,
)


# -- events -----------------------------------------------------------------


@dataclass(frozen=True)
class MethodEntryEvent:
    signature: str


@dataclass(frozen=True)
class CuEntryEvent:
    root_signature: str


@dataclass(frozen=True)
class HeapAccessEvent:
    object_index: int  # snapshot index in the instrumented build


TraceEvent = Union[MethodEntryEvent, CuEntryEvent, HeapAccessEvent]


class TraceDecodeError(ValueError):
    """A trace file contradicts the manifest (path/site count mismatch)."""


def decode_events(
    manifest: InstrumentationManifest, trace_data: bytes
) -> Iterable[TraceEvent]:
    """Decode one thread's trace file into its event sequence."""
    trace = parse_trace(trace_data)
    for record in trace.records:
        if isinstance(record, MethodEntryRecord):
            yield MethodEntryEvent(manifest.method_signatures[record.method_id])
        elif isinstance(record, CuEntryRecord):
            yield CuEntryEvent(manifest.cu_signatures[record.cu_id])
        elif isinstance(record, PathRecord):
            cfg = manifest.cfg_for_id(record.method_id)
            sites = cfg.heap_sites_on_path(record.start_block, record.path_value)
            if len(sites) != len(record.object_ids):
                raise TraceDecodeError(
                    f"{cfg.method.signature}: path ({record.start_block}, "
                    f"{record.path_value}) has {len(sites)} heap-access sites "
                    f"but the record carries {len(record.object_ids)} IDs"
                )
            for object_id in record.object_ids:
                if object_id != 0:  # 0 = runtime-allocated, not in the image
                    yield HeapAccessEvent(object_index=object_id - 1)


# -- analyses ------------------------------------------------------------------


class OrderingAnalysis:
    """Base visitor: sees every event in execution order."""

    def accept(self, event: TraceEvent) -> None:
        raise NotImplementedError


class _OrderedSet:
    """Insertion-ordered set with O(1) membership."""

    def __init__(self) -> None:
        self._seen: set = set()
        self.items: List = []

    def add(self, item) -> None:
        if item not in self._seen:
            self._seen.add(item)
            self.items.append(item)


class CuOrderAnalysis(OrderingAnalysis):
    """First-entry order of compilation units (cu ordering, Sec. 4.1)."""

    def __init__(self) -> None:
        self._order = _OrderedSet()

    def accept(self, event: TraceEvent) -> None:
        if isinstance(event, CuEntryEvent):
            self._order.add(event.root_signature)

    def profile(self) -> CodeOrderProfile:
        return CodeOrderProfile(kind="cu", signatures=list(self._order.items))


class MethodOrderAnalysis(OrderingAnalysis):
    """First-entry order of methods (method ordering, Sec. 4.2)."""

    def __init__(self) -> None:
        self._order = _OrderedSet()

    def accept(self, event: TraceEvent) -> None:
        if isinstance(event, MethodEntryEvent):
            self._order.add(event.signature)

    def profile(self) -> CodeOrderProfile:
        return CodeOrderProfile(kind="method", signatures=list(self._order.items))


class HeapOrderAnalysis(OrderingAnalysis):
    """First-access order of image-heap objects under one ID strategy."""

    def __init__(self, manifest: InstrumentationManifest, strategy: str) -> None:
        self._manifest = manifest
        self.strategy = strategy
        self._order = _OrderedSet()

    def accept(self, event: TraceEvent) -> None:
        if isinstance(event, HeapAccessEvent):
            ids = self._manifest.object_ids.get(event.object_index)
            if ids is None:
                return
            self._order.add(ids[self.strategy])

    def profile(self) -> HeapOrderProfile:
        return HeapOrderProfile(strategy=self.strategy, ids=list(self._order.items))


class CallCountAnalysis(OrderingAnalysis):
    """Method call counts (standard Native-Image PGO content)."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def accept(self, event: TraceEvent) -> None:
        if isinstance(event, MethodEntryEvent):
            self.counts[event.signature] = self.counts.get(event.signature, 0) + 1

    def profile(self) -> CallCountProfile:
        return CallCountProfile(counts=dict(self.counts))


# -- driver ------------------------------------------------------------------------


def run_analyses(
    manifest: InstrumentationManifest,
    trace_files: List[bytes],
    analyses: List[OrderingAnalysis],
) -> None:
    """Feed all trace files (thread-creation order) through the analyses."""
    for trace_data in trace_files:
        for event in decode_events(manifest, trace_data):
            for analysis in analyses:
                analysis.accept(event)


def build_profiles(
    manifest: InstrumentationManifest,
    trace_files: List[bytes],
    strategies: Optional[List[str]] = None,
) -> ProfileBundle:
    """One-stop post-processing: traces -> complete profile bundle."""
    cu_analysis = CuOrderAnalysis()
    method_analysis = MethodOrderAnalysis()
    call_analysis = CallCountAnalysis()
    heap_analyses = [
        HeapOrderAnalysis(manifest, strategy)
        for strategy in (strategies or list(ALL_STRATEGIES))
    ]
    analyses: List[OrderingAnalysis] = [cu_analysis, method_analysis, call_analysis]
    analyses.extend(heap_analyses)
    run_analyses(manifest, trace_files, analyses)

    bundle = ProfileBundle()
    bundle.code["cu"] = cu_analysis.profile()
    bundle.code["method"] = method_analysis.profile()
    bundle.calls = call_analysis.profile()
    for analysis in heap_analyses:
        bundle.heap[analysis.strategy] = analysis.profile()
    return bundle
