"""Post-processing framework (paper Sec. 6.2).

Reads per-thread trace files, decodes path IDs back into event sequences
using the instrumentation manifest, and dispatches events to visitor-style
ordering analyses.  Each analysis keeps an ordered, duplicate-free set in
encounter order; after all events are consumed, the sets become the CSV
ordering profiles used by the optimizing build.

Multi-threaded traces are processed in thread-creation order and
concatenated, with duplicates removed (Sec. 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from ..ordering.ids import ALL_STRATEGIES
from ..ordering.profiles import (
    CallCountProfile,
    CodeOrderProfile,
    HeapOrderProfile,
    ProfileBundle,
    ProfileCompleteness,
)
from ..profiling.instrument import InstrumentationManifest
from ..profiling.tracefile import (
    CuEntryRecord,
    MethodEntryRecord,
    PathRecord,
    SalvageReport,
    TraceDecodeError,
    TraceRecord,
    parse_trace,
    parse_trace_lenient,
)

__all__ = [
    "MethodEntryEvent", "CuEntryEvent", "HeapAccessEvent", "TraceEvent",
    "TraceDecodeError", "decode_events", "decode_events_lenient",
    "LenientDecode", "OrderingAnalysis", "CuOrderAnalysis",
    "MethodOrderAnalysis", "HeapOrderAnalysis", "CallCountAnalysis",
    "run_analyses", "build_profiles",
]


# -- events -----------------------------------------------------------------


@dataclass(frozen=True)
class MethodEntryEvent:
    signature: str


@dataclass(frozen=True)
class CuEntryEvent:
    root_signature: str


@dataclass(frozen=True)
class HeapAccessEvent:
    object_index: int  # snapshot index in the instrumented build


TraceEvent = Union[MethodEntryEvent, CuEntryEvent, HeapAccessEvent]


def _record_events(
    manifest: InstrumentationManifest, record: TraceRecord
) -> List[TraceEvent]:
    """Decode one record against the manifest.

    Raises :class:`TraceDecodeError` when the record contradicts the
    manifest — an out-of-range ID or a path/site count mismatch, the
    signature of a trace from a different (mismatched) build.
    """
    try:
        if isinstance(record, MethodEntryRecord):
            return [MethodEntryEvent(manifest.method_signatures[record.method_id])]
        if isinstance(record, CuEntryRecord):
            return [CuEntryEvent(manifest.cu_signatures[record.cu_id])]
        cfg = manifest.cfg_for_id(record.method_id)
        sites = cfg.heap_sites_on_path(record.start_block, record.path_value)
    except TraceDecodeError:
        raise
    except (IndexError, KeyError, ValueError) as exc:
        raise TraceDecodeError(f"record contradicts manifest: {exc}") from exc
    if len(sites) != len(record.object_ids):
        raise TraceDecodeError(
            f"{cfg.method.signature}: path ({record.start_block}, "
            f"{record.path_value}) has {len(sites)} heap-access sites "
            f"but the record carries {len(record.object_ids)} IDs"
        )
    return [
        HeapAccessEvent(object_index=object_id - 1)
        for object_id in record.object_ids
        if object_id != 0  # 0 = runtime-allocated, not in the image
    ]


def decode_events(
    manifest: InstrumentationManifest, trace_data: bytes
) -> Iterable[TraceEvent]:
    """Decode one thread's trace file into its event sequence (strict)."""
    trace = parse_trace(trace_data)
    for record in trace.records:
        for event in _record_events(manifest, record):
            yield event


@dataclass
class LenientDecode:
    """Result of :func:`decode_events_lenient` for one trace file."""

    events: List[TraceEvent] = field(default_factory=list)
    salvage: SalvageReport = field(default_factory=SalvageReport)
    records_decoded: int = 0
    #: structurally fine records the manifest rejects (mismatched build)
    records_undecodable: int = 0


def decode_events_lenient(
    manifest: InstrumentationManifest, trace_data: bytes
) -> LenientDecode:
    """Best-effort decode: salvage the trace, skip undecodable records."""
    salvaged = parse_trace_lenient(trace_data)
    outcome = LenientDecode(salvage=salvaged.report)
    for record in salvaged.trace.records:
        try:
            events = _record_events(manifest, record)
        except TraceDecodeError:
            outcome.records_undecodable += 1
            continue
        outcome.records_decoded += 1
        outcome.events.extend(events)
    return outcome


# -- analyses ------------------------------------------------------------------


class OrderingAnalysis:
    """Base visitor: sees every event in execution order."""

    def accept(self, event: TraceEvent) -> None:
        raise NotImplementedError


class _OrderedSet:
    """Insertion-ordered set with O(1) membership."""

    def __init__(self) -> None:
        self._seen: set = set()
        self.items: List = []

    def add(self, item) -> None:
        if item not in self._seen:
            self._seen.add(item)
            self.items.append(item)


class CuOrderAnalysis(OrderingAnalysis):
    """First-entry order of compilation units (cu ordering, Sec. 4.1)."""

    def __init__(self) -> None:
        self._order = _OrderedSet()

    def accept(self, event: TraceEvent) -> None:
        if isinstance(event, CuEntryEvent):
            self._order.add(event.root_signature)

    def profile(self) -> CodeOrderProfile:
        return CodeOrderProfile(kind="cu", signatures=list(self._order.items))


class MethodOrderAnalysis(OrderingAnalysis):
    """First-entry order of methods (method ordering, Sec. 4.2)."""

    def __init__(self) -> None:
        self._order = _OrderedSet()

    def accept(self, event: TraceEvent) -> None:
        if isinstance(event, MethodEntryEvent):
            self._order.add(event.signature)

    def profile(self) -> CodeOrderProfile:
        return CodeOrderProfile(kind="method", signatures=list(self._order.items))


class HeapOrderAnalysis(OrderingAnalysis):
    """First-access order of image-heap objects under one ID strategy."""

    def __init__(self, manifest: InstrumentationManifest, strategy: str) -> None:
        self._manifest = manifest
        self.strategy = strategy
        self._order = _OrderedSet()

    def accept(self, event: TraceEvent) -> None:
        if isinstance(event, HeapAccessEvent):
            ids = self._manifest.object_ids.get(event.object_index)
            if ids is None:
                return
            self._order.add(ids[self.strategy])

    def profile(self) -> HeapOrderProfile:
        return HeapOrderProfile(strategy=self.strategy, ids=list(self._order.items))


class CallCountAnalysis(OrderingAnalysis):
    """Method call counts (standard Native-Image PGO content)."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def accept(self, event: TraceEvent) -> None:
        if isinstance(event, MethodEntryEvent):
            self.counts[event.signature] = self.counts.get(event.signature, 0) + 1

    def profile(self) -> CallCountProfile:
        return CallCountProfile(counts=dict(self.counts))


# -- driver ------------------------------------------------------------------------


def run_analyses(
    manifest: InstrumentationManifest,
    trace_files: List[bytes],
    analyses: List[OrderingAnalysis],
    lenient: bool = False,
) -> Optional[ProfileCompleteness]:
    """Feed all trace files (thread-creation order) through the analyses.

    Strict mode raises :class:`TraceDecodeError` on the first damaged trace
    and returns ``None``.  Lenient mode salvages what it can from every
    trace and returns a :class:`ProfileCompleteness` accounting of what was
    recovered vs. dropped.
    """
    if not lenient:
        for trace_data in trace_files:
            for event in decode_events(manifest, trace_data):
                for analysis in analyses:
                    analysis.accept(event)
        return None

    completeness = ProfileCompleteness(traces=len(trace_files))
    for trace_data in trace_files:
        outcome = decode_events_lenient(manifest, trace_data)
        report = outcome.salvage
        completeness.records_recovered += report.records_recovered
        completeness.records_unverified += report.records_unverified
        completeness.records_undecodable += outcome.records_undecodable
        completeness.corrupt_chunks += report.corrupt_chunks
        completeness.bytes_dropped += report.bytes_dropped
        completeness.notes.extend(report.notes)
        if not report.header_ok:
            completeness.traces_unreadable += 1
        elif not report.complete or outcome.records_undecodable:
            completeness.traces_damaged += 1
        for event in outcome.events:
            for analysis in analyses:
                analysis.accept(event)
    return completeness


def build_profiles(
    manifest: InstrumentationManifest,
    trace_files: List[bytes],
    strategies: Optional[List[str]] = None,
    lenient: bool = False,
) -> ProfileBundle:
    """One-stop post-processing: traces -> complete profile bundle.

    With ``lenient=True`` damaged traces are salvaged instead of raising,
    and the bundle's ``completeness`` annotates how much data survived.
    """
    cu_analysis = CuOrderAnalysis()
    method_analysis = MethodOrderAnalysis()
    call_analysis = CallCountAnalysis()
    heap_analyses = [
        HeapOrderAnalysis(manifest, strategy)
        for strategy in (strategies or list(ALL_STRATEGIES))
    ]
    analyses: List[OrderingAnalysis] = [cu_analysis, method_analysis, call_analysis]
    analyses.extend(heap_analyses)
    completeness = run_analyses(manifest, trace_files, analyses, lenient=lenient)

    bundle = ProfileBundle(completeness=completeness)
    bundle.code["cu"] = cu_analysis.profile()
    bundle.code["method"] = method_analysis.profile()
    bundle.calls = call_analysis.profile()
    for analysis in heap_analyses:
        bundle.heap[analysis.strategy] = analysis.profile()
    return bundle
