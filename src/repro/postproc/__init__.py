"""Trace post-processing: decoding and ordering analyses."""

from .framework import (
    CallCountAnalysis,
    CuOrderAnalysis,
    HeapOrderAnalysis,
    MethodOrderAnalysis,
    TraceDecodeError,
    build_profiles,
    decode_events,
    run_analyses,
)

__all__ = [
    "CallCountAnalysis", "CuOrderAnalysis", "HeapOrderAnalysis",
    "MethodOrderAnalysis", "TraceDecodeError", "build_profiles",
    "decode_events", "run_analyses",
]
