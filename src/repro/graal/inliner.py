"""Size- and profile-driven inliner forming compilation units.

The paper's central obstacle is that CUs differ across builds because
inlining decisions differ (Sec. 2): instrumentation code inflates method
sizes, and PGO makes hot call sites attractive.  This inliner reproduces
both effects through two inputs:

* ``size_fn`` — the machine-code size of a method *in this build*; the
  instrumented build passes a function that includes probe bytes, so fewer
  callees fit under the thresholds;
* ``call_counts`` — when present (optimizing build), call sites whose callee
  is hot get a larger inline budget, so the optimized build inlines *more*
  than the regular build.

Both shifts change the CU set, the CU sizes, and (downstream) the heap
snapshot — exactly the divergence the object-matching strategies must cope
with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from ..minijava.bytecode import CompiledMethod, Program
from ..ordering.profiles import CallCountProfile
from .cunits import CompilationUnit, layout_members
from .reachability import ReachabilityResult, virtual_targets


@dataclass(frozen=True)
class InlinerConfig:
    """Inlining thresholds (bytes of simulated machine code)."""

    trivial_size: int = 120  # always inline below this
    hot_size: int = 420  # inline below this when the callee is hot (PGO)
    hot_call_threshold: int = 8  # calls needed to count as hot
    max_depth: int = 4
    cu_budget: int = 2400  # max CU size before inlining stops


class Inliner:
    """Forms the CU set for one build."""

    def __init__(
        self,
        program: Program,
        reachability: ReachabilityResult,
        size_fn: Callable[[CompiledMethod], int],
        config: Optional[InlinerConfig] = None,
        call_counts: Optional[CallCountProfile] = None,
    ) -> None:
        self._program = program
        self._reach = reachability
        self._size_fn = size_fn
        self._config = config or InlinerConfig()
        self._calls = call_counts
        self._virtual_names = self._collect_virtual_names()

    def _collect_virtual_names(self) -> Set[str]:
        """Names used at virtual call sites anywhere in reachable code."""
        names: Set[str] = set()
        for method in self._reach.reachable_methods(self._program):
            for instr in method.code:
                if instr.op == "CALL_VIRTUAL":
                    names.add(instr.args[0])
        return names

    # -- public API ------------------------------------------------------------

    def form_units(self) -> List[CompilationUnit]:
        """Compute the CU set for all reachable methods."""
        reachable = self._reach.reachable_methods(self._program)
        units: List[CompilationUnit] = []
        inlined_somewhere: Set[str] = set()
        self._non_inlined_targets: Set[str] = set()
        plans: Dict[str, List[CompiledMethod]] = {}

        for method in reachable:
            inline_bodies = self._plan_inlines(method)
            plans[method.signature] = inline_bodies
            inlined_somewhere.update(m.signature for m in inline_bodies)

        entry_sig = self._program.entry_method().signature
        for method in reachable:
            if self._is_fully_absorbed(method, inlined_somewhere, entry_sig):
                continue
            units.append(layout_members(method, plans[method.signature], self._size_fn))
        return units

    def _is_fully_absorbed(
        self, method: CompiledMethod, inlined_somewhere: Set[str], entry_sig: str
    ) -> bool:
        """True when ``method`` needs no standalone CU.

        A trivial method that was inlined at *all* its call sites, is never
        the target of a virtual dispatch (which needs an address), and is
        not the entry point has no code of its own in the binary.
        """
        if method.signature == entry_sig:
            return False
        if method.name in self._virtual_names and not method.is_static:
            return False
        if method.signature in self._non_inlined_targets:
            # Some call site (e.g. a recursive one) jumps to it directly.
            return False
        if method.signature not in inlined_somewhere:
            return False
        return self._size_fn(method) <= self._config.trivial_size

    # -- inline planning ---------------------------------------------------------

    def _plan_inlines(self, root: CompiledMethod) -> List[CompiledMethod]:
        """DFS over call sites, collecting inlined bodies in visit order."""
        config = self._config
        bodies: List[CompiledMethod] = []
        budget_used = self._size_fn(root)

        non_inlined = getattr(self, "_non_inlined_targets", set())

        def visit(method: CompiledMethod, depth: int, path: Set[str]) -> None:
            nonlocal budget_used
            for kind, cls_name, name in method.called_signatures():
                target = self._resolve_unique(kind, cls_name, name)
                if target is None:
                    continue
                if target.name == "<clinit>":
                    continue
                if (
                    depth >= config.max_depth
                    or target.signature in path
                    or not self._should_inline(target, self._size_fn(target))
                    or budget_used + self._size_fn(target) > config.cu_budget
                ):
                    non_inlined.add(target.signature)
                    continue
                budget_used += self._size_fn(target)
                bodies.append(target)
                visit(target, depth + 1, path | {target.signature})

        visit(root, 0, {root.signature})
        return bodies

    def _should_inline(self, target: CompiledMethod, size: int) -> bool:
        config = self._config
        if size <= config.trivial_size:
            return True
        if self._calls is not None and self._calls.is_hot(
            target.signature, config.hot_call_threshold
        ):
            return size <= config.hot_size
        return False

    def _resolve_unique(
        self, kind: str, cls_name: str, name: str
    ) -> Optional[CompiledMethod]:
        """The unique call target, or None when unknown/polymorphic."""
        if kind in ("static", "super", "ctor"):
            cls = self._program.classes.get(cls_name)
            while cls is not None:
                method = cls.methods.get(name)
                if method is not None:
                    if kind == "static" and not method.is_static:
                        cls = cls.superclass
                        continue
                    return method
                cls = cls.superclass
            return None
        # Virtual: inline only when devirtualizable to one target.
        targets = virtual_targets(self._program, self._reach, name)
        if len(targets) == 1:
            return targets[0]
        return None


def default_size_fn(method: CompiledMethod) -> int:
    """Machine-code size without instrumentation."""
    return method.code_size()


def form_compilation_units(
    program: Program,
    reachability: ReachabilityResult,
    size_fn: Callable[[CompiledMethod], int] = default_size_fn,
    config: Optional[InlinerConfig] = None,
    call_counts: Optional[CallCountProfile] = None,
) -> List[CompilationUnit]:
    """Convenience wrapper around :class:`Inliner`."""
    return Inliner(program, reachability, size_fn, config, call_counts).form_units()
