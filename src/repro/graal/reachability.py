"""Reachability analysis (points-to-lite) for the simulated Native Image.

Native Image decides what goes into the binary with an iterative points-to
analysis, using *saturation* to mark virtual calls as having all possible
targets once the target set crosses a threshold (Wimmer et al., PLDI'24; see
paper Sec. 2).  We implement Rapid Type Analysis (RTA) over MiniJava
bytecode with the same saturation mechanism:

* a **static/super/ctor call** reaches its uniquely resolved target;
* a **virtual call** by name reaches the resolutions in all *instantiated*
  classes — unless the name saturates (more than ``saturation_threshold``
  declarations program-wide), in which case every declaration of the name is
  conservatively reachable;
* ``NEW C`` marks ``C`` instantiated, which can retroactively add targets
  for already-seen virtual names;
* class references (statics, casts, instanceof, array element classes)
  make the class reachable, so its ``<clinit>`` runs at build time.

The analysis is conservative on purpose: as in the real system, it pulls in
more code than a run ever executes, which is exactly why profile-guided
layout has something to win.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..minijava.bytecode import ClassInfo, CompiledMethod, Program


@dataclass
class ReachabilityResult:
    """Outcome of the analysis."""

    methods: Set[str] = field(default_factory=set)  # reachable method signatures
    classes: Set[str] = field(default_factory=set)  # reachable class names
    instantiated: Set[str] = field(default_factory=set)
    saturated_names: Set[str] = field(default_factory=set)
    string_literal_ids: Set[int] = field(default_factory=set)

    def reachable_methods(self, program: Program) -> List[CompiledMethod]:
        """Reachable methods as objects, in deterministic (signature) order."""
        out = []
        for method in program.all_methods():
            if method.signature in self.methods and method.name != "<clinit>":
                out.append(method)
        return out

    def build_time_classes(self, program: Program) -> List[ClassInfo]:
        """Reachable classes whose initializers run at build time."""
        return [program.classes[name] for name in sorted(self.classes)
                if name in program.classes]


class ReachabilityAnalysis:
    """Worklist RTA over a compiled program."""

    def __init__(self, program: Program, saturation_threshold: int = 5) -> None:
        self._program = program
        self._threshold = saturation_threshold
        self._result = ReachabilityResult()
        self._worklist: List[CompiledMethod] = []
        # virtual names seen at call sites, to re-resolve when a class becomes
        # instantiated later.
        self._pending_virtual: Set[str] = set()
        # name -> all declarations program-wide (computed lazily)
        self._decl_index: Dict[str, List[CompiledMethod]] = {}

    def run(self, entry_points: Optional[List[CompiledMethod]] = None) -> ReachabilityResult:
        """Run to fixpoint from ``entry_points`` (default: ``Main.main``)."""
        self._index_declarations()
        entries = entry_points or [self._program.entry_method()]
        for entry in entries:
            self._mark_method(entry)
            self._mark_class(entry.owner)
        while self._worklist:
            method = self._worklist.pop()
            self._scan(method)
        return self._result

    # -- marking --------------------------------------------------------------

    def _index_declarations(self) -> None:
        for cls in self._program.classes.values():
            for name, method in cls.methods.items():
                self._decl_index.setdefault(name, []).append(method)

    def _mark_method(self, method: CompiledMethod) -> None:
        if method.signature in self._result.methods:
            return
        self._result.methods.add(method.signature)
        self._worklist.append(method)
        self._mark_class(method.owner)

    def _mark_class(self, name: str) -> None:
        base = name.rstrip("[]")
        if base in ("int", "double", "boolean", "String", "void", ""):
            return
        if base in self._result.classes:
            return
        if base not in self._program.classes:
            return
        self._result.classes.add(base)
        cls = self._program.classes[base]
        if cls.superclass_name:
            self._mark_class(cls.superclass_name)
        # Class initializers run at build time; the analysis must see what
        # they reference (they can instantiate types and reach other
        # classes), even though their code never lands in the binary.
        if cls.clinit is not None:
            self._scan(cls.clinit)

    def _mark_instantiated(self, name: str) -> None:
        self._mark_class(name)
        if name in self._result.instantiated:
            return
        self._result.instantiated.add(name)
        # Newly instantiated class may provide targets for pending virtual
        # call names.
        cls = self._program.classes.get(name)
        if cls is None:
            return
        for virtual_name in list(self._pending_virtual):
            target = cls.lookup_method(virtual_name)
            if target is not None and not target.is_static:
                self._mark_method(target)

    # -- scanning --------------------------------------------------------------

    def _scan(self, method: CompiledMethod) -> None:
        for instr in method.code:
            op = instr.op
            if op == "CALL_STATIC":
                target = self._resolve_static(instr.args[0], instr.args[1])
                if target is not None:
                    self._mark_method(target)
            elif op == "CALL_SUPER":
                cls = self._program.classes.get(instr.args[0])
                if cls is not None:
                    target = cls.lookup_method(instr.args[1])
                    if target is not None:
                        self._mark_method(target)
            elif op == "CALL_CTOR":
                self._mark_instantiated(instr.args[0])
                cls = self._program.classes.get(instr.args[0])
                if cls is not None and "<init>" in cls.methods:
                    self._mark_method(cls.methods["<init>"])
            elif op == "CALL_VIRTUAL":
                self._resolve_virtual(instr.args[0])
            elif op == "NEW":
                self._mark_instantiated(instr.args[0])
            elif op in ("GETSTATIC", "PUTSTATIC"):
                self._mark_class(instr.args[0])
            elif op in ("INSTANCEOF", "CHECKCAST", "NEWARRAY"):
                self._mark_class(str(instr.args[0]))
            elif op == "CONST_STR":
                self._result.string_literal_ids.add(instr.args[0])

    def _resolve_static(self, cls_name: str, name: str) -> Optional[CompiledMethod]:
        cls = self._program.classes.get(cls_name)
        while cls is not None:
            method = cls.methods.get(name)
            if method is not None and method.is_static:
                return method
            cls = cls.superclass
        return None

    def _resolve_virtual(self, name: str) -> None:
        declarations = [m for m in self._decl_index.get(name, []) if not m.is_static]
        if len(declarations) > self._threshold:
            # Saturation: every declaration of this name is a possible target.
            if name not in self._result.saturated_names:
                self._result.saturated_names.add(name)
            for method in declarations:
                self._mark_method(method)
            return
        self._pending_virtual.add(name)
        for cls_name in self._result.instantiated:
            cls = self._program.classes[cls_name]
            target = cls.lookup_method(name)
            if target is not None and not target.is_static:
                self._mark_method(target)


def analyze(program: Program, saturation_threshold: int = 5,
            entry_points: Optional[List[CompiledMethod]] = None) -> ReachabilityResult:
    """Convenience wrapper: run RTA on ``program``."""
    return ReachabilityAnalysis(program, saturation_threshold).run(entry_points)


def virtual_targets(program: Program, result: ReachabilityResult, name: str) -> List[CompiledMethod]:
    """Possible targets of a virtual call ``name`` under ``result``.

    Used by the inliner for devirtualization: a single target allows
    inlining.
    """
    targets: Dict[str, CompiledMethod] = {}
    if name in result.saturated_names:
        for cls in program.classes.values():
            method = cls.methods.get(name)
            if method is not None and not method.is_static:
                targets[method.signature] = method
        return sorted(targets.values(), key=lambda m: m.signature)
    for cls_name in result.instantiated:
        cls = program.classes[cls_name]
        method = cls.lookup_method(name)
        if method is not None and not method.is_static:
            targets[method.signature] = method
    return sorted(targets.values(), key=lambda m: m.signature)
