"""Per-build program transformations: cloning and PGO constant folding.

Each Native-Image build owns its own copy of the program (builds must not
see each other's code rewrites), and the optimizing build folds accesses to
``static final`` fields whose build-time value is a primitive or a String —
the mechanism by which "accesses to their fields could be constant-folded,
eliminating the need to store the respective objects in the heap snapshot"
(paper Sec. 2).  Folded String constants become code-embedded constants
whose heap-inclusion reason is the embedding method's signature
(Sec. 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..minijava.bytecode import ClassInfo, CompiledMethod, Instr, Program
from ..vm.values import StaticsHolder


def clone_program(program: Program) -> Program:
    """Structural clone: fresh ClassInfo/CompiledMethod shells, shared Instrs.

    Instructions are treated as immutable (rewrites replace list entries),
    so sharing them between builds is safe.
    """
    clone = Program()
    clone.main_class = program.main_class
    clone.string_literals = list(program.string_literals)
    clone._string_ids = dict(program._string_ids)  # noqa: SLF001 - same package family

    for name, cls in program.classes.items():
        new_cls = ClassInfo(cls.name, cls.superclass_name)
        new_cls.line = cls.line
        new_cls.instance_fields = list(cls.instance_fields)
        new_cls.static_fields = list(cls.static_fields)
        for method_name, method in cls.methods.items():
            new_cls.methods[method_name] = _clone_method(method)
        if cls.clinit is not None:
            new_cls.clinit = _clone_method(cls.clinit)
        clone.add_class(new_cls)
    clone.link()
    return clone


def _clone_method(method: CompiledMethod) -> CompiledMethod:
    return CompiledMethod(
        owner=method.owner,
        name=method.name,
        param_types=list(method.param_types),
        is_static=method.is_static,
        is_ctor=method.is_ctor,
        returns_value=method.returns_value,
        num_slots=method.num_slots,
        code=list(method.code),
        line=method.line,
    )


@dataclass(frozen=True)
class FoldedConstant:
    """A String constant embedded into code by PGO folding."""

    token: str  # unique per fold site
    value: str
    origin_signature: str  # the embedding method — its heap-inclusion reason


def fold_final_statics(
    program: Program,
    statics: Dict[str, StaticsHolder],
    reachable_signatures: frozenset,
) -> List[FoldedConstant]:
    """Fold ``GETSTATIC`` of final fields with build-time constant values.

    Primitives and booleans become immediate constants; Strings become
    ``CONST_OBJ`` instructions and are returned so the image builder can
    root them with the embedding method's signature as inclusion reason.
    Rewrites are 1-to-1 so jump targets stay valid.
    """
    folded: List[FoldedConstant] = []
    for cls in program.classes.values():
        for method in list(cls.methods.values()):
            if method.signature not in reachable_signatures:
                continue
            _fold_method(program, statics, method, folded)
    return folded


def _fold_method(
    program: Program,
    statics: Dict[str, StaticsHolder],
    method: CompiledMethod,
    folded: List[FoldedConstant],
) -> None:
    for index, instr in enumerate(method.code):
        if instr.op != "GETSTATIC":
            continue
        cls_name, field_name = instr.args
        cls = program.classes.get(cls_name)
        if cls is None:
            continue
        field = cls.find_field(field_name, static=True)
        if field is None or not field.is_final:
            continue
        holder = statics.get(field.declared_in)
        if holder is None:
            continue
        value = holder.get(field_name)
        if isinstance(value, bool):
            method.code[index] = Instr("CONST_BOOL", (value,), instr.line)
        elif isinstance(value, int):
            method.code[index] = Instr("CONST_INT", (value,), instr.line)
        elif isinstance(value, float):
            method.code[index] = Instr("CONST_DOUBLE", (value,), instr.line)
        elif isinstance(value, str):
            token = f"{method.signature}#fold{len(folded)}"
            method.code[index] = Instr("CONST_OBJ", (value, token), instr.line)
            folded.append(
                FoldedConstant(token=token, value=value, origin_signature=method.signature)
            )
        # Reference-typed finals stay as GETSTATIC: folding an object
        # reference would pin a mutable object into code.
