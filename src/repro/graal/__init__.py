"""Simulated Graal mid-end: reachability, inlining, build transforms."""

from .cunits import CU_PROLOGUE_BYTES, CompilationUnit, CuMember
from .inliner import Inliner, InlinerConfig, form_compilation_units
from .reachability import ReachabilityAnalysis, ReachabilityResult, analyze
from .transform import FoldedConstant, clone_program, fold_final_statics

__all__ = [
    "CU_PROLOGUE_BYTES", "CompilationUnit", "CuMember",
    "Inliner", "InlinerConfig", "form_compilation_units",
    "ReachabilityAnalysis", "ReachabilityResult", "analyze",
    "FoldedConstant", "clone_program", "fold_final_statics",
]
