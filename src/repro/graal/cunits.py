"""Compilation units (CUs).

A CU is a root method plus every method body inlined into it (paper Sec. 2).
CUs are the unit of code layout: the ``.text`` section is a sequence of CUs,
and the code-ordering strategies permute exactly this sequence.  Each member
occupies a contiguous byte range inside its CU so the paging simulator can
charge page touches per executed method copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..minijava.bytecode import CompiledMethod

#: Fixed per-CU prologue (frame setup, deopt anchor, ...) in bytes.
CU_PROLOGUE_BYTES = 16


@dataclass
class CuMember:
    """One method body placed inside a CU (the root or an inlined copy)."""

    method: CompiledMethod
    offset: int  # byte offset inside the CU
    size: int  # machine-code bytes of this copy

    @property
    def signature(self) -> str:
        return self.method.signature


@dataclass
class CompilationUnit:
    """A root method and its inlined callees, with intra-CU layout."""

    root: CompiledMethod
    members: List[CuMember] = field(default_factory=list)
    inlined_signatures: frozenset = frozenset()

    @property
    def name(self) -> str:
        return self.root.signature

    @property
    def size(self) -> int:
        if not self.members:
            return CU_PROLOGUE_BYTES
        last = self.members[-1]
        return last.offset + last.size

    def member_for(self, signature: str) -> Optional[CuMember]:
        """The first placed copy of ``signature`` in this CU, if any."""
        for member in self.members:
            if member.signature == signature:
                return member
        return None

    def contains(self, signature: str) -> bool:
        return signature == self.root.signature or signature in self.inlined_signatures

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CU {self.name} ({len(self.members)} members, {self.size} B)>"


def layout_members(
    root: CompiledMethod,
    inline_bodies: List[CompiledMethod],
    size_fn: Callable[[CompiledMethod], int],
) -> CompilationUnit:
    """Assign intra-CU offsets: prologue, root body, then inlined bodies."""
    members: List[CuMember] = []
    offset = CU_PROLOGUE_BYTES
    for method in [root] + inline_bodies:
        size = size_fn(method)
        members.append(CuMember(method=method, offset=offset, size=size))
        offset += size
    return CompilationUnit(
        root=root,
        members=members,
        inlined_signatures=frozenset(m.signature for m in inline_bodies),
    )


def index_by_signature(cus: List[CompilationUnit]) -> Dict[str, CompilationUnit]:
    """Map root signature -> CU."""
    return {cu.name: cu for cu in cus}
