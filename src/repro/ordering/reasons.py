"""Heap-inclusion reasons (paper Sec. 5.3).

The reason is the string Native Image records for why a root object is in
the heap snapshot: a static-field signature, a method signature (code
constants), or one of the constants below.  The heap-path strategy hashes
it as the terminal path element.
"""

REASON_INTERNED_STRING = "InternedString"
REASON_DATA_SECTION = "DataSection"
REASON_RESOURCE = "Resource"
