"""Object-identity strategies (paper Sec. 5, Algorithms 1-3).

Each strategy computes a 64-bit ID per heap-snapshot object, used to match
the object-access trace of the *instrumented* build against the objects of
the *optimized* build:

* :func:`assign_incremental_ids` — Algorithm 1: per-type counters in
  traversal encounter order; the type ID occupies the top 32 bits so that
  divergence in one type does not shift the IDs of other types.
* :class:`StructuralHasher` — Algorithm 2: MurmurHash3 over a depth-bounded
  byte encoding of the object's type, fields, and neighbours
  (``MAX_DEPTH`` = 2 in the paper's evaluation).
* :func:`heap_path_hash` — Algorithm 3: MurmurHash3 over the first
  root-to-object path plus the root's heap-inclusion reason, with interned
  strings hashed by content.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Any, Dict, Iterable, Optional

from ..util.murmur3 import murmur3_32, murmur3_64
from ..vm.values import ArrayInstance, ObjectInstance, ResourceBlob, StaticsHolder
from .reasons import REASON_INTERNED_STRING

if TYPE_CHECKING:  # imported for annotations only (avoids an import cycle)
    from ..image.heap import HeapObject, HeapSnapshot

INCREMENTAL_ID = "incremental_id"
STRUCTURAL_HASH = "structural_hash"
HEAP_PATH = "heap_path"
ALL_STRATEGIES = (INCREMENTAL_ID, STRUCTURAL_HASH, HEAP_PATH)

#: Ordering strategies whose profiles carry another strategy's IDs.  The
#: search-based ``heap-opt`` ordering (repro.ordering.optimize) permutes
#: heap-path placement groups, so its profile IDs *are* heap-path IDs;
#: matchers resolve through this map before looking IDs up on objects.
ID_STRATEGY_ALIASES = {"heap-opt": HEAP_PATH}


def resolve_id_strategy(strategy: str) -> str:
    """The ID strategy whose per-object IDs a profile strategy matches on."""
    return ID_STRATEGY_ALIASES.get(strategy, strategy)

#: The paper's experimentally chosen recursion bound for structural hashing.
DEFAULT_MAX_DEPTH = 2

_MASK32 = 0xFFFFFFFF


def type_id(type_name: str) -> int:
    """Stable 32-bit type identifier (types are identified by name across
    compilations; Sec. 5.1)."""
    return murmur3_32(type_name.encode("utf-8"))


# ---------------------------------------------------------------------------
# Algorithm 1: incremental IDs
# ---------------------------------------------------------------------------


def assign_incremental_ids(
    snapshot: HeapSnapshot, per_type: bool = True
) -> Dict[int, int]:
    """Assign incremental IDs in encounter order.

    With ``per_type`` (the paper's design), counters are segregated by type;
    the ablation mode ``per_type=False`` uses one global counter, which lets
    any divergence shift every later object's ID.

    Returns ``{object index: id}`` and stores the IDs on the objects.
    """
    counters: Dict[int, int] = {}
    ids: Dict[int, int] = {}
    global_counter = 0
    for obj in snapshot:
        tid = type_id(obj.type_name)
        if per_type:
            counters[tid] = counters.get(tid, 0) + 1
            value = (tid << 32) | (counters[tid] & _MASK32)
        else:
            global_counter += 1
            value = (tid << 32) | (global_counter & _MASK32)
        obj.ids[INCREMENTAL_ID] = value
        ids[obj.index] = value
    return ids


# ---------------------------------------------------------------------------
# Algorithm 2: structural hash
# ---------------------------------------------------------------------------


class StructuralHasher:
    """Depth-bounded structural hashing of heap values (Algorithm 2)."""

    def __init__(self, max_depth: int = DEFAULT_MAX_DEPTH) -> None:
        self.max_depth = max_depth

    def hash_object(self, obj: HeapObject) -> int:
        return self.hash_value(obj.value)

    def hash_value(self, value: Any) -> int:
        return murmur3_64(bytes(self._encode(value, 0)))

    # -- encodeToBytes ------------------------------------------------------

    def _encode(self, value: Any, depth: int) -> bytearray:
        buffer = bytearray()
        if value is None:
            buffer.append(0)
            return buffer
        buffer += _type_name_of(value).encode("utf-8")
        should_recurse = depth < self.max_depth

        if isinstance(value, (bool, int, float, str)):
            buffer += _primitive_bytes(value)
        elif isinstance(value, ObjectInstance):
            for field_info in value.klass.all_instance_fields():
                child = value.fields.get(field_info.name)
                if should_recurse or _is_primitive_or_string(child):
                    buffer += field_info.type_name.encode("utf-8")
                    buffer += self._encode(child, depth + 1)
        elif isinstance(value, StaticsHolder):
            for field_name, child in value.fields.items():
                if should_recurse or _is_primitive_or_string(child):
                    buffer += field_name.encode("utf-8")
                    buffer += self._encode(child, depth + 1)
        elif isinstance(value, ArrayInstance):
            buffer += value.elem_type.encode("utf-8")
            buffer += _primitive_bytes(value.length)
            elem_primitive = value.elem_type in ("int", "double", "boolean", "String")
            if should_recurse or elem_primitive:
                for index, element in enumerate(value.values):
                    buffer += _primitive_bytes(index)
                    buffer += self._encode(element, depth + 1)
        elif isinstance(value, ResourceBlob):
            buffer += value.name.encode("utf-8")
            buffer += _primitive_bytes(value.size)
        else:  # pragma: no cover - exhaustive over heap values
            raise TypeError(f"cannot encode {type(value).__name__}")
        return buffer


def assign_structural_hashes(
    snapshot: HeapSnapshot, max_depth: int = DEFAULT_MAX_DEPTH
) -> Dict[int, int]:
    """Assign structural-hash IDs to every snapshot object."""
    hasher = StructuralHasher(max_depth)
    ids: Dict[int, int] = {}
    for obj in snapshot:
        value = hasher.hash_object(obj)
        obj.ids[STRUCTURAL_HASH] = value
        ids[obj.index] = value
    return ids


# ---------------------------------------------------------------------------
# Algorithm 3: heap-path hash
# ---------------------------------------------------------------------------


def heap_path_hash(obj: Optional[HeapObject],
                   intern_special_case: bool = True) -> int:
    """Hash the first root-to-object path (Algorithm 3).

    ``intern_special_case`` reproduces line 4 of the algorithm: interned
    strings are hashed by content, because their path ("InternedString")
    would otherwise be identical for all of them.  Disabling it is the
    ablation discussed in DESIGN.md.
    """
    if obj is None:
        return 0
    buffer = bytearray()
    if (
        intern_special_case
        and obj.is_root
        and obj.root_reason == REASON_INTERNED_STRING
    ):
        buffer += str(obj.value).encode("utf-8")
        return murmur3_64(bytes(buffer))

    current: Optional[HeapObject] = obj
    while current is not None:
        buffer += current.type_name.encode("utf-8")
        if current.is_root:
            buffer += str(current.root_reason).encode("utf-8")
            break
        edge = current.parent_edge
        if isinstance(edge, int):
            buffer += _primitive_bytes(edge)
        else:
            buffer += str(edge).encode("utf-8")
        current = current.parent
    return murmur3_64(bytes(buffer))


def assign_heap_path_hashes(
    snapshot: HeapSnapshot, intern_special_case: bool = True
) -> Dict[int, int]:
    """Assign heap-path IDs to every snapshot object."""
    ids: Dict[int, int] = {}
    for obj in snapshot:
        value = heap_path_hash(obj, intern_special_case)
        obj.ids[HEAP_PATH] = value
        ids[obj.index] = value
    return ids


def assign_all_ids(
    snapshot: HeapSnapshot,
    strategies: Iterable[str] = ALL_STRATEGIES,
    max_depth: int = DEFAULT_MAX_DEPTH,
) -> None:
    """Compute the requested strategy IDs for every object in the snapshot."""
    strategies = list(strategies)
    if INCREMENTAL_ID in strategies:
        assign_incremental_ids(snapshot)
    if STRUCTURAL_HASH in strategies:
        assign_structural_hashes(snapshot, max_depth)
    if HEAP_PATH in strategies:
        assign_heap_path_hashes(snapshot)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _type_name_of(value: Any) -> str:
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "double"
    if isinstance(value, str):
        return "String"
    if isinstance(value, StaticsHolder):
        return f"{value.class_name}$Statics"
    if isinstance(value, ResourceBlob):
        return "Resource"
    return value.type_name


def _is_primitive_or_string(value: Any) -> bool:
    return value is None or isinstance(value, (bool, int, float, str))


def _primitive_bytes(value: Any) -> bytes:
    if value is None:
        return b"\x00"
    if isinstance(value, bool):
        return b"\x01" if value else b"\x02"
    if isinstance(value, int):
        return b"i" + (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
    if isinstance(value, float):
        return b"d" + struct.pack("<d", value)
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    raise TypeError(f"not a primitive: {type(value).__name__}")
