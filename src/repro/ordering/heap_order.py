"""Heap-snapshot ordering: matching profile IDs to objects (paper Sec. 5).

The heap-ordering step "attempts to match the semantically same objects in
the heap snapshot and in the profiles by exploiting their identifiers and
hence reorders the former according to the latter" (Sec. 3).  Identities are
64-bit IDs computed by one of the three strategies in
:mod:`repro.ordering.ids`; because builds diverge, matching is best-effort:

* each profile ID is matched against the optimized build's objects carrying
  the same strategy ID;
* when several objects share an ID (hash collision, or several objects with
  the same heap path), they are all placed at that profile position in
  default order — a deliberate tie-break that keeps the layout stable;
* unmatched objects keep the default (traversal) order, after all matched
  objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from .errors import OrderingError
from .ids import resolve_id_strategy
from .profiles import HeapOrderProfile

if TYPE_CHECKING:  # imported for annotations only (avoids an import cycle)
    from ..image.heap import HeapObject, HeapSnapshot


@dataclass
class MatchReport:
    """Diagnostics of one profile-to-snapshot matching pass."""

    strategy: str
    profile_entries: int
    matched_profile_entries: int
    matched_objects: int
    total_objects: int
    #: distinct IDs carried by more than one object, across the *whole*
    #: snapshot — collisions among unmatched objects count too, since they
    #: degrade the next profiling run even if this profile missed them
    colliding_ids: int
    #: of those, IDs that a profile entry actually matched
    colliding_matched_ids: int = 0
    #: objects involved in any collision (matched or not)
    colliding_objects: int = 0

    @property
    def profile_match_rate(self) -> float:
        if self.profile_entries == 0:
            return 0.0
        return self.matched_profile_entries / self.profile_entries

    @property
    def colliding_unmatched_ids(self) -> int:
        return self.colliding_ids - self.colliding_matched_ids

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.strategy}] {self.matched_profile_entries}/{self.profile_entries} "
            f"profile entries matched; {self.matched_objects}/{self.total_objects} "
            f"objects placed by profile; {self.colliding_ids} colliding IDs "
            f"({self.colliding_matched_ids} matched, "
            f"{self.colliding_unmatched_ids} unmatched, "
            f"{self.colliding_objects} objects)"
        )


def order_heap_objects(
    snapshot: HeapSnapshot,
    profile: Optional[HeapOrderProfile] = None,
) -> List[HeapObject]:
    """Produce the ``.svm_heap`` layout order.

    Without a profile: the default traversal order (which itself follows the
    CU order of the ``.text`` section, as in Native Image).
    """
    default = list(snapshot.objects)
    if profile is None:
        return default
    order, _report = match_and_order(snapshot, profile)
    return order


def match_and_order(
    snapshot: HeapSnapshot,
    profile: HeapOrderProfile,
    strict: bool = False,
) -> "tuple[List[HeapObject], MatchReport]":
    """Match profile IDs against snapshot objects; return layout + report.

    With ``strict=True`` a profile ID that matches no snapshot object raises
    :class:`OrderingError` (naming the unmatched IDs) instead of being
    skipped — the profile references objects absent from this build.
    """
    strategy = profile.strategy
    # Alias strategies (e.g. "heap-opt") match on another strategy's IDs.
    id_strategy = resolve_id_strategy(strategy)
    by_id: Dict[int, List[HeapObject]] = {}
    for obj in snapshot:
        object_id = obj.ids.get(id_strategy)
        if object_id is None:
            raise OrderingError(
                f"snapshot object #{obj.index} has no {id_strategy!r} ID; "
                "run assign_all_ids first",
                kind=strategy,
            )
        by_id.setdefault(object_id, []).append(obj)

    placed: List[HeapObject] = []
    placed_indices: set = set()
    matched_entries = 0
    matched_ids: set = set()
    unmatched_profile_ids: List[int] = []
    for object_id in profile.ids:
        bucket = by_id.get(object_id)
        if not bucket:
            unmatched_profile_ids.append(object_id)
            continue
        matched_entries += 1
        matched_ids.add(object_id)
        # Colliding IDs: all carriers land at this profile position, in
        # default (snapshot-index) order — the deterministic tie-break.
        for obj in sorted(bucket, key=lambda o: o.index):
            if obj.index not in placed_indices:
                placed_indices.add(obj.index)
                placed.append(obj)

    if strict and unmatched_profile_ids:
        raise OrderingError(
            f"{len(unmatched_profile_ids)} profile ID(s) match no object in "
            f"this build's snapshot (first: "
            f"{unmatched_profile_ids[0]:#018x}); the profile is from a "
            "different build",
            kind=strategy,
            missing=unmatched_profile_ids,
        )

    rest = [obj for obj in snapshot if obj.index not in placed_indices]
    colliding = {oid: bucket for oid, bucket in by_id.items() if len(bucket) > 1}
    report = MatchReport(
        strategy=strategy,
        profile_entries=len(profile.ids),
        matched_profile_entries=matched_entries,
        matched_objects=len(placed),
        total_objects=len(snapshot),
        colliding_ids=len(colliding),
        colliding_matched_ids=sum(1 for oid in colliding if oid in matched_ids),
        colliding_objects=sum(len(bucket) for bucket in colliding.values()),
    )
    return placed + rest, report
