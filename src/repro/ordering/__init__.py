"""Ordering strategies: object identities, code order, heap order, search."""

from .coaccess import (
    CoAccessGraph,
    DEFAULT_WINDOW,
    build_coaccess_graph,
    layout_objective,
)
from .code_order import default_order, order_compilation_units
from .errors import OrderingError
from .heap_order import MatchReport, match_and_order, order_heap_objects
from .ids import (
    ALL_STRATEGIES,
    HEAP_PATH,
    ID_STRATEGY_ALIASES,
    INCREMENTAL_ID,
    STRUCTURAL_HASH,
    StructuralHasher,
    assign_all_ids,
    assign_heap_path_hashes,
    assign_incremental_ids,
    assign_structural_hashes,
    heap_path_hash,
    resolve_id_strategy,
)
from .optimize import (
    ALL_OPTIMIZERS,
    CU_OPT_ORDERING,
    HEAP_OPT_ORDERING,
    OptimizationReport,
    OptimizeConfig,
    SearchResult,
    optimize_workload,
    search_order,
    simulated_faults,
    synthesize_optimizer_profiles,
)
from .profiles import (
    CallCountProfile,
    CodeOrderProfile,
    HeapOrderProfile,
    ProfileBundle,
    load_bundle,
    save_bundle,
)

__all__ = [
    "CoAccessGraph", "DEFAULT_WINDOW", "build_coaccess_graph",
    "layout_objective",
    "default_order", "order_compilation_units", "OrderingError",
    "MatchReport", "match_and_order", "order_heap_objects",
    "ALL_STRATEGIES", "HEAP_PATH", "ID_STRATEGY_ALIASES", "INCREMENTAL_ID",
    "STRUCTURAL_HASH", "StructuralHasher", "assign_all_ids",
    "assign_heap_path_hashes", "assign_incremental_ids",
    "assign_structural_hashes", "heap_path_hash", "resolve_id_strategy",
    "ALL_OPTIMIZERS", "CU_OPT_ORDERING", "HEAP_OPT_ORDERING",
    "OptimizationReport", "OptimizeConfig", "SearchResult",
    "optimize_workload", "search_order", "simulated_faults",
    "synthesize_optimizer_profiles",
    "CallCountProfile", "CodeOrderProfile", "HeapOrderProfile",
    "ProfileBundle", "load_bundle", "save_bundle",
]
