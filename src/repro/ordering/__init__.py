"""Ordering strategies: object identities, code order, heap order."""

from .code_order import default_order, order_compilation_units
from .errors import OrderingError
from .heap_order import MatchReport, match_and_order, order_heap_objects
from .ids import (
    ALL_STRATEGIES,
    HEAP_PATH,
    INCREMENTAL_ID,
    STRUCTURAL_HASH,
    StructuralHasher,
    assign_all_ids,
    assign_heap_path_hashes,
    assign_incremental_ids,
    assign_structural_hashes,
    heap_path_hash,
)
from .profiles import (
    CallCountProfile,
    CodeOrderProfile,
    HeapOrderProfile,
    ProfileBundle,
    load_bundle,
    save_bundle,
)

__all__ = [
    "default_order", "order_compilation_units", "OrderingError",
    "MatchReport", "match_and_order", "order_heap_objects",
    "ALL_STRATEGIES", "HEAP_PATH", "INCREMENTAL_ID", "STRUCTURAL_HASH",
    "StructuralHasher", "assign_all_ids", "assign_heap_path_hashes",
    "assign_incremental_ids", "assign_structural_hashes", "heap_path_hash",
    "CallCountProfile", "CodeOrderProfile", "HeapOrderProfile",
    "ProfileBundle", "load_bundle", "save_bundle",
]
