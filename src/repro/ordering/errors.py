"""Typed errors of the ordering subsystem.

Ordering is best-effort by design (profiles from a mismatched build are the
norm, not the exception — Sec. 5), so the order functions silently skip
unknown profile entries by default.  When callers *do* want to know that a
profile references methods, types, or object IDs absent from the optimized
build — the verification oracle does — they pass ``strict=True`` and get an
:class:`OrderingError` instead of a raw ``KeyError``/``AssertionError``
escaping from some lookup deep inside the matcher.

``OrderingError`` subclasses :class:`ValueError` so call sites written
against the old ad-hoc raises keep working.
"""

from __future__ import annotations

from typing import Optional, Sequence


class OrderingError(ValueError):
    """A profile cannot be applied to this build.

    Carries the profile ``kind`` (code-order kind or heap ID strategy) and
    the profile entries that failed to resolve against the build, so
    degradation and verification reports can name exactly what was missing.
    """

    def __init__(self, message: str, kind: str = "",
                 missing: Optional[Sequence] = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.missing = tuple(missing or ())

    def describe(self) -> str:
        label = f"[{self.kind}] " if self.kind else ""
        return f"{label}{self.args[0]}"
