"""Page-co-access graph over placeable units.

The search-based layout optimizers (:mod:`repro.ordering.optimize`) do not
consume first-use *orderings* directly; they consume a weighted graph that
says which units are touched close together in time.  Nodes are placeable
units (compilation units for ``.text``, heap-path placement groups for
``.svm_heap``); an edge's weight accumulates, over every input trace, how
near the two units' first touches were:

    w(u, v) += trace_weight * (window - |rank_u - rank_v|) / window

for every trace where both units appear within ``window`` positions of each
other in first-touch rank order.  Touches closer than a fault window apart
want to share pages; touches further apart than ``window`` contribute
nothing (the pair will not co-reside in a faulting window anyway).

Weights are exact :class:`~fractions.Fraction` sums, so the graph is
**permutation-invariant over its inputs**: feeding the same weighted traces
in any order produces the identical graph (property-tested in
tests/test_optimize.py).  This mirrors the exact-rational discipline of the
PR-7 profile merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Sequence, Tuple

#: Default temporal-proximity window, in first-touch rank positions.  A
#: 4 KiB page holds a handful of CUs (median CU is a few hundred bytes), so
#: first touches within ~8 ranks of each other are candidates to share a
#: fault; beyond that the pair gains nothing from adjacency.
DEFAULT_WINDOW = 8


@dataclass
class CoAccessGraph:
    """Undirected weighted graph of temporal first-touch proximity."""

    window: int = DEFAULT_WINDOW
    #: canonical edge key is the sorted name pair
    weights: Dict[Tuple[str, str], Fraction] = field(default_factory=dict)
    nodes: "set[str]" = field(default_factory=set)

    def weight(self, u: str, v: str) -> Fraction:
        """Edge weight between two units (0 when unconnected or ``u == v``)."""
        if u == v:
            return Fraction(0)
        key = (u, v) if u <= v else (v, u)
        return self.weights.get(key, Fraction(0))

    def add(self, u: str, v: str, weight: Fraction) -> None:
        if u == v or weight == 0:
            return
        key = (u, v) if u <= v else (v, u)
        self.weights[key] = self.weights.get(key, Fraction(0)) + weight

    def neighbors(self, u: str) -> Dict[str, Fraction]:
        """All units with a nonzero edge to ``u`` (built on demand)."""
        result: Dict[str, Fraction] = {}
        for (a, b), weight in self.weights.items():
            if a == u:
                result[b] = weight
            elif b == u:
                result[a] = weight
        return result

    def total_weight(self) -> Fraction:
        return sum(self.weights.values(), Fraction(0))

    def cut_weight(self, left: Iterable[str], right: Iterable[str]) -> Fraction:
        """Total weight of edges crossing a (left, right) partition."""
        left_set = set(left)
        right_set = set(right)
        total = Fraction(0)
        for (a, b), weight in self.weights.items():
            if (a in left_set and b in right_set) or (a in right_set and b in left_set):
                total += weight
        return total


def first_touch_ranks(sequence: Sequence[str]) -> Dict[str, int]:
    """First-occurrence rank of every unit in a touch sequence."""
    ranks: Dict[str, int] = {}
    for entry in sequence:
        if entry not in ranks:
            ranks[entry] = len(ranks)
    return ranks


def build_coaccess_graph(
    traces: Iterable[Tuple[Sequence[str], float]],
    window: int = DEFAULT_WINDOW,
) -> CoAccessGraph:
    """Build the co-access graph from weighted first-touch traces.

    ``traces`` is an iterable of ``(touch sequence, weight)`` pairs; each
    sequence lists unit names in touch order (repeats are collapsed to the
    first touch).  Raises :class:`ValueError` on a non-positive window or a
    negative trace weight.  The result depends only on the *multiset* of
    input pairs, not their order.
    """
    if window <= 0:
        raise ValueError(f"co-access window must be positive, got {window}")
    graph = CoAccessGraph(window=window)
    for sequence, weight in traces:
        if weight < 0:
            raise ValueError(f"negative trace weight {weight!r}")
        fraction = Fraction(weight)
        ranks = first_touch_ranks(sequence)
        graph.nodes.update(ranks)
        if fraction == 0:
            continue
        ordered: List[str] = sorted(ranks, key=ranks.__getitem__)
        for i, u in enumerate(ordered):
            # only pairs within the window contribute; scan forward
            for j in range(i + 1, min(i + window, len(ordered))):
                v = ordered[j]
                distance = j - i
                graph.add(u, v, fraction * Fraction(window - distance, window))
    return graph


def layout_objective(
    graph: CoAccessGraph, order: Sequence[str], window: int = 0
) -> Fraction:
    """The ext-TSP-style locality objective of a concrete layout order.

    Sums ``w(u, v) * (window - gap) / window`` over every unit pair placed
    within ``window`` positions of each other (``gap`` = placement-index
    distance).  Higher is better: heavy edges want small gaps.  ``window``
    defaults to the graph's own window.  Units in ``order`` that the graph
    never saw contribute nothing; the objective is what the greedy
    chain-merging pass maximizes.
    """
    window = window or graph.window
    total = Fraction(0)
    for i, u in enumerate(order):
        for j in range(i + 1, min(i + window, len(order))):
            gap = j - i
            weight = graph.weight(u, order[j])
            if weight:
                total += weight * Fraction(window - gap, window)
    return total
