"""Search-based layout optimization: beat first-use ordering.

The paper's strategies *replay* first-use order; this module *searches* for
better orders against an exact cost oracle.  Three optimizers run over the
page-co-access graph (:mod:`repro.ordering.coaccess`) and a
:class:`CostModel` whose cost function is the exact simulated first-touch
fault count of a virtual layout — the same accounting the PR-7
``replay_faults`` machinery applies to real binaries:

* **greedy chain merging** (ext-TSP-style, Newell & Pupyrev) — merge unit
  chains at the junction with the highest co-access gain until no merge
  helps; maximizes the locality objective
  :func:`~repro.ordering.coaccess.layout_objective`;
* **recursive bisection** (BGP-style, Hoag et al.) — split the hot set in
  two balanced halves minimizing cut weight (bounded Kernighan–Lin
  refinement), recurse, concatenate;
* **seeded annealing** — local search over hot-unit permutations (swap +
  segment-relocate moves) whose cost is the exact simulated fault count;
  same seed ⇒ byte-identical layout.

Why search can win at all: under whole-CU touches, first-use order is
provably optimal (any permutation of a contiguous hot prefix spans the same
pages).  But the executor touches the *prologue prefix* ``[cu_start,
member_end)`` on a non-inlined entry — a CU whose tail members were inlined
elsewhere and never entered leaves cold bytes behind its hot prefix, so the
hot bytes of many CUs can be packed into fewer pages by interleaving short
hot prefixes, which plain first-use order never does.  The cost model
mirrors exactly that member-granular touch rule (and whole-object group
touches for the heap), so "optimizer never loses to its seed strategy"
holds by construction: the seed strategy's own layout is always a
candidate, and the search keeps the best-seen order.

The winners flow back into the pipeline as first-class strategies:
``cu-opt`` is a :class:`~repro.ordering.profiles.CodeOrderProfile` whose
signatures are the chosen CU placement order (ranked like ``cu``), and
``heap-opt`` is a :class:`~repro.ordering.profiles.HeapOrderProfile` of
heap-path IDs in chosen placement-group order (matched via the
``heap-opt`` → ``heap_path`` ID alias in :mod:`repro.ordering.ids`).
Every built candidate passes the PR-2 structural oracle before it is
measured.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..image.sections import (
    CU_ALIGN,
    HEAP_SECTION,
    OBJ_ALIGN,
    PAGE_SIZE,
    TEXT_SECTION,
)
from ..util.murmur3 import murmur3_32
from .coaccess import CoAccessGraph, DEFAULT_WINDOW, build_coaccess_graph
from .ids import HEAP_PATH
from .profiles import CodeOrderProfile, HeapOrderProfile, ProfileBundle

if TYPE_CHECKING:  # annotation-only: the image/runtime layers must not be
    # imported at module scope — ordering/__init__ is reached from
    # graal.inliner while image.binary is still initializing, so executor
    # and paging are imported lazily inside the functions that need them.
    from ..image.binary import NativeImageBinary
    from ..runtime.executor import ExecutionConfig

#: Strategy names the optimizers register (profile kind / heap strategy).
CU_OPT_ORDERING = "cu-opt"
HEAP_OPT_ORDERING = "heap-opt"

OPTIMIZER_GREEDY = "greedy"
OPTIMIZER_BISECT = "bisect"
OPTIMIZER_ANNEAL = "anneal"
ALL_OPTIMIZERS = (OPTIMIZER_GREEDY, OPTIMIZER_BISECT, OPTIMIZER_ANNEAL)

#: Candidate preference on cost ties — the seed strategy's own order wins
#: ties so an optimizer only replaces the paper's layout when strictly
#: better-or-equal-by-this-order, keeping results stable across runs.
_CANDIDATE_PREFERENCE = ("seed", OPTIMIZER_GREEDY, OPTIMIZER_BISECT,
                         OPTIMIZER_ANNEAL)


@dataclass(frozen=True)
class OptimizeConfig:
    """Knobs of the layout search (all deterministic given ``seed``)."""

    #: annealing cost evaluations (greedy/bisection are budget-free)
    budget: int = 600
    #: RNG seed for the annealing refiner; same seed ⇒ identical layout
    seed: int = 13
    #: co-access temporal-proximity window (first-touch rank positions)
    window: int = DEFAULT_WINDOW
    #: which optimizer families run
    optimizers: Tuple[str, ...] = ALL_OPTIMIZERS

    def fingerprint(self) -> str:
        return (f"budget{self.budget}/seed{self.seed}/win{self.window}/"
                + ",".join(self.optimizers))


# ---------------------------------------------------------------------------
# The cost oracle: exact simulated faults of a virtual layout
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlaceableUnit:
    """One unit the optimizer may place: a CU or a heap placement group."""

    name: str
    size: int
    align: int


@dataclass(frozen=True)
class TouchEvent:
    """One first-touch event: byte spans relative to a unit's base."""

    unit: str
    spans: Tuple[Tuple[int, int], ...]  # (relative offset, size)


@dataclass
class CostModel:
    """Exact simulated first-touch fault count of a unit permutation.

    Mirrors the paging simulator byte-for-byte: units pack at their
    section alignment (``layout_text``/``layout_heap`` rules), events
    touch their spans against the virtual layout, and the fault count is
    the number of distinct pages touched plus ``constant_faults`` (the
    startup native-blob pages, which no permutation can avoid).
    """

    units: Dict[str, PlaceableUnit]
    events: Tuple[TouchEvent, ...]
    page_size: int = PAGE_SIZE
    constant_faults: int = 0

    def offsets(self, order: Sequence[str]) -> Dict[str, int]:
        """Base offset of each unit when placed in ``order``."""
        result: Dict[str, int] = {}
        offset = 0
        for name in order:
            unit = self.units[name]
            result[name] = offset
            offset += _align(unit.size, unit.align)
        return result

    def faults(self, order: Sequence[str]) -> int:
        """Simulated first-touch faults of the layout ``order``."""
        offsets = self.offsets(order)
        resident: set = set()
        page = self.page_size
        for event in self.events:
            base = offsets[event.unit]
            for start, size in event.spans:
                if size <= 0:
                    continue
                first = (base + start) // page
                last = (base + start + size - 1) // page
                resident.update(range(first, last + 1))
        return len(resident) + self.constant_faults


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


@dataclass
class LayoutProblem:
    """One section's search instance: units, oracle, graph, seed order."""

    section: str  # "code" or "heap"
    strategy: str  # the optimizer strategy it feeds ("cu-opt"/"heap-opt")
    seed_strategy: str  # the paper strategy it must never lose to
    model: CostModel
    graph: CoAccessGraph
    #: the seed strategy's full layout order (always a candidate)
    seed_order: Tuple[str, ...]
    #: units the events actually touch, in first-touch order
    hot: Tuple[str, ...]
    #: untouched units, placed after every hot unit (their order is
    #: cost-neutral; kept in seed-relative order for stability)
    cold_tail: Tuple[str, ...]


# ---------------------------------------------------------------------------
# Problem construction from a reference binary + profile bundle
# ---------------------------------------------------------------------------


def _method_homes(binary: "NativeImageBinary") -> Dict[str, Tuple[str, int]]:
    """Map method signature -> (home CU name, prologue-prefix end).

    The home is the method's own CU when it has one, else the
    lexicographically-smallest CU carrying an inlined copy — a
    layout-invariant stand-in for the executor's "first inlined copy"
    fallback, so the event stream does not depend on the layout being
    scored.  The prefix end is ``member.offset + member.size``: a
    non-inlined entry executes the CU prologue up to the member's end.
    """
    carriers: Dict[str, List[Tuple[str, int]]] = {}
    for placed in binary.text.placed:
        cu = placed.cu
        for member in cu.members:
            carriers.setdefault(member.signature, []).append(
                (cu.name, member.offset + member.size))
    homes: Dict[str, Tuple[str, int]] = {}
    for signature, copies in carriers.items():
        own = [entry for entry in copies if entry[0] == signature]
        homes[signature] = own[0] if own else min(copies)
    return homes


def _code_events(binary: "NativeImageBinary",
                 bundle: ProfileBundle) -> Optional[List[Tuple[str, int]]]:
    """(CU name, prefix end) touch stream in method-first-entry order.

    Prefers the member-granular ``method`` profile; falls back to
    whole-CU touches from the ``cu`` profile; ``None`` when neither is
    usable (the caller then skips code optimization entirely).
    """
    method_profile = bundle.code_profile("method")
    if method_profile is not None and method_profile.signatures:
        homes = _method_homes(binary)
        events = [homes[sig] for sig in method_profile.signatures
                  if sig in homes]
        if events:
            return events
    cu_profile = bundle.code_profile("cu")
    if cu_profile is not None and cu_profile.signatures:
        sizes = {placed.cu.name: placed.cu.size
                 for placed in binary.text.placed}
        events = [(sig, sizes[sig]) for sig in cu_profile.signatures
                  if sig in sizes]
        if events:
            return events
    return None


def code_problem(binary: "NativeImageBinary", bundle: ProfileBundle,
                 config: OptimizeConfig,
                 exec_config: Optional[ExecutionConfig] = None,
                 ) -> Optional[LayoutProblem]:
    """Build the ``.text`` search instance, or ``None`` without profiles."""
    raw_events = _code_events(binary, bundle)
    if raw_events is None:
        return None
    units = {placed.cu.name: PlaceableUnit(placed.cu.name, placed.cu.size,
                                           CU_ALIGN)
             for placed in binary.text.placed}
    if exec_config is None:
        from ..runtime.executor import ExecutionConfig
        exec_config = ExecutionConfig()
    blob_pages = min(exec_config.startup_native_pages,
                     max(binary.text.native_blob_size // PAGE_SIZE, 0))
    events = tuple(TouchEvent(unit=name, spans=((0, end),))
                   for name, end in raw_events)
    model = CostModel(units=units, events=events,
                      constant_faults=max(blob_pages, 0))
    hot: List[str] = []
    seen: set = set()
    for name, _end in raw_events:
        if name not in seen:
            seen.add(name)
            hot.append(name)
    seed_order = _code_seed_order(binary, bundle)
    cold_tail = tuple(name for name in seed_order if name not in seen)
    graph = build_coaccess_graph([(hot, 1)], window=config.window)
    return LayoutProblem(
        section="code", strategy=CU_OPT_ORDERING, seed_strategy="cu",
        model=model, graph=graph, seed_order=tuple(seed_order),
        hot=tuple(hot), cold_tail=cold_tail,
    )


def _code_seed_order(binary: "NativeImageBinary",
                     bundle: ProfileBundle) -> List[str]:
    """The CU order the seed ``cu`` strategy would lay out."""
    from .code_order import order_compilation_units

    profile = bundle.code_profile("cu")
    if profile is None or not profile.signatures:
        profile = None  # default (alphabetical) order
    ordered = order_compilation_units(
        [placed.cu for placed in binary.text.placed], profile)
    return [cu.name for cu in ordered]


def _heap_groups(binary: "NativeImageBinary"):
    """Heap-path placement groups of the reference snapshot.

    Objects sharing a heap-path ID form one placement group: the matcher
    places all carriers of a profile ID together (snapshot-index order),
    so the group — not the object — is the optimizer's placeable unit.
    Returns ``(group name -> id, ordered group names, name -> members)``
    with groups ordered by their first member's snapshot index.
    """
    by_id: Dict[int, List] = {}
    for obj in binary.heap.ordered:
        object_id = obj.ids.get(HEAP_PATH)
        if object_id is not None:
            by_id.setdefault(object_id, []).append(obj)
    names: Dict[str, int] = {}
    members: Dict[str, List] = {}
    ordered = sorted(by_id, key=lambda oid: min(o.index for o in by_id[oid]))
    for object_id in ordered:
        name = f"{object_id:016x}"
        names[name] = object_id
        members[name] = sorted(by_id[object_id], key=lambda o: o.index)
    return names, list(names), members


def heap_problem(binary: "NativeImageBinary", bundle: ProfileBundle,
                 config: OptimizeConfig) -> Optional[LayoutProblem]:
    """Build the ``.svm_heap`` search instance, or ``None`` without profiles."""
    profile = bundle.heap_profile(HEAP_PATH)
    if profile is None or not profile.ids:
        return None
    names, group_order, members = _heap_groups(binary)
    if not names:
        return None
    units: Dict[str, PlaceableUnit] = {}
    spans: Dict[str, Tuple[Tuple[int, int], ...]] = {}
    for name in group_order:
        offset = 0
        group_spans: List[Tuple[int, int]] = []
        for obj in members[name]:
            group_spans.append((offset, obj.size))
            offset += _align(obj.size, OBJ_ALIGN)
        units[name] = PlaceableUnit(name, offset, 1)
        spans[name] = tuple(group_spans)
    hot: List[str] = []
    seen: set = set()
    for object_id in profile.ids:
        name = f"{object_id:016x}"
        if name in units and name not in seen:
            seen.add(name)
            hot.append(name)
    if not hot:
        return None
    events = tuple(TouchEvent(unit=name, spans=spans[name]) for name in hot)
    model = CostModel(units=units, events=events)
    cold_tail = tuple(name for name in group_order if name not in seen)
    # seed = the "heap path" strategy's layout: matched groups in profile
    # order, unmatched groups after in snapshot order
    seed_order = tuple(hot) + cold_tail
    graph = build_coaccess_graph([(hot, 1)], window=config.window)
    return LayoutProblem(
        section="heap", strategy=HEAP_OPT_ORDERING, seed_strategy="heap path",
        model=model, graph=graph, seed_order=seed_order,
        hot=tuple(hot), cold_tail=cold_tail,
    )


# ---------------------------------------------------------------------------
# The three optimizers
# ---------------------------------------------------------------------------


def chain_merge_order(graph: CoAccessGraph, hot: Sequence[str],
                      window: int = 0) -> List[str]:
    """Ext-TSP-style greedy chain merging over the co-access graph.

    Every hot unit starts as a singleton chain; each step merges the
    (ordered) chain pair whose junction adds the most locality objective,
    until no merge has positive gain.  Each merge adds exactly its junction
    gain to :func:`~repro.ordering.coaccess.layout_objective` (intra-chain
    gaps are preserved by concatenation), so the objective is monotonically
    non-decreasing — the property the hypothesis suite checks.  Remaining
    chains concatenate in first-touch order of their heads.
    """
    window = window or graph.window
    chains: List[List[str]] = [[name] for name in hot]
    rank = {name: index for index, name in enumerate(hot)}
    while len(chains) > 1:
        best_gain = Fraction(0)
        best_pair: Optional[Tuple[int, int]] = None
        for i, left in enumerate(chains):
            for j, right in enumerate(chains):
                if i == j:
                    continue
                gain = _junction_gain(graph, left, right, window)
                if gain > best_gain or (
                    gain == best_gain and best_pair is not None and gain > 0
                    and (chains[best_pair[0]][0], chains[best_pair[1]][0])
                    > (left[0], right[0])
                ):
                    best_gain = gain
                    best_pair = (i, j)
        if best_pair is None or best_gain <= 0:
            break
        i, j = best_pair
        merged = chains[i] + chains[j]
        chains = [chain for index, chain in enumerate(chains)
                  if index not in (i, j)]
        chains.append(merged)
    chains.sort(key=lambda chain: min(rank[name] for name in chain))
    return [name for chain in chains for name in chain]


def _junction_gain(graph: CoAccessGraph, left: Sequence[str],
                   right: Sequence[str], window: int) -> Fraction:
    """Objective gained by concatenating ``left + right`` at the junction."""
    gain = Fraction(0)
    for p in range(min(window - 1, len(left))):
        u = left[-1 - p]
        for q in range(len(right)):
            gap = p + q + 1
            if gap >= window:
                break
            weight = graph.weight(u, right[q])
            if weight:
                gain += weight * Fraction(window - gap, window)
    return gain


def bisection_order(graph: CoAccessGraph, hot: Sequence[str],
                    window: int = 0, leaf_size: int = 4) -> List[str]:
    """BGP-style recursive bisection with bounded greedy refinement.

    Splits the hot set at the median of first-touch order, then runs up to
    two Kernighan–Lin-style passes (one best positive-gain swap per pass)
    to reduce the cut weight, and recurses into each half.  Leaves of
    ``leaf_size`` or fewer keep first-touch order.  Fully deterministic:
    ties break on unit names.
    """
    hot = list(hot)

    def split(units: List[str]) -> List[str]:
        if len(units) <= leaf_size:
            return units
        mid = (len(units) + 1) // 2
        left, right = units[:mid], units[mid:]
        for _pass in range(2):
            swap = _best_swap(graph, left, right)
            if swap is None:
                break
            u, v = swap
            left[left.index(u)] = v
            right[right.index(v)] = u
        return split(left) + split(right)

    return split(hot)


def _best_swap(graph: CoAccessGraph, left: List[str],
               right: List[str]) -> Optional[Tuple[str, str]]:
    """The (u, v) swap with the largest positive cut-weight reduction."""
    left_set, right_set = set(left), set(right)
    external: Dict[str, Fraction] = {}
    internal: Dict[str, Fraction] = {}
    for name in left + right:
        external[name] = Fraction(0)
        internal[name] = Fraction(0)
    for (a, b), weight in graph.weights.items():
        if a not in external or b not in external:
            continue
        same = ((a in left_set) == (b in left_set))
        bucket = internal if same else external
        bucket[a] += weight
        bucket[b] += weight
    best: Optional[Tuple[str, str]] = None
    best_gain = Fraction(0)
    for u in left:
        d_u = external[u] - internal[u]
        if d_u + max(external[v] - internal[v] for v in right) <= 0:
            continue
        for v in right:
            gain = d_u + (external[v] - internal[v]) - 2 * graph.weight(u, v)
            if gain > best_gain or (gain == best_gain and best is not None
                                    and gain > 0 and (u, v) < best):
                best_gain = gain
                best = (u, v)
    return best if best_gain > 0 else None


def anneal_order(model: CostModel, start_hot: Sequence[str],
                 cold_tail: Sequence[str], config: OptimizeConfig,
                 rng: random.Random) -> Tuple[List[str], int]:
    """Seeded simulated annealing over hot-unit permutations.

    Cost is the exact simulated fault count (:meth:`CostModel.faults`);
    moves are position swaps and short segment relocations; the best-seen
    state is kept, so the result never costs more than the start.  Fully
    reproducible: all randomness comes from ``rng``.
    """
    state = list(start_hot)
    tail = list(cold_tail)
    if len(state) < 2 or config.budget <= 0:
        return state, model.faults(state + tail)
    cost = model.faults(state + tail)
    best, best_cost = list(state), cost
    temperature = max(2.0, 0.1 * cost)
    floor = 0.05
    alpha = (floor / temperature) ** (1.0 / max(config.budget, 1))
    n = len(state)
    for _step in range(config.budget):
        neighbor = list(state)
        if rng.random() < 0.5:
            i, j = rng.randrange(n), rng.randrange(n)
            neighbor[i], neighbor[j] = neighbor[j], neighbor[i]
        else:
            length = 1 + rng.randrange(min(3, n))
            i = rng.randrange(n - length + 1)
            segment = neighbor[i:i + length]
            del neighbor[i:i + length]
            k = rng.randrange(len(neighbor) + 1)
            neighbor[k:k] = segment
        new_cost = model.faults(neighbor + tail)
        delta = new_cost - cost
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            state, cost = neighbor, new_cost
            if cost < best_cost:
                best, best_cost = list(state), cost
        temperature = max(temperature * alpha, floor)
    return best, best_cost


# ---------------------------------------------------------------------------
# The search driver
# ---------------------------------------------------------------------------


@dataclass
class SearchResult:
    """Outcome of one section's layout search."""

    section: str
    strategy: str
    seed_strategy: str
    #: the winning full placement order (hot permutation + cold tail)
    order: List[str]
    best_name: str
    best_cost: int
    seed_cost: int
    #: cost of every candidate that ran, by family name (incl. "seed")
    costs: Dict[str, int] = field(default_factory=dict)
    units: int = 0
    hot_units: int = 0

    @property
    def improved(self) -> bool:
        return self.best_cost < self.seed_cost


def search_order(problem: LayoutProblem,
                 config: OptimizeConfig) -> SearchResult:
    """Run the configured optimizers and keep the cheapest layout.

    The seed strategy's own order is always a candidate and wins ties, so
    the result never simulates worse than the seed strategy — the
    never-worse gate the bench ``optimize`` phase asserts.
    """
    model = problem.model
    tail = list(problem.cold_tail)
    candidates: Dict[str, List[str]] = {"seed": list(problem.seed_order)}
    if problem.hot:
        if OPTIMIZER_GREEDY in config.optimizers:
            hot = chain_merge_order(problem.graph, problem.hot, config.window)
            candidates[OPTIMIZER_GREEDY] = hot + tail
        if OPTIMIZER_BISECT in config.optimizers:
            hot = bisection_order(problem.graph, problem.hot, config.window)
            candidates[OPTIMIZER_BISECT] = hot + tail
    costs = {name: model.faults(order) for name, order in candidates.items()}
    if OPTIMIZER_ANNEAL in config.optimizers and problem.hot:
        start_name = min(
            costs, key=lambda name: (costs[name],
                                     _CANDIDATE_PREFERENCE.index(name)))
        start = candidates[start_name]
        hot_set = set(problem.hot)
        start_hot = [name for name in start if name in hot_set]
        rng = random.Random(
            (config.seed << 16) ^ murmur3_32(problem.section.encode("utf-8")))
        annealed, annealed_cost = anneal_order(model, start_hot, tail,
                                               config, rng)
        candidates[OPTIMIZER_ANNEAL] = annealed + tail
        costs[OPTIMIZER_ANNEAL] = annealed_cost
    best_name = min(costs, key=lambda name: (costs[name],
                                             _CANDIDATE_PREFERENCE.index(name)))
    return SearchResult(
        section=problem.section,
        strategy=problem.strategy,
        seed_strategy=problem.seed_strategy,
        order=list(candidates[best_name]),
        best_name=best_name,
        best_cost=costs[best_name],
        seed_cost=costs["seed"],
        costs=costs,
        units=len(model.units),
        hot_units=len(problem.hot),
    )


def synthesize_optimizer_profiles(
    binary: "NativeImageBinary",
    bundle: ProfileBundle,
    kinds: Sequence[str],
    config: Optional[OptimizeConfig] = None,
) -> ProfileBundle:
    """Augment ``bundle`` with search-derived orderings.

    ``binary`` is a *reference* build (default layout, PGO inlining) that
    supplies unit sizes; ``kinds`` is a subset of ``{"code", "heap"}``.
    Returns a new bundle carrying the requested ``cu-opt``/``heap-opt``
    profiles (existing entries are kept — synthesis is idempotent); the
    input bundle is never mutated.  When a section has no usable seed
    profile the corresponding entry is simply not added, and the existing
    degradation ladder falls back to the default layout.  Deterministic:
    same (binary, bundle, config) ⇒ byte-identical profiles.
    """
    config = config or OptimizeConfig()
    code_updates: Dict[str, CodeOrderProfile] = {}
    heap_updates: Dict[str, HeapOrderProfile] = {}
    if "code" in kinds and CU_OPT_ORDERING not in bundle.code:
        problem = code_problem(binary, bundle, config)
        if problem is not None:
            result = search_order(problem, config)
            code_updates[CU_OPT_ORDERING] = CodeOrderProfile(
                kind=CU_OPT_ORDERING, signatures=list(result.order))
    if "heap" in kinds and HEAP_OPT_ORDERING not in bundle.heap:
        problem = heap_problem(binary, bundle, config)
        if problem is not None:
            result = search_order(problem, config)
            names, _order, _members = _heap_groups(binary)
            heap_updates[HEAP_OPT_ORDERING] = HeapOrderProfile(
                strategy=HEAP_OPT_ORDERING,
                ids=[names[name] for name in result.order])
    if not code_updates and not heap_updates:
        return bundle
    return ProfileBundle(
        code={**bundle.code, **code_updates},
        heap={**bundle.heap, **heap_updates},
        calls=bundle.calls,
        completeness=bundle.completeness,
    )


# ---------------------------------------------------------------------------
# The common oracle on real binaries (apples-to-apples comparison)
# ---------------------------------------------------------------------------


def simulated_faults(
    binary: "NativeImageBinary",
    bundle: ProfileBundle,
    config: Optional[ExecutionConfig] = None,
) -> Dict[str, int]:
    """Member-granular simulated first-touch faults of a *real* binary.

    The same touch rules the :class:`CostModel` scores virtual layouts
    with, applied to a built binary's actual offsets: startup native-blob
    pages, then each profiled method's CU-prologue prefix (``method``
    profile first-entry order; whole-CU touches when only a ``cu`` profile
    exists), then each heap-path ID's carrier objects in first-access
    order.  Scoring *every* strategy's binary with this one oracle makes
    optimizer-vs-paper comparisons apples-to-apples; for a ``cu-opt`` /
    ``heap-opt`` build it reproduces the search's predicted cost exactly
    (property-tested).  Pure: same inputs ⇒ same counts.
    """
    from ..runtime.executor import ExecutionConfig
    from ..runtime.paging import PageCache

    config = config or ExecutionConfig()
    cache = PageCache()
    cache.set_limit(TEXT_SECTION, binary.text.size)
    cache.set_limit(HEAP_SECTION, binary.heap.size)
    blob_pages = min(config.startup_native_pages,
                     max(binary.text.native_blob_size // PAGE_SIZE, 0))
    if blob_pages > 0:
        cache.touch(TEXT_SECTION, binary.text.native_blob_offset,
                    blob_pages * PAGE_SIZE)
    raw_events = _code_events(binary, bundle)
    if raw_events is not None:
        placed_by_name = {placed.cu.name: placed
                          for placed in binary.text.placed}
        for name, end in raw_events:
            placed = placed_by_name.get(name)
            if placed is not None:
                cache.touch(TEXT_SECTION, placed.offset, end)
    profile = bundle.heap_profile(HEAP_PATH)
    if profile is not None:
        by_id: Dict[int, List] = {}
        for obj in binary.heap.ordered:
            object_id = obj.ids.get(HEAP_PATH)
            if object_id is not None:
                by_id.setdefault(object_id, []).append(obj)
        for object_id in profile.ids:
            for obj in by_id.get(object_id, ()):
                cache.touch(HEAP_SECTION, obj.address, obj.size)
    return cache.snapshot_counts()


# ---------------------------------------------------------------------------
# Workload-level driver (CLI / api / bench phase)
# ---------------------------------------------------------------------------


@dataclass
class SectionOptimization:
    """One section's optimizer-vs-seed verdict on real binaries."""

    section: str  # "code" or "heap"
    strategy: str  # "cu-opt" / "heap-opt"
    seed_strategy: str  # "cu" / "heap path"
    skipped: bool = False
    reason: str = ""
    units: int = 0
    hot_units: int = 0
    #: oracle faults of the seed strategy's built binary
    seed_faults: int = 0
    #: oracle faults of the optimizer strategy's built binary
    optimized_faults: int = 0
    #: the search's predicted cost (== optimized_faults; property-tested)
    predicted_faults: int = 0
    #: per-family candidate costs from the search
    optimizer_costs: Dict[str, int] = field(default_factory=dict)
    best_optimizer: str = ""
    #: PR-2 structural oracle verdict on the built optimizer layout
    verified: bool = False
    #: differential execution vs baseline matched
    differential_ok: bool = False

    @property
    def improved(self) -> bool:
        return not self.skipped and self.optimized_faults < self.seed_faults

    @property
    def never_worse(self) -> bool:
        return self.skipped or self.optimized_faults <= self.seed_faults

    def as_dict(self) -> Dict[str, object]:
        return {
            "section": self.section,
            "strategy": self.strategy,
            "seed_strategy": self.seed_strategy,
            "skipped": self.skipped,
            "reason": self.reason,
            "units": self.units,
            "hot_units": self.hot_units,
            "seed_faults": self.seed_faults,
            "optimized_faults": self.optimized_faults,
            "predicted_faults": self.predicted_faults,
            "optimizer_costs": dict(self.optimizer_costs),
            "best_optimizer": self.best_optimizer,
            "verified": self.verified,
            "differential_ok": self.differential_ok,
            "improved": self.improved,
            "never_worse": self.never_worse,
        }


@dataclass
class OptimizationReport:
    """Everything ``repro optimize`` measured for one workload."""

    workload: str
    seed: int
    config: OptimizeConfig
    sections: List[SectionOptimization] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Never-worse, structurally verified, differentially clean."""
        return all(
            section.skipped or (section.never_worse and section.verified
                                and section.differential_ok)
            for section in self.sections
        )

    @property
    def improved_sections(self) -> int:
        return sum(1 for section in self.sections if section.improved)

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "budget": self.config.budget,
            "search_seed": self.config.seed,
            "window": self.config.window,
            "optimizers": list(self.config.optimizers),
            "sections": [section.as_dict() for section in self.sections],
            "ok": self.ok,
            "improved_sections": self.improved_sections,
        }

    def describe(self) -> str:
        lines = [f"optimize [{self.workload}] budget {self.config.budget}, "
                 f"search seed {self.config.seed}:"]
        for section in self.sections:
            if section.skipped:
                lines.append(f"  {section.strategy}: skipped ({section.reason})")
                continue
            delta = section.seed_faults - section.optimized_faults
            pct = (100.0 * delta / section.seed_faults
                   if section.seed_faults else 0.0)
            verdict = ("improved" if section.improved else
                       "tied" if section.never_worse else "WORSE")
            lines.append(
                f"  {section.strategy} vs {section.seed_strategy}: "
                f"{section.seed_faults} -> {section.optimized_faults} faults "
                f"({verdict}, -{delta} / {pct:.1f}%) via "
                f"{section.best_optimizer} "
                f"[{section.hot_units}/{section.units} hot units, "
                f"verified={'yes' if section.verified else 'NO'}, "
                f"differential={'ok' if section.differential_ok else 'FAIL'}]"
            )
        return "\n".join(lines)


def optimize_workload(pipeline, sections: Sequence[str] = ("code", "heap"),
                      seed: int = 0) -> OptimizationReport:
    """Search both sections of one workload and score winners vs seeds.

    ``pipeline`` is a :class:`~repro.eval.pipeline.WorkloadPipeline`; its
    ``optimize_config`` drives the search (so the builds the pipeline
    produces and the search scored here agree exactly).  Every built
    candidate runs the PR-2 structural verifier and the differential
    execution oracle before its faults count.  Fault numbers come from
    :func:`simulated_faults` on the *built* binaries — the same oracle for
    seed strategies and optimizers.
    """
    from ..eval.pipeline import (
        STRATEGY_CU,
        STRATEGY_CU_OPT,
        STRATEGY_HEAP_OPT,
        STRATEGY_HEAP_PATH,
    )
    from ..validation.differential import run_differential
    from ..validation.invariants import verify_layout

    config = pipeline.optimize_config
    outcome = pipeline.profile(seed=seed)
    bundle = outcome.profiles
    report = OptimizationReport(workload=pipeline.workload.name, seed=seed,
                                config=config)
    reference = pipeline.build_optimized(bundle, None, seed=seed)
    baseline = pipeline.build_baseline(seed=seed)
    plan = {
        "code": (STRATEGY_CU, STRATEGY_CU_OPT, code_problem, TEXT_SECTION),
        "heap": (STRATEGY_HEAP_PATH, STRATEGY_HEAP_OPT, heap_problem,
                 HEAP_SECTION),
    }
    for section in sections:
        seed_spec, opt_spec, make_problem, section_name = plan[section]
        entry = SectionOptimization(section=section, strategy=opt_spec.name,
                                    seed_strategy=seed_spec.name)
        report.sections.append(entry)
        problem = make_problem(reference, bundle, config)
        if problem is None:
            entry.skipped = True
            entry.reason = f"no usable seed profile for {section}"
            continue
        result = search_order(problem, config)
        entry.units = result.units
        entry.hot_units = result.hot_units
        entry.optimizer_costs = dict(result.costs)
        entry.best_optimizer = result.best_name
        entry.predicted_faults = result.best_cost
        seed_binary = pipeline.build_optimized(bundle, seed_spec, seed=seed)
        opt_binary = pipeline.build_optimized(bundle, opt_spec, seed=seed)
        entry.verified = verify_layout(opt_binary).ok
        entry.differential_ok = run_differential(
            baseline, opt_binary, pipeline.exec_config,
            workload=pipeline.workload.name, strategy=opt_spec.name,
            microservice=pipeline.workload.microservice,
        ).matches
        entry.seed_faults = simulated_faults(
            seed_binary, bundle, pipeline.exec_config).get(section_name, 0)
        entry.optimized_faults = simulated_faults(
            opt_binary, bundle, pipeline.exec_config).get(section_name, 0)
    return report
