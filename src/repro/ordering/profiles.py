"""Ordering-profile data model and CSV I/O.

The post-processing framework (paper Sec. 6.2) emits one CSV file per
ordering analysis; Native Image consumes them in the optimizing build.  We
mirror that: each profile is an ordered, duplicate-free sequence, written as
a CSV with a small header.

Reader functions (:func:`read_code_profile`, :func:`read_heap_profile`,
:func:`read_call_counts`) raise :class:`ValueError` on files that are not
profiles of the expected kind and propagate :class:`OSError` for unreadable
paths; writers overwrite their target atomically enough for single-writer
use (the content-addressed cache handles concurrent writers).
"""

from __future__ import annotations

import csv
import hashlib
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .errors import OrderingError


#: Code-order profile kinds: the paper's two first-use orderings plus the
#: search-derived placement order of :mod:`repro.ordering.optimize`.
CODE_ORDER_KINDS = ("cu", "method", "cu-opt")


@dataclass
class CodeOrderProfile:
    """First-execution order of CU roots (``cu``) or methods (``method``).

    The ``cu-opt`` kind carries a *search-derived* CU placement order
    (every signature is a CU root, like ``cu``, but the order came from the
    layout optimizer rather than first execution).
    """

    kind: str  # one of CODE_ORDER_KINDS
    signatures: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in CODE_ORDER_KINDS:
            raise ValueError(f"unknown code-order kind {self.kind!r}")


@dataclass
class HeapOrderProfile:
    """First-access order of image-heap objects, as strategy-specific IDs.

    ``strategy`` is an ID-strategy name ("incremental_id",
    "structural_hash", "heap_path") or the optimizer strategy "heap-opt",
    whose IDs are heap-path IDs in search-derived placement-group order
    (resolved through :func:`repro.ordering.ids.resolve_id_strategy`).
    """

    strategy: str
    ids: List[int] = field(default_factory=list)


@dataclass
class CallCountProfile:
    """Method call counts (the paper's standard PGO profile content)."""

    counts: Dict[str, int] = field(default_factory=dict)

    def count(self, signature: str) -> int:
        return self.counts.get(signature, 0)

    def is_hot(self, signature: str, threshold: int) -> bool:
        return self.count(signature) >= threshold


@dataclass
class ProfileCompleteness:
    """How much of the raw trace data survived into a profile bundle.

    Filled in by :func:`repro.postproc.framework.build_profiles` when it
    runs in lenient (salvage) mode; ``None`` on a bundle means the traces
    were parsed strictly, i.e. they were complete by construction.
    """

    traces: int = 0
    #: traces that needed salvage (damaged but partially recovered)
    traces_damaged: int = 0
    #: traces that yielded nothing at all (unreadable header, total loss)
    traces_unreadable: int = 0
    records_recovered: int = 0
    #: records from torn tail chunks whose CRC could not be verified
    records_unverified: int = 0
    #: structurally valid records that contradict the manifest
    #: (mismatched-build symptom) and were skipped
    records_undecodable: int = 0
    corrupt_chunks: int = 0
    bytes_dropped: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def usable_records(self) -> int:
        return self.records_recovered - self.records_undecodable

    @property
    def complete(self) -> bool:
        return (self.traces_damaged == 0 and self.traces_unreadable == 0
                and self.records_undecodable == 0 and self.corrupt_chunks == 0
                and self.bytes_dropped == 0)

    def summary(self) -> str:
        status = "complete" if self.complete else "partial"
        return (
            f"{status}: {self.usable_records} usable records from "
            f"{self.traces} trace(s); {self.traces_damaged} damaged, "
            f"{self.traces_unreadable} unreadable, "
            f"{self.records_undecodable} undecodable record(s), "
            f"{self.corrupt_chunks} corrupt chunk(s), "
            f"{self.bytes_dropped} byte(s) dropped"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.summary()


@dataclass
class ProfileBundle:
    """Everything a profiling run produces for the optimizing build.

    Inputs come from :func:`repro.postproc.framework.build_profiles`;
    consumers are the optimized build (ordering + PGO inlining) and the
    content-addressed cache (via :meth:`digest`).  Lookup methods return
    ``None`` for absent kinds/strategies — callers decide whether that is a
    degradation (fallback to default layout) or an error
    (:class:`ValueError` from :meth:`NativeImageBuilder.build`).
    """

    code: Dict[str, CodeOrderProfile] = field(default_factory=dict)
    heap: Dict[str, HeapOrderProfile] = field(default_factory=dict)
    calls: CallCountProfile = field(default_factory=CallCountProfile)
    #: salvage annotation (lenient post-processing only; None = parsed
    #: strictly from undamaged traces)
    completeness: Optional[ProfileCompleteness] = None

    def code_profile(self, kind: str) -> Optional[CodeOrderProfile]:
        """The ``"cu"``/``"method"`` ordering, or ``None`` if not traced."""
        return self.code.get(kind)

    def heap_profile(self, strategy: str) -> Optional[HeapOrderProfile]:
        """The named ID-strategy ordering, or ``None`` if not traced."""
        return self.heap.get(strategy)

    def digest(self) -> str:
        """SHA-256 content digest of every profile in the bundle.

        Two bundles with identical orderings and call counts digest
        identically regardless of how they were produced (fresh run,
        salvage, CSV round-trip); completeness annotations are metadata
        and deliberately excluded.  Used to key optimized builds in the
        artifact cache: a re-profiled workload whose orderings did not
        actually change still hits its cached image.
        """
        hasher = hashlib.sha256()
        for kind in sorted(self.code):
            hasher.update(f"code:{kind}\n".encode("utf-8"))
            for signature in self.code[kind].signatures:
                hasher.update(signature.encode("utf-8") + b"\n")
        for strategy in sorted(self.heap):
            hasher.update(f"heap:{strategy}\n".encode("utf-8"))
            for object_id in self.heap[strategy].ids:
                hasher.update((object_id & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))
        hasher.update(b"calls\n")
        for signature in sorted(self.calls.counts):
            hasher.update(
                f"{signature}={self.calls.counts[signature]}\n".encode("utf-8")
            )
        return hasher.hexdigest()


# ---------------------------------------------------------------------------
# Weighted multi-trace merge
# ---------------------------------------------------------------------------
#
# Production PGO folds profiles from heterogeneous traffic mixes into one
# ordering (the GraalVM loop merges N iprof files before the rebuild).  The
# primitives below aggregate N profiles under positive weights with *exact*
# rational arithmetic, so three algebraic guarantees hold by construction
# (and are property-tested in tests/test_pgo.py):
#
# * input-order invariance — merging a permutation of the same weighted
#   inputs yields the identical profile (Fraction sums are exact, ties
#   break deterministically);
# * weight-scale invariance — scaling every weight by the same positive
#   factor changes nothing (scores are normalized by total weight);
# * N=1 identity — merging a single profile reproduces it exactly.
#
# An entry's merged position is its weighted mean *normalized first-use
# rank*, where a profile that never saw the entry votes rank 1.0 ("after
# everything I did see"): entries that most of the traffic touches early
# land early, rarely-touched entries sink to the tail.  Degenerate inputs
# (empty set, all-zero weights, duplicated traces) raise a typed
# :class:`OrderingError` instead of silently producing a garbage ordering
# that an optimized build would then bake into a layout.


def _check_merge_inputs(items: Sequence[object], weights: Sequence[float],
                        kind: str, digests: Sequence[str]) -> List[Fraction]:
    """Validate merge inputs; return the weights as exact fractions.

    Raises :class:`OrderingError` (``kind=kind``) on an empty input set, a
    length mismatch, negative or all-zero weights, and duplicated inputs
    (two traces with identical content would silently double-vote).
    """
    if not items:
        raise OrderingError(
            f"cannot merge an empty {kind} set: at least one profile is "
            "required", kind=kind,
        )
    if len(weights) != len(items):
        raise OrderingError(
            f"{len(items)} {kind} input(s) but {len(weights)} weight(s)",
            kind=kind,
        )
    fractions = []
    for index, weight in enumerate(weights):
        if weight < 0:
            raise OrderingError(
                f"negative weight {weight!r} for {kind} input {index}",
                kind=kind,
            )
        fractions.append(Fraction(weight))
    if not any(fractions):
        raise OrderingError(
            f"all-zero weights: the merged {kind} would be degenerate "
            "(no input can contribute)", kind=kind,
        )
    seen: Dict[str, int] = {}
    for index, digest in enumerate(digests):
        if digest in seen:
            raise OrderingError(
                f"duplicate {kind} inputs at positions {seen[digest]} and "
                f"{index}: identical traces would double-vote; deduplicate "
                "(or reweight) before merging",
                kind=kind, missing=(seen[digest], index),
            )
        seen[digest] = index
    return fractions


def _merge_ranked(sequences: Sequence[Sequence], weights: Sequence[Fraction],
                  sort_key) -> List:
    """Order the union of ``sequences`` by weighted mean normalized rank.

    An entry absent from a sequence is charged that sequence's weight at
    normalized rank 1.0; ties break towards the entry more traffic
    actually saw, then by ``sort_key`` for full determinism.
    """
    total = sum(weights)
    rank_maps = [
        ({entry: position for position, entry in enumerate(sequence)},
         len(sequence) + 1, weight)
        for sequence, weight in zip(sequences, weights)
    ]
    union = set()
    for ranks, _, _ in rank_maps:
        union.update(ranks)
    scores: Dict[object, Tuple[Fraction, Fraction]] = {}
    for entry in union:
        score = Fraction(0)
        seen_weight = Fraction(0)
        for ranks, denominator, weight in rank_maps:
            position = ranks.get(entry)
            if position is None:
                score += weight  # absent = normalized rank 1.0
            else:
                score += weight * Fraction(position + 1, denominator)
                seen_weight += weight
        scores[entry] = (score / total, seen_weight)
    return sorted(union,
                  key=lambda entry: (scores[entry][0], -scores[entry][1],
                                     sort_key(entry)))


def merge_code_profiles(profiles: Sequence[CodeOrderProfile],
                        weights: Sequence[float],
                        dedup: bool = True) -> CodeOrderProfile:
    """Weighted merge of N same-kind code orderings into one.

    Raises :class:`OrderingError` on degenerate inputs (see
    :func:`_check_merge_inputs`) and on mixed kinds (a ``cu`` ordering
    cannot merge with a ``method`` ordering).  ``dedup=False`` skips the
    duplicate-input check — for callers like :func:`merge_bundles` that
    already deduplicate at a coarser granularity, where two *distinct*
    bundles may legitimately share one identical component.
    """
    digests = ([f"{p.kind}:" + "\x1f".join(p.signatures) for p in profiles]
               if dedup else ())
    fractions = _check_merge_inputs(profiles, weights, "code-order", digests)
    kinds = {profile.kind for profile in profiles}
    if len(kinds) > 1:
        raise OrderingError(
            f"cannot merge code orderings of mixed kinds {sorted(kinds)}",
            kind="code-order",
        )
    merged = _merge_ranked([p.signatures for p in profiles], fractions,
                           sort_key=lambda signature: signature)
    return CodeOrderProfile(kind=profiles[0].kind, signatures=merged)


def merge_heap_profiles(profiles: Sequence[HeapOrderProfile],
                        weights: Sequence[float],
                        dedup: bool = True) -> HeapOrderProfile:
    """Weighted merge of N same-strategy heap orderings into one."""
    digests = ([
        f"{p.strategy}:" + "\x1f".join(f"{i:x}" for i in p.ids)
        for p in profiles
    ] if dedup else ())
    fractions = _check_merge_inputs(profiles, weights, "heap-order", digests)
    strategies = {profile.strategy for profile in profiles}
    if len(strategies) > 1:
        raise OrderingError(
            "cannot merge heap orderings of mixed strategies "
            f"{sorted(strategies)}", kind="heap-order",
        )
    merged = _merge_ranked([p.ids for p in profiles], fractions,
                           sort_key=lambda object_id: object_id)
    return HeapOrderProfile(strategy=profiles[0].strategy, ids=merged)


def merge_call_counts(profiles: Sequence[CallCountProfile],
                      weights: Sequence[float],
                      dedup: bool = True) -> CallCountProfile:
    """Weighted mean of N call-count profiles (rounded half-up).

    The mean (not the sum) keeps the result weight-scale-invariant and
    reduces to the input for N=1; with heterogeneous traffic mixes it is
    the expected per-start call count, which is what PGO inlining wants.
    """
    digests = ([
        "\x1f".join(f"{s}={p.counts[s]}" for s in sorted(p.counts))
        for p in profiles
    ] if dedup else ())
    fractions = _check_merge_inputs(profiles, weights, "call-count", digests)
    total = sum(fractions)
    merged: Dict[str, int] = {}
    signatures = set()
    for profile in profiles:
        signatures.update(profile.counts)
    for signature in sorted(signatures):
        mean = sum(
            weight * profile.counts.get(signature, 0)
            for profile, weight in zip(profiles, fractions)
        ) / total
        count = int(mean) + (1 if mean - int(mean) >= Fraction(1, 2) else 0)
        if count > 0:
            merged[signature] = count
    return CallCountProfile(counts=merged)


def merge_bundles(bundles: Sequence[ProfileBundle],
                  weights: Sequence[float]) -> ProfileBundle:
    """Weighted merge of N profile bundles into one first-use bundle.

    Each code kind / heap strategy is merged across the bundles that carry
    it (with their weights); kinds carried only by zero-weight bundles are
    dropped.  Only profile *content* merges here: per-source provenance
    (which traces contributed, at what weights, from which epoch) is not a
    bundle field — since PR 7 it travels separately as
    :class:`repro.pgo.lifecycle.ProfileProvenance`, stored as
    ``provenance.json`` next to the CSV bundle in the profile store.  The
    one accounting that does live on the bundle is salvage completeness
    (:class:`ProfileCompleteness`), summed across annotated inputs.
    Raises :class:`OrderingError` on an empty bundle set, mismatched
    weights, all-zero weights, or duplicate bundles (identical content
    digest).

    Weight-scale invariance — scaling every weight by the same positive
    factor changes nothing (exercised as a doctest by the test suite):

    >>> left = ProfileBundle(code={"cu": CodeOrderProfile("cu", ["a", "b"])})
    >>> right = ProfileBundle(code={"cu": CodeOrderProfile("cu", ["b", "c"])})
    >>> merged = merge_bundles([left, right], [1, 3])
    >>> scaled = merge_bundles([left, right], [10, 30])
    >>> merged.code["cu"].signatures
    ['b', 'c', 'a']
    >>> scaled.code["cu"].signatures == merged.code["cu"].signatures
    True
    >>> scaled.digest() == merged.digest()
    True
    """
    fractions = _check_merge_inputs(
        bundles, weights, "profile-bundle",
        [bundle.digest() for bundle in bundles],
    )
    merged = ProfileBundle()
    code_kinds = sorted({kind for bundle in bundles for kind in bundle.code})
    for kind in code_kinds:
        carriers = [(bundle.code[kind], weight)
                    for bundle, weight in zip(bundles, fractions)
                    if kind in bundle.code]
        if not any(weight for _, weight in carriers):
            continue
        merged.code[kind] = merge_code_profiles(
            [profile for profile, _ in carriers],
            [weight for _, weight in carriers],
            dedup=False,
        )
    heap_kinds = sorted({kind for bundle in bundles for kind in bundle.heap})
    for strategy in heap_kinds:
        carriers = [(bundle.heap[strategy], weight)
                    for bundle, weight in zip(bundles, fractions)
                    if strategy in bundle.heap]
        if not any(weight for _, weight in carriers):
            continue
        merged.heap[strategy] = merge_heap_profiles(
            [profile for profile, _ in carriers],
            [weight for _, weight in carriers],
            dedup=False,
        )
    merged.calls = merge_call_counts([bundle.calls for bundle in bundles],
                                     weights, dedup=False)
    annotated = [bundle.completeness for bundle in bundles
                 if bundle.completeness is not None]
    if annotated:
        combined = ProfileCompleteness()
        for completeness in annotated:
            combined.traces += completeness.traces
            combined.traces_damaged += completeness.traces_damaged
            combined.traces_unreadable += completeness.traces_unreadable
            combined.records_recovered += completeness.records_recovered
            combined.records_unverified += completeness.records_unverified
            combined.records_undecodable += completeness.records_undecodable
            combined.corrupt_chunks += completeness.corrupt_chunks
            combined.bytes_dropped += completeness.bytes_dropped
            combined.notes.extend(completeness.notes)
        merged.completeness = combined
    return merged


# ---------------------------------------------------------------------------
# CSV I/O
# ---------------------------------------------------------------------------


def write_code_profile(profile: CodeOrderProfile, path: Path) -> None:
    """Write a code-ordering profile as ``order,signature`` rows."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["kind", profile.kind])
        for index, signature in enumerate(profile.signatures):
            writer.writerow([index, signature])


def read_code_profile(path: Path) -> CodeOrderProfile:
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    if not rows or rows[0][0] != "kind":
        raise ValueError(f"{path}: not a code-ordering profile")
    kind = rows[0][1]
    signatures = [row[1] for row in rows[1:]]
    return CodeOrderProfile(kind=kind, signatures=signatures)


def write_heap_profile(profile: HeapOrderProfile, path: Path) -> None:
    """Write a heap-ordering profile as ``order,id`` rows (IDs in hex)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["strategy", profile.strategy])
        for index, object_id in enumerate(profile.ids):
            writer.writerow([index, f"{object_id:016x}"])


def read_heap_profile(path: Path) -> HeapOrderProfile:
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    if not rows or rows[0][0] != "strategy":
        raise ValueError(f"{path}: not a heap-ordering profile")
    strategy = rows[0][1]
    ids = [int(row[1], 16) for row in rows[1:]]
    return HeapOrderProfile(strategy=strategy, ids=ids)


def write_call_counts(profile: CallCountProfile, path: Path) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["signature", "count"])
        for signature in sorted(profile.counts):
            writer.writerow([signature, profile.counts[signature]])


def read_call_counts(path: Path) -> CallCountProfile:
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    if not rows or rows[0] != ["signature", "count"]:
        raise ValueError(f"{path}: not a call-count profile")
    return CallCountProfile(counts={sig: int(count) for sig, count in rows[1:]})


def save_bundle(bundle: ProfileBundle, directory: Path) -> None:
    """Persist a bundle into ``directory`` (one CSV per profile)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for kind, profile in bundle.code.items():
        write_code_profile(profile, directory / f"code_{kind}.csv")
    for strategy, profile in bundle.heap.items():
        write_heap_profile(profile, directory / f"heap_{strategy}.csv")
    write_call_counts(bundle.calls, directory / "call_counts.csv")


def load_bundle(directory: Path) -> ProfileBundle:
    """Load a bundle previously written by :func:`save_bundle`."""
    directory = Path(directory)
    bundle = ProfileBundle()
    for path in sorted(directory.glob("code_*.csv")):
        profile = read_code_profile(path)
        bundle.code[profile.kind] = profile
    for path in sorted(directory.glob("heap_*.csv")):
        profile = read_heap_profile(path)
        bundle.heap[profile.strategy] = profile
    counts_path = directory / "call_counts.csv"
    if counts_path.exists():
        bundle.calls = read_call_counts(counts_path)
    return bundle
