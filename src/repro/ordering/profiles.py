"""Ordering-profile data model and CSV I/O.

The post-processing framework (paper Sec. 6.2) emits one CSV file per
ordering analysis; Native Image consumes them in the optimizing build.  We
mirror that: each profile is an ordered, duplicate-free sequence, written as
a CSV with a small header.

Reader functions (:func:`read_code_profile`, :func:`read_heap_profile`,
:func:`read_call_counts`) raise :class:`ValueError` on files that are not
profiles of the expected kind and propagate :class:`OSError` for unreadable
paths; writers overwrite their target atomically enough for single-writer
use (the content-addressed cache handles concurrent writers).
"""

from __future__ import annotations

import csv
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional


@dataclass
class CodeOrderProfile:
    """First-execution order of CU roots (``cu``) or methods (``method``)."""

    kind: str  # "cu" or "method"
    signatures: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in ("cu", "method"):
            raise ValueError(f"unknown code-order kind {self.kind!r}")


@dataclass
class HeapOrderProfile:
    """First-access order of image-heap objects, as strategy-specific IDs."""

    strategy: str  # "incremental_id", "structural_hash", or "heap_path"
    ids: List[int] = field(default_factory=list)


@dataclass
class CallCountProfile:
    """Method call counts (the paper's standard PGO profile content)."""

    counts: Dict[str, int] = field(default_factory=dict)

    def count(self, signature: str) -> int:
        return self.counts.get(signature, 0)

    def is_hot(self, signature: str, threshold: int) -> bool:
        return self.count(signature) >= threshold


@dataclass
class ProfileCompleteness:
    """How much of the raw trace data survived into a profile bundle.

    Filled in by :func:`repro.postproc.framework.build_profiles` when it
    runs in lenient (salvage) mode; ``None`` on a bundle means the traces
    were parsed strictly, i.e. they were complete by construction.
    """

    traces: int = 0
    #: traces that needed salvage (damaged but partially recovered)
    traces_damaged: int = 0
    #: traces that yielded nothing at all (unreadable header, total loss)
    traces_unreadable: int = 0
    records_recovered: int = 0
    #: records from torn tail chunks whose CRC could not be verified
    records_unverified: int = 0
    #: structurally valid records that contradict the manifest
    #: (mismatched-build symptom) and were skipped
    records_undecodable: int = 0
    corrupt_chunks: int = 0
    bytes_dropped: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def usable_records(self) -> int:
        return self.records_recovered - self.records_undecodable

    @property
    def complete(self) -> bool:
        return (self.traces_damaged == 0 and self.traces_unreadable == 0
                and self.records_undecodable == 0 and self.corrupt_chunks == 0
                and self.bytes_dropped == 0)

    def summary(self) -> str:
        status = "complete" if self.complete else "partial"
        return (
            f"{status}: {self.usable_records} usable records from "
            f"{self.traces} trace(s); {self.traces_damaged} damaged, "
            f"{self.traces_unreadable} unreadable, "
            f"{self.records_undecodable} undecodable record(s), "
            f"{self.corrupt_chunks} corrupt chunk(s), "
            f"{self.bytes_dropped} byte(s) dropped"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.summary()


@dataclass
class ProfileBundle:
    """Everything a profiling run produces for the optimizing build.

    Inputs come from :func:`repro.postproc.framework.build_profiles`;
    consumers are the optimized build (ordering + PGO inlining) and the
    content-addressed cache (via :meth:`digest`).  Lookup methods return
    ``None`` for absent kinds/strategies — callers decide whether that is a
    degradation (fallback to default layout) or an error
    (:class:`ValueError` from :meth:`NativeImageBuilder.build`).
    """

    code: Dict[str, CodeOrderProfile] = field(default_factory=dict)
    heap: Dict[str, HeapOrderProfile] = field(default_factory=dict)
    calls: CallCountProfile = field(default_factory=CallCountProfile)
    #: salvage annotation (lenient post-processing only; None = parsed
    #: strictly from undamaged traces)
    completeness: Optional[ProfileCompleteness] = None

    def code_profile(self, kind: str) -> Optional[CodeOrderProfile]:
        """The ``"cu"``/``"method"`` ordering, or ``None`` if not traced."""
        return self.code.get(kind)

    def heap_profile(self, strategy: str) -> Optional[HeapOrderProfile]:
        """The named ID-strategy ordering, or ``None`` if not traced."""
        return self.heap.get(strategy)

    def digest(self) -> str:
        """SHA-256 content digest of every profile in the bundle.

        Two bundles with identical orderings and call counts digest
        identically regardless of how they were produced (fresh run,
        salvage, CSV round-trip); completeness annotations are metadata
        and deliberately excluded.  Used to key optimized builds in the
        artifact cache: a re-profiled workload whose orderings did not
        actually change still hits its cached image.
        """
        hasher = hashlib.sha256()
        for kind in sorted(self.code):
            hasher.update(f"code:{kind}\n".encode("utf-8"))
            for signature in self.code[kind].signatures:
                hasher.update(signature.encode("utf-8") + b"\n")
        for strategy in sorted(self.heap):
            hasher.update(f"heap:{strategy}\n".encode("utf-8"))
            for object_id in self.heap[strategy].ids:
                hasher.update((object_id & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))
        hasher.update(b"calls\n")
        for signature in sorted(self.calls.counts):
            hasher.update(
                f"{signature}={self.calls.counts[signature]}\n".encode("utf-8")
            )
        return hasher.hexdigest()


# ---------------------------------------------------------------------------
# CSV I/O
# ---------------------------------------------------------------------------


def write_code_profile(profile: CodeOrderProfile, path: Path) -> None:
    """Write a code-ordering profile as ``order,signature`` rows."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["kind", profile.kind])
        for index, signature in enumerate(profile.signatures):
            writer.writerow([index, signature])


def read_code_profile(path: Path) -> CodeOrderProfile:
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    if not rows or rows[0][0] != "kind":
        raise ValueError(f"{path}: not a code-ordering profile")
    kind = rows[0][1]
    signatures = [row[1] for row in rows[1:]]
    return CodeOrderProfile(kind=kind, signatures=signatures)


def write_heap_profile(profile: HeapOrderProfile, path: Path) -> None:
    """Write a heap-ordering profile as ``order,id`` rows (IDs in hex)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["strategy", profile.strategy])
        for index, object_id in enumerate(profile.ids):
            writer.writerow([index, f"{object_id:016x}"])


def read_heap_profile(path: Path) -> HeapOrderProfile:
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    if not rows or rows[0][0] != "strategy":
        raise ValueError(f"{path}: not a heap-ordering profile")
    strategy = rows[0][1]
    ids = [int(row[1], 16) for row in rows[1:]]
    return HeapOrderProfile(strategy=strategy, ids=ids)


def write_call_counts(profile: CallCountProfile, path: Path) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["signature", "count"])
        for signature in sorted(profile.counts):
            writer.writerow([signature, profile.counts[signature]])


def read_call_counts(path: Path) -> CallCountProfile:
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    if not rows or rows[0] != ["signature", "count"]:
        raise ValueError(f"{path}: not a call-count profile")
    return CallCountProfile(counts={sig: int(count) for sig, count in rows[1:]})


def save_bundle(bundle: ProfileBundle, directory: Path) -> None:
    """Persist a bundle into ``directory`` (one CSV per profile)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for kind, profile in bundle.code.items():
        write_code_profile(profile, directory / f"code_{kind}.csv")
    for strategy, profile in bundle.heap.items():
        write_heap_profile(profile, directory / f"heap_{strategy}.csv")
    write_call_counts(bundle.calls, directory / "call_counts.csv")


def load_bundle(directory: Path) -> ProfileBundle:
    """Load a bundle previously written by :func:`save_bundle`."""
    directory = Path(directory)
    bundle = ProfileBundle()
    for path in sorted(directory.glob("code_*.csv")):
        profile = read_code_profile(path)
        bundle.code[profile.kind] = profile
    for path in sorted(directory.glob("heap_*.csv")):
        profile = read_heap_profile(path)
        bundle.heap[profile.strategy] = profile
    counts_path = directory / "call_counts.csv"
    if counts_path.exists():
        bundle.calls = read_call_counts(counts_path)
    return bundle
