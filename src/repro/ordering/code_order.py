"""Code-ordering strategies (paper Sec. 4).

The ``.text`` section is a sequence of compilation units.  By default Native
Image orders CUs alphabetically by root-method signature; the two strategies
reorder them by first-execution order from the profile:

* **cu ordering** (Sec. 4.1) — the profile lists CU *root* signatures in
  first-entry order; CUs are placed in that order.
* **method ordering** (Sec. 4.2) — the profile lists *method* signatures in
  first-entry order; a CU is ranked by the earliest-executed method it
  contains (root or inlined copy), which pays off when the optimized build's
  inliner made different decisions than the profiling build's.

Profile entries are matched to CUs by signature, as in the paper; CUs that
match nothing keep the default (alphabetical) order after all matched CUs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..graal.cunits import CompilationUnit
from .errors import OrderingError
from .profiles import CodeOrderProfile

CU_ORDERING = "cu"
METHOD_ORDERING = "method"
#: Search-derived CU placement order (repro.ordering.optimize): signatures
#: are CU roots like ``cu``, so it ranks through the same root matcher.
CU_OPT_ORDERING = "cu-opt"


def default_order(cus: List[CompilationUnit]) -> List[CompilationUnit]:
    """Native Image's default: alphabetical by root signature."""
    return sorted(cus, key=lambda cu: cu.name)


def order_compilation_units(
    cus: List[CompilationUnit],
    profile: Optional[CodeOrderProfile] = None,
    strict: bool = False,
) -> List[CompilationUnit]:
    """Order CUs for the ``.text`` section.

    Without a profile this is the default alphabetical order.  With a
    profile, matched CUs come first in profile order, then unmatched CUs
    alphabetically.  With ``strict=True``, profile signatures that resolve
    to no CU (root nor inlined member, per the profile kind) raise
    :class:`OrderingError` instead of being skipped.
    """
    if profile is None:
        return default_order(cus)
    if profile.kind in (CU_ORDERING, CU_OPT_ORDERING):
        ranks = _rank_by_root(cus, profile)
        known = {cu.name for cu in cus}
    elif profile.kind == METHOD_ORDERING:
        ranks = _rank_by_members(cus, profile)
        known = {member.signature for cu in cus for member in cu.members}
    else:
        raise OrderingError(
            f"unknown code-ordering kind {profile.kind!r}", kind=profile.kind
        )

    if strict:
        missing = [sig for sig in profile.signatures if sig not in known]
        if missing:
            raise OrderingError(
                f"{len(missing)} profile signature(s) resolve to no "
                f"compilation unit in this build (first: {missing[0]!r}); "
                "the profile is from a different build",
                kind=profile.kind,
                missing=missing,
            )

    matched = [cu for cu in cus if cu.name in ranks]
    unmatched = [cu for cu in cus if cu.name not in ranks]
    matched.sort(key=lambda cu: (ranks[cu.name], cu.name))
    unmatched.sort(key=lambda cu: cu.name)
    return matched + unmatched


def _rank_by_root(
    cus: List[CompilationUnit], profile: CodeOrderProfile
) -> Dict[str, int]:
    position = {signature: index for index, signature in enumerate(profile.signatures)}
    return {
        cu.name: position[cu.name] for cu in cus if cu.name in position
    }


def _rank_by_members(
    cus: List[CompilationUnit], profile: CodeOrderProfile
) -> Dict[str, int]:
    position = {signature: index for index, signature in enumerate(profile.signatures)}
    ranks: Dict[str, int] = {}
    for cu in cus:
        best = None
        for member in cu.members:
            rank = position.get(member.signature)
            if rank is not None and (best is None or rank < best):
                best = rank
        if best is not None:
            ranks[cu.name] = best
    return ranks


def ordering_stats(
    cus: List[CompilationUnit], profile: CodeOrderProfile
) -> Tuple[int, int]:
    """(matched, total) CU counts for a profile — diagnostic for reports."""
    ordered = order_compilation_units(cus, profile)
    if profile.kind in (CU_ORDERING, CU_OPT_ORDERING):
        ranks = _rank_by_root(cus, profile)
    else:
        ranks = _rank_by_members(cus, profile)
    del ordered
    return len(ranks), len(cus)
