"""High-level facade for the reproduction.

Typical use::

    from repro.api import NativeImageToolchain

    toolchain = NativeImageToolchain.from_source(MY_MINIJAVA_SOURCE)
    baseline = toolchain.build()                      # regular image
    report = toolchain.optimize_and_compare("cu+heap path")
    print(report)

or run whole paper experiments via :mod:`repro.eval.figures`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from .cache import ArtifactCache, CacheStats
from .obs import MetricsSnapshot, get_registry, get_tracer
from .eval.pipeline import (
    ALL_STRATEGY_SPECS,
    StrategySpec,
    Workload,
    WorkloadPipeline,
)
from .image.binary import NativeImageBinary
from .image.builder import BuildConfig
from .image.sections import HEAP_SECTION, TEXT_SECTION
from .robustness.degradation import DegradationPolicy, DegradationReport
from .runtime.executor import ExecutionConfig, RunMetrics
from .util.stats import ratio_factor
from .validation.invariants import LayoutVerificationReport, verify_layout
from .validation.oracle import (
    VerificationOutcome,
    VerificationPolicy,
    verify_strategy,
)
from .validation.quarantine import QuarantineRegistry
from .validation.watchdog import WatchdogBudget

STRATEGIES: Dict[str, StrategySpec] = {spec.name: spec for spec in ALL_STRATEGY_SPECS}


@dataclass
class ComparisonReport:
    """Baseline-vs-optimized outcome of one strategy on one workload.

    Factors follow the paper's convention (baseline / optimized, higher is
    better); time is end-to-end for run-to-completion workloads and
    time-to-first-response when the run recorded one (microservices).
    """

    workload: str
    strategy: str
    baseline: RunMetrics
    optimized: RunMetrics

    @property
    def text_fault_factor(self) -> float:
        """``.text`` page-fault reduction factor (1.0 = unchanged)."""
        return ratio_factor(self.baseline.text_faults, self.optimized.text_faults)

    @property
    def heap_fault_factor(self) -> float:
        """``.svm_heap`` page-fault reduction factor (1.0 = unchanged)."""
        return ratio_factor(self.baseline.heap_faults, self.optimized.heap_faults)

    @property
    def speedup(self) -> float:
        """Execution-time speedup factor (baseline time / optimized time)."""
        base = self.baseline.first_response_time_s or self.baseline.time_s
        opt = self.optimized.first_response_time_s or self.optimized.time_s
        return base / opt

    def __str__(self) -> str:
        return (
            f"[{self.workload} / {self.strategy}] "
            f".text faults {self.baseline.text_faults} -> "
            f"{self.optimized.text_faults} ({self.text_fault_factor:.2f}x), "
            f".svm_heap faults {self.baseline.heap_faults} -> "
            f"{self.optimized.heap_faults} ({self.heap_fault_factor:.2f}x), "
            f"speedup {self.speedup:.2f}x"
        )


class NativeImageToolchain:
    """One workload's end-to-end toolchain: build, profile, optimize, run.

    Pass ``degradation_policy`` (and optionally ``fault_hook``, e.g. a
    :class:`repro.robustness.FaultInjector`) to make the PGO workflow
    crash-tolerant: damaged traces are salvaged, profiling is retried, and
    builds fall back to the default layout instead of raising.  The
    resulting :class:`DegradationReport` is available as
    ``last_degradation_report``.

    Pass ``verification`` (a :class:`repro.validation.VerificationPolicy`)
    to arm the layout-verification rung: every optimized build is
    structurally checked, violations quarantine the ordering profile and
    roll back to the default layout, and :meth:`verify` runs the full
    oracle (invariants + differential execution + watchdogs).

    Pass ``cache`` (an :class:`repro.cache.ArtifactCache` or a directory
    path) to make every stage content-addressed: builds, profiling runs,
    and measurements whose inputs did not change are loaded from the cache
    instead of recomputed.  :attr:`cache_stats` reports the session's
    hit/miss accounting.
    """

    def __init__(
        self,
        workload: Workload,
        build_config: Optional[BuildConfig] = None,
        exec_config: Optional[ExecutionConfig] = None,
        degradation_policy: Optional[DegradationPolicy] = None,
        fault_hook: Optional[object] = None,
        verification: Optional[VerificationPolicy] = None,
        cache: Union[ArtifactCache, Path, str, None] = None,
    ) -> None:
        self.workload = workload
        if isinstance(cache, (str, Path)):
            cache = ArtifactCache(Path(cache))
        self._pipeline = WorkloadPipeline(
            workload, build_config, exec_config,
            degradation_policy=degradation_policy, fault_hook=fault_hook,
            verification=verification, cache=cache,
        )
        self._profiles = None

    @classmethod
    def from_source(
        cls,
        source: str,
        name: str = "app",
        microservice: bool = False,
        **kwargs,
    ) -> "NativeImageToolchain":
        """Build a toolchain directly from MiniJava source text."""
        workload = Workload(name=name, source=source, microservice=microservice)
        return cls(workload, **kwargs)

    @property
    def pipeline(self) -> WorkloadPipeline:
        return self._pipeline

    @property
    def last_degradation_report(self) -> Optional[DegradationReport]:
        """What (if anything) degraded during the last profile/build."""
        return self._pipeline.last_degradation_report

    @property
    def last_verification_report(self) -> Optional[LayoutVerificationReport]:
        """Structural report of the last optimized build (rung armed)."""
        return self._pipeline.last_verification_report

    @property
    def quarantine(self) -> QuarantineRegistry:
        """Ordering profiles convicted by the verification rung."""
        return self._pipeline.quarantine

    @property
    def cache(self) -> Optional[ArtifactCache]:
        """The armed artifact cache, or ``None`` when uncached."""
        return self._pipeline.cache

    @property
    def cache_stats(self) -> Optional[CacheStats]:
        """Hit/miss accounting of the armed cache (``None`` when uncached)."""
        return self._pipeline.cache.stats if self._pipeline.cache else None

    # -- observability -------------------------------------------------------

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Point-in-time copy of the process-wide metrics registry.

        Counters/gauges/histograms from every phase this process ran —
        not just this toolchain's workload.  The ``sweep.*`` plane (see
        :meth:`MetricsSnapshot.deterministic`) is only populated by
        scheduler sweeps.
        """
        return get_registry().snapshot()

    def export_trace(self, path: Union[Path, str]) -> Path:
        """Write the process-wide span trace as Chrome trace-event JSON.

        Load the file in ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        return get_tracer().export(path)

    def export_events(self, path: Union[Path, str]) -> Path:
        """Write the correlated JSONL event log (causal-id event stream).

        One JSON object per line: degradation notes, chaos injections,
        PGO epoch markers, phase completions — each carrying the
        run/phase/task ids that were in scope when it was emitted.
        """
        from .obs import get_event_log
        return get_event_log().export(path)

    def history(self, path: Union[Path, str, None] = None):
        """The bench history store (``BENCH_history.jsonl`` by default).

        Returns a :class:`repro.obs.BenchHistory` for listing, pruning,
        compacting, or trend-gating against the longitudinal record
        ``repro bench`` appends to.
        """
        from .obs.history import DEFAULT_HISTORY, BenchHistory
        return BenchHistory(path if path is not None else DEFAULT_HISTORY)

    def report(self, path: Union[Path, str, None] = None,
               html_path: Union[Path, str, None] = None) -> str:
        """Render the bench history trajectory (``repro report``).

        Returns the terminal summary; when ``html_path`` is given, also
        writes the self-contained HTML dashboard there.
        """
        from .obs.report import render_html, render_summary
        entries = self.history(path).entries()
        if html_path is not None:
            Path(html_path).write_text(render_html(entries))
        return render_summary(entries)

    def attribute(self, binary: NativeImageBinary, label: str = ""):
        """One observer-enabled cold run of ``binary``, fully attributed.

        Returns the :class:`repro.obs.StartupAttributionReport`: per-unit
        fault shares, page co-tenancy, the first-touch timeline, and the
        front-density curve.  The run happens with the fault observer on
        (and is never cached); all other runs stay observer-free.
        """
        from .eval.explain import attributed_run
        return attributed_run(self._pipeline, binary,
                              label or self.workload.name)

    def explain(self, strategy: str = "cu", seed: int = 0):
        """The layout regression explainer (``repro why``) for one strategy.

        Builds baseline + optimized images (cache-served when warm), runs
        each once with the fault observer, and returns the ranked
        :class:`repro.eval.explain.WhyReport` — which units gained/lost
        faults, moved across page boundaries, or changed co-tenancy.
        Raises :class:`KeyError` for unknown strategy names.
        """
        from .eval.explain import explain_strategy
        spec = STRATEGIES.get(strategy)
        if spec is None:
            raise KeyError(
                f"unknown strategy {strategy!r}; choose from {sorted(STRATEGIES)}"
            )
        return explain_strategy(self._pipeline, spec, seed=seed)

    def optimize(self, sections=("code", "heap"), seed: int = 0):
        """Run the search-based layout optimizer (``repro optimize``).

        Builds the co-access graph and cost model from this workload's
        profiles, searches CU / heap-group orders with the three
        optimizers (greedy chain merging, recursive bisection, seeded
        annealing), builds the winning ``cu-opt`` / ``heap-opt`` layouts
        through the cached pipeline, verifies them against the structural
        + differential oracle, and scores everything with the common
        simulated-fault oracle.  Tune budget/seed/window by constructing
        the pipeline with an :class:`repro.ordering.OptimizeConfig`.
        Returns the :class:`repro.ordering.OptimizationReport`;
        ``report.ok`` is the never-worse-than-seed invariant.
        """
        from .ordering.optimize import optimize_workload
        return optimize_workload(self._pipeline, sections=sections, seed=seed)

    # -- build & run ---------------------------------------------------------

    def build(self, seed: int = 0) -> NativeImageBinary:
        """Build (or cache-load) the regular baseline image for ``seed``."""
        return self._pipeline.build_baseline(seed=seed)

    def run(self, binary: NativeImageBinary, iterations: int = 1) -> List[RunMetrics]:
        """Cold-cache runs of a built image; one :class:`RunMetrics` each.

        With watchdog budgets armed on the verification policy, tripped
        runs yield empty metrics plus a degradation-report note instead of
        raising (see :meth:`WorkloadPipeline.measure`).
        """
        return self._pipeline.measure(binary, iterations)

    # -- PGO workflow -----------------------------------------------------------

    def profile(self, seed: int = 0):
        """Run the instrumented image and keep the resulting profiles.

        Returns the :class:`ProfilingOutcome`; raises the typed
        :class:`TraceDecodeError` on damaged traces unless a degradation
        policy is armed (then the traces are salvaged and the outcome
        annotated via ``last_degradation_report``).
        """
        outcome = self._pipeline.profile(seed=seed)
        self._profiles = outcome.profiles
        return outcome

    def build_optimized(
        self, strategy: str = "cu+heap path", seed: int = 0
    ) -> NativeImageBinary:
        """Build the profile-guided image with the named ordering strategy.

        Profiles from the last :meth:`profile` call are reused (one is run
        on demand otherwise).  Raises :class:`KeyError` for unknown
        strategy names and :class:`LayoutVerificationError` when even the
        rollback build fails structural verification.
        """
        spec = STRATEGIES.get(strategy)
        if spec is None:
            raise KeyError(
                f"unknown strategy {strategy!r}; choose from {sorted(STRATEGIES)}"
            )
        if self._profiles is None:
            self.profile(seed=seed)
        return self._pipeline.build_optimized(self._profiles, spec, seed=seed)

    # -- continuous PGO ----------------------------------------------------------

    def pgo_loop(
        self,
        strategy: str = "cu+heap path",
        thresholds: Optional[object] = None,
        canary: Optional[object] = None,
        seed: int = 0,
    ):
        """A :class:`repro.pgo.PgoLoop` bound to this workload's pipeline.

        The loop owns a versioned :class:`~repro.pgo.ProfileStore`; feed
        it weighted traffic mixes via ``bootstrap``/``observe`` and it
        detects profile drift, rebuilds through the cached pipeline, and
        only deploys candidates that pass the canary gate (structural +
        differential oracle + fault-regression check).  Convicted
        candidates land in :attr:`quarantine`.  Raises :class:`KeyError`
        for unknown strategy names.
        """
        from .pgo import PgoLoop
        spec = STRATEGIES.get(strategy)
        if spec is None:
            raise KeyError(
                f"unknown strategy {strategy!r}; choose from {sorted(STRATEGIES)}"
            )
        return PgoLoop(self._pipeline, spec, thresholds=thresholds,
                       canary=canary, seed=seed)

    def pgo_scenario(
        self,
        strategy: str = "cu+heap path",
        epochs: int = 3,
        seed: int = 7,
        drift_epoch: int = 1,
        inject_bad_epoch: Optional[int] = None,
        chaos: Optional[object] = None,
    ):
        """Drive a seeded multi-epoch drift scenario (``repro pgo``).

        Synthesizes traffic variants from this workload's real trace,
        shifts the mix at ``drift_epoch`` (the loop must auto-refresh),
        and optionally damages the candidate at ``inject_bad_epoch`` (the
        canary gate must quarantine it and roll back).  Returns the
        :class:`repro.pgo.ScenarioOutcome`; ``outcome.ok`` is the
        no-unguarded-regression invariant.
        """
        from .pgo import DriftScenario, run_scenario
        spec = STRATEGIES.get(strategy)
        if spec is None:
            raise KeyError(
                f"unknown strategy {strategy!r}; choose from {sorted(STRATEGIES)}"
            )
        scenario = DriftScenario(epochs=epochs, seed=seed,
                                 drift_epoch=drift_epoch,
                                 inject_bad_epoch=inject_bad_epoch)
        return run_scenario(self._pipeline, spec, scenario=scenario,
                            chaos=chaos)

    # -- verification -----------------------------------------------------------

    def verify(
        self,
        strategy: str = "cu+heap path",
        seed: int = 0,
        differential: bool = True,
        watchdog: Optional[WatchdogBudget] = None,
    ) -> VerificationOutcome:
        """Run the layout-verification oracle for one strategy.

        Structurally verifies baseline and optimized builds, mirrors any
        quarantine/rollback decision of the pipeline's verification rung,
        and (by default) differentially executes both binaries under the
        given watchdog budgets.
        """
        spec = STRATEGIES.get(strategy)
        if spec is None:
            raise KeyError(
                f"unknown strategy {strategy!r}; choose from {sorted(STRATEGIES)}"
            )
        return verify_strategy(self._pipeline, spec, seed=seed,
                               differential=differential, watchdog=watchdog)

    def verify_build(self, binary: NativeImageBinary) -> LayoutVerificationReport:
        """Structural invariant check of any built image."""
        return verify_layout(binary)

    def optimize_and_compare(
        self, strategy: str = "cu+heap path", seed: int = 0
    ) -> ComparisonReport:
        """One-shot: profile, optimize, and compare against the baseline.

        Raises :class:`KeyError` for unknown strategy names; measurement
        itself cannot fail (watchdog trips degrade to empty metrics).
        """
        baseline = self.build(seed=seed)
        optimized = self.build_optimized(strategy, seed=seed)
        return ComparisonReport(
            workload=self.workload.name,
            strategy=strategy,
            baseline=self.run(baseline)[0],
            optimized=self.run(optimized)[0],
        )


def compare_all_strategies(
    workload: Workload, seed: int = 0,
    cache: Union[ArtifactCache, Path, str, None] = None,
) -> Dict[str, ComparisonReport]:
    """Run every registered strategy on one workload.

    Covers the six paper strategies plus the search-based ``cu-opt`` /
    ``heap-opt`` optimizers.  One profiling run is shared across all of
    them; pass ``cache`` to also share builds and measurements with
    previous invocations.  Returns ``{strategy name: ComparisonReport}``
    in strategy-table order.
    """
    toolchain = NativeImageToolchain(workload, cache=cache)
    toolchain.profile(seed=seed)
    return {
        name: ComparisonReport(
            workload=workload.name,
            strategy=name,
            baseline=toolchain.run(toolchain.build(seed=seed))[0],
            optimized=toolchain.run(toolchain.build_optimized(name, seed=seed))[0],
        )
        for name in STRATEGIES
    }
