"""The layout regression explainer — ``repro why``.

The bench gate (PR 4) tells you *that* a layout regressed; this module
tells you *why*.  It diffs two :class:`StartupAttributionReport`s (usually
the baseline image vs an optimized one, or a before/after pair of the same
strategy) and emits a ranked report of the units — compilation units and
heap objects — responsible for the fault delta:

* units whose blamed fault share changed (gained/lost faults),
* units that moved across page boundaries between the two layouts,
* co-tenancy conflicts gained or lost (a unit newly sharing a faulted
  page with strangers is the classic false-sharing regression).

Ranking rule (documented in DESIGN.md Sec. 10): by absolute fault delta,
heaviest first; ties break towards units that moved, then by absolute
cost delta, then by name — so the top of the report is always the most
actionable blame.

Measurement runs here execute with ``fault_observer=True`` directly via
:func:`run_binary` rather than through the pipeline's cached ``measure``
path: the observer-enabled config has a different fingerprint, and these
one-off diagnosis runs should not grow a second copy of every metrics
artifact in the cache.  Builds and profiles still come from the pipeline,
so a warm cache serves them unchanged.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..obs.attrib import StartupAttributionReport, attribute
from ..runtime.executor import run_binary
from .pipeline import StrategySpec, WorkloadPipeline


@dataclass
class UnitDelta:
    """How one unit's startup blame changed between two layouts."""

    unit: str
    section: str
    baseline_faults: float
    current_faults: float
    baseline_cost: float
    current_cost: float
    #: the unit's layout page span changed between the two binaries
    moved: bool
    #: faulted pages blamed on the unit, per side
    baseline_pages: Tuple[int, ...] = ()
    current_pages: Tuple[int, ...] = ()
    #: co-tenants (on faulted pages) gained / lost by the change
    new_conflicts: Tuple[str, ...] = ()
    lost_conflicts: Tuple[str, ...] = ()

    @property
    def fault_delta(self) -> float:
        return self.current_faults - self.baseline_faults

    @property
    def cost_delta(self) -> float:
        return self.current_cost - self.baseline_cost

    def as_dict(self) -> Dict[str, object]:
        return {
            "unit": self.unit,
            "section": self.section,
            "baseline_faults": self.baseline_faults,
            "current_faults": self.current_faults,
            "fault_delta": self.fault_delta,
            "baseline_cost": self.baseline_cost,
            "current_cost": self.current_cost,
            "cost_delta": self.cost_delta,
            "moved": self.moved,
            "baseline_pages": list(self.baseline_pages),
            "current_pages": list(self.current_pages),
            "new_conflicts": list(self.new_conflicts),
            "lost_conflicts": list(self.lost_conflicts),
        }


CSV_COLUMNS = [
    "section", "unit", "baseline_faults", "current_faults", "fault_delta",
    "baseline_cost", "current_cost", "cost_delta", "moved",
    "baseline_pages", "current_pages", "new_conflicts", "lost_conflicts",
]


@dataclass
class WhyReport:
    """Ranked explanation of the fault delta between two layouts."""

    workload: str
    strategy: str
    baseline: StartupAttributionReport
    current: StartupAttributionReport
    #: every unit whose blame, position, or conflicts changed, ranked
    ranked: List[UnitDelta] = field(default_factory=list)

    @property
    def fault_delta(self) -> int:
        return self.current.total_faults - self.baseline.total_faults

    @property
    def cost_delta(self) -> float:
        return self.current.total_cost - self.baseline.total_cost

    @property
    def moved_units(self) -> List[str]:
        return [delta.unit for delta in self.ranked if delta.moved]

    def top_blamed(self, count: int = 3) -> List[str]:
        """The heaviest-ranked unit names (the bench gate's diagnosis line)."""
        return [delta.unit for delta in self.ranked[:count]]

    def section_summary(self) -> Dict[str, Dict[str, float]]:
        names = sorted(set(self.baseline.sections) | set(self.current.sections))
        summary: Dict[str, Dict[str, float]] = {}
        for name in names:
            base = self.baseline.sections.get(name)
            cur = self.current.sections.get(name)
            base_faults = base.fault_count if base else 0
            cur_faults = cur.fault_count if cur else 0
            summary[name] = {
                "baseline_faults": base_faults,
                "current_faults": cur_faults,
                "fault_delta": cur_faults - base_faults,
                "baseline_cost": base.total_cost if base else 0.0,
                "current_cost": cur.total_cost if cur else 0.0,
            }
        return summary

    def render(self, top: int = 10) -> str:
        """Human-readable report, heaviest blame first."""
        lines = [
            f"why: {self.workload} — {self.baseline.label} vs {self.current.label}",
            f"  faults {self.baseline.total_faults} -> {self.current.total_faults} "
            f"({self.fault_delta:+d}), cost "
            f"{self.baseline.total_cost * 1e3:.3f} -> "
            f"{self.current.total_cost * 1e3:.3f} ms",
        ]
        for name, row in self.section_summary().items():
            lines.append(
                f"  {name}: {row['baseline_faults']:.0f} -> "
                f"{row['current_faults']:.0f} faults "
                f"({row['fault_delta']:+.0f})"
            )
        if not self.ranked:
            lines.append("  no unit-level changes: layouts blame identically")
            return "\n".join(lines)
        lines.append(f"  top {min(top, len(self.ranked))} of "
                     f"{len(self.ranked)} changed units:")
        for delta in self.ranked[:top]:
            notes = []
            if delta.moved:
                notes.append("moved")
            if delta.new_conflicts:
                shown = ", ".join(delta.new_conflicts[:3])
                if len(delta.new_conflicts) > 3:
                    shown += ", ..."
                notes.append(f"new co-tenants: {shown}")
            if delta.lost_conflicts and not delta.new_conflicts:
                notes.append(f"lost {len(delta.lost_conflicts)} co-tenant(s)")
            suffix = f"  [{'; '.join(notes)}]" if notes else ""
            lines.append(
                f"    {delta.fault_delta:+7.2f} faults  {delta.section:9s} "
                f"{delta.unit}{suffix}"
            )
        return "\n".join(lines)

    def as_dict(self, top: Optional[int] = None) -> Dict[str, object]:
        """JSON-ready view (the ``repro why --json`` schema)."""
        ranked = self.ranked if top is None else self.ranked[:top]
        return {
            "workload": self.workload,
            "strategy": self.strategy,
            "baseline_label": self.baseline.label,
            "current_label": self.current.label,
            "fault_delta": self.fault_delta,
            "cost_delta": self.cost_delta,
            "sections": self.section_summary(),
            "moved_units": self.moved_units,
            "top_blamed": self.top_blamed(),
            "ranked": [delta.as_dict() for delta in ranked],
        }

    def to_json(self, top: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(top=top), indent=2, sort_keys=True)

    def to_csv(self, path: Union[Path, str]) -> Path:
        """Export the full per-unit delta table as CSV."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(CSV_COLUMNS)
            for delta in self.ranked:
                row = delta.as_dict()
                writer.writerow([
                    row["section"], row["unit"],
                    row["baseline_faults"], row["current_faults"],
                    row["fault_delta"],
                    row["baseline_cost"], row["current_cost"],
                    row["cost_delta"], row["moved"],
                    " ".join(str(p) for p in row["baseline_pages"]),
                    " ".join(str(p) for p in row["current_pages"]),
                    " ".join(row["new_conflicts"]),
                    " ".join(row["lost_conflicts"]),
                ])
        return path


def _rank_key(delta: UnitDelta) -> Tuple:
    return (-abs(delta.fault_delta), not delta.moved,
            -abs(delta.cost_delta), delta.unit)


def explain_reports(
    baseline: StartupAttributionReport,
    current: StartupAttributionReport,
    workload: str = "",
    strategy: str = "",
) -> WhyReport:
    """Diff two attribution reports into a ranked :class:`WhyReport`.

    A unit enters the ranking when any of its blame signals changed:
    fault share, faulted pages, layout span (moved), or co-tenancy on
    faulted pages.  Unchanged units are omitted — a report with an empty
    ``ranked`` list means the layouts blame identically.
    """
    deltas: List[UnitDelta] = []
    sections = sorted(set(baseline.sections) | set(current.sections))
    for name in sections:
        base = baseline.sections.get(name)
        cur = current.sections.get(name)
        base_units = {blame.unit: blame for blame in (base.units if base else [])}
        cur_units = {blame.unit: blame for blame in (cur.units if cur else [])}
        base_cot = base.cotenancy() if base else {}
        cur_cot = cur.cotenancy() if cur else {}
        base_spans = base.unit_pages if base else {}
        cur_spans = cur.unit_pages if cur else {}
        for unit in sorted(set(base_units) | set(cur_units)):
            old = base_units.get(unit)
            new = cur_units.get(unit)
            old_span = base_spans.get(unit)
            new_span = cur_spans.get(unit)
            moved = (
                old_span is not None and new_span is not None
                and old_span != new_span
            )
            old_conflicts = set(base_cot.get(unit, ()))
            new_conflicts = set(cur_cot.get(unit, ()))
            delta = UnitDelta(
                unit=unit,
                section=name,
                baseline_faults=old.faults if old else 0.0,
                current_faults=new.faults if new else 0.0,
                baseline_cost=old.cost if old else 0.0,
                current_cost=new.cost if new else 0.0,
                moved=moved,
                baseline_pages=old.pages if old else (),
                current_pages=new.pages if new else (),
                new_conflicts=tuple(sorted(new_conflicts - old_conflicts)),
                lost_conflicts=tuple(sorted(old_conflicts - new_conflicts)),
            )
            changed = (
                delta.fault_delta != 0
                or delta.moved
                or delta.new_conflicts
                or delta.lost_conflicts
                or delta.baseline_pages != delta.current_pages
            )
            if changed:
                deltas.append(delta)
    deltas.sort(key=_rank_key)
    return WhyReport(
        workload=workload,
        strategy=strategy,
        baseline=baseline,
        current=current,
        ranked=deltas,
    )


def attributed_run(
    pipeline: WorkloadPipeline, binary, label: str
) -> StartupAttributionReport:
    """One observer-enabled cold run of ``binary``, attributed.

    Uses the pipeline's exec config with ``fault_observer=True`` (so
    microservice runs still stop at first response), bypassing the metrics
    cache on purpose — see the module docstring.
    """
    config = replace(pipeline.exec_config, fault_observer=True)
    metrics = run_binary(binary, config)
    return attribute(binary, metrics.fault_events, label=label)


def explain_strategy(
    pipeline: WorkloadPipeline,
    strategy: StrategySpec,
    seed: int = 0,
) -> WhyReport:
    """End-to-end ``repro why``: baseline vs one strategy's optimized image.

    Builds (or cache-loads) both images and the shared profiles through
    the pipeline, runs each once with the fault observer enabled, and
    returns the ranked diff.  Deterministic for a fixed (workload,
    strategy, seed) — the acceptance bar for serial-vs-parallel identity.
    """
    name = pipeline.workload.name
    baseline_binary = pipeline.build_baseline(seed=seed)
    outcome = pipeline.profile(seed=seed)
    optimized_binary = pipeline.build_optimized(
        outcome.profiles, strategy, seed=seed
    )
    baseline_report = attributed_run(
        pipeline, baseline_binary, label=f"{name}/baseline"
    )
    current_report = attributed_run(
        pipeline, optimized_binary, label=f"{name}/{strategy.name}"
    )
    return explain_reports(
        baseline_report, current_report,
        workload=name, strategy=strategy.name,
    )


def explain_strategies(
    pipeline: WorkloadPipeline,
    baseline_spec: StrategySpec,
    current_spec: StrategySpec,
    seed: int = 0,
) -> WhyReport:
    """``repro why --baseline-strategy``: one optimized layout vs another.

    Same machinery as :func:`explain_strategy`, but both sides are
    profile-guided builds — the canonical use is explaining *where* a
    search-based layout (``cu-opt`` / ``heap-opt``) beats its paper seed
    strategy, per CU and heap unit: which units moved, which pages
    stopped faulting, and which co-tenancies the search created.  One
    shared profiling run feeds both builds, so the diff isolates the
    ordering decision itself.
    """
    name = pipeline.workload.name
    outcome = pipeline.profile(seed=seed)
    baseline_binary = pipeline.build_optimized(
        outcome.profiles, baseline_spec, seed=seed
    )
    current_binary = pipeline.build_optimized(
        outcome.profiles, current_spec, seed=seed
    )
    baseline_report = attributed_run(
        pipeline, baseline_binary, label=f"{name}/{baseline_spec.name}"
    )
    current_report = attributed_run(
        pipeline, current_binary, label=f"{name}/{current_spec.name}"
    )
    return explain_reports(
        baseline_report, current_report,
        workload=name, strategy=current_spec.name,
    )
