"""Chaos sweeps: run the matrix under fault injection, prove identity.

This is the harness behind ``repro chaos``, the bench chaos phase, and the
CI chaos-smoke job.  It runs the workload × strategy matrix twice:

1. a **fault-free serial reference** (unless the caller already has one —
   the bench reuses its cold-cache phase) in its own scratch cache, and
2. the **chaos sweep**: the parallel scheduler with a
   :class:`~repro.robustness.chaos.ChaosPolicy` armed, a
   :class:`~repro.eval.scheduler.RetryPolicy` to recover, and a per-task
   deadline to catch injected hangs,

then checks the headline invariant: every cell that *survives* the chaos
sweep must be byte-identical (canonical JSON) to the fault-free reference.
Faults may cost wall-clock or quarantine poison cells; they must never
silently change a result.  The outcome bundles the sweep, the identity
verdict, and the :class:`~repro.eval.scheduler.SweepHealthReport` into one
JSON-able report.
"""

from __future__ import annotations

import json
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..obs import get_tracer
from ..robustness.chaos import ChaosPolicy
from .pipeline import ALL_STRATEGY_SPECS, StrategySpec, Workload
from .scheduler import (
    RetryPolicy,
    SchedulerConfig,
    SweepResult,
    SweepScheduler,
)


def _canonical_key(cell: Dict[str, Any]) -> str:
    return f"{cell['workload']}/{cell['strategy']}"


def _canonical_json(cell: Dict[str, Any]) -> str:
    return json.dumps(cell, sort_keys=True, separators=(",", ":"))


@dataclass
class ChaosOutcome:
    """One chaos sweep, its reference, and the identity verdict."""

    policy: ChaosPolicy
    sweep: SweepResult
    #: canonical cells of the fault-free reference, keyed workload/strategy
    reference: Dict[str, str] = field(default_factory=dict)
    #: wall-clock of the reference run (0 when the caller precomputed it)
    reference_wall_s: float = 0.0
    #: surviving cells whose canonical result diverged from the reference
    divergent: List[str] = field(default_factory=list)
    #: surviving cells with no reference cell to compare against
    unmatched: List[str] = field(default_factory=list)
    #: surviving cells checked and found byte-identical
    checked: int = 0

    @property
    def surviving(self) -> List[str]:
        return [f"{t.workload}/{t.strategy}"
                for t in self.sweep.tasks if t.ok]

    @property
    def failed(self) -> List[str]:
        return [f"{t.workload}/{t.strategy}: {t.error}"
                for t in self.sweep.tasks if not t.ok]

    @property
    def quarantined(self) -> List[str]:
        return [f"{e.workload}/{e.strategy}"
                for e in self.sweep.quarantine.entries.values()]

    @property
    def identity_ok(self) -> bool:
        return not self.divergent and not self.unmatched

    @property
    def ok(self) -> bool:
        """Fully healthy: every cell survived and matched the reference."""
        return (self.identity_ok and not self.failed
                and not self.quarantined)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "policy": {
                "seed": self.policy.seed,
                "rate": self.policy.rate,
                "classes": list(self.policy.classes),
                "persistent": self.policy.persistent,
            },
            "cells": len(self.sweep.tasks),
            "surviving": len(self.surviving),
            "failed": self.failed,
            "quarantined": self.quarantined,
            "identity": {
                "ok": self.identity_ok,
                "checked": self.checked,
                "divergent": self.divergent,
                "unmatched": self.unmatched,
            },
            "health": self.sweep.health.as_dict(),
            "wall_s": round(self.sweep.wall_s, 6),
            "reference_wall_s": round(self.reference_wall_s, 6),
            "ok": self.ok,
        }

    def describe(self) -> str:
        lines = [
            f"chaos sweep [{self.policy.describe()}]: "
            f"{len(self.surviving)}/{len(self.sweep.tasks)} cell(s) "
            f"survived in {self.sweep.wall_s:.2f}s",
            ("identity: OK — every surviving result byte-identical to the "
             f"fault-free serial reference ({self.checked} checked)")
            if self.identity_ok else
            (f"identity: FAILED — {len(self.divergent)} divergent, "
             f"{len(self.unmatched)} unmatched"),
        ]
        for cell in self.divergent:
            lines.append(f"  DIVERGENT {cell}")
        for cell in self.quarantined:
            lines.append(f"  quarantined: {cell}")
        lines.append(self.sweep.health.describe())
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def check_identity(outcome: ChaosOutcome) -> None:
    """Compare every surviving cell against the reference (in place)."""
    outcome.divergent = []
    outcome.unmatched = []
    outcome.checked = 0
    for cell in outcome.sweep.canonical():
        if cell["error"] is not None:
            continue  # failed/poisoned cells are reported, not compared
        key = _canonical_key(cell)
        expected = outcome.reference.get(key)
        if expected is None:
            outcome.unmatched.append(key)
        elif _canonical_json(cell) != expected:
            outcome.divergent.append(key)
        else:
            outcome.checked += 1


def run_chaos(
    workloads: Iterable[Workload],
    strategies: Sequence[StrategySpec] = ALL_STRATEGY_SPECS,
    policy: Optional[ChaosPolicy] = None,
    config: Optional[SchedulerConfig] = None,
    retry: Optional[RetryPolicy] = None,
    reference_canonical: Optional[List[Dict[str, Any]]] = None,
    parallel: bool = True,
) -> ChaosOutcome:
    """Run the matrix under ``policy`` and verify the identity invariant.

    ``config`` is the *base* scheduler configuration; the chaos sweep runs
    with ``policy`` and ``retry`` (default :class:`RetryPolicy`) armed on
    top of it.  The fault-free serial reference runs in a scratch cache
    directory so injected cache damage cannot leak between the two runs —
    unless ``reference_canonical`` is supplied (e.g. the bench's cold
    phase), in which case no reference sweep runs at all.
    """
    workloads = list(workloads)
    policy = policy or ChaosPolicy()
    config = config or SchedulerConfig()
    chaos_config = replace(config, chaos=policy,
                           retry=retry or config.retry or RetryPolicy())

    outcome_reference: Dict[str, str] = {}
    reference_wall = 0.0
    if reference_canonical is None:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-ref-") as scratch:
            ref_config = replace(config, chaos=None, retry=None,
                                 cache_dir=scratch, max_workers=1)
            start = time.perf_counter()
            with get_tracer().span("chaos.reference", cat="chaos",
                                   cells=len(workloads) * len(strategies)):
                ref = SweepScheduler(ref_config).run(workloads, strategies,
                                                     parallel=False)
            reference_wall = time.perf_counter() - start
            reference_canonical = ref.canonical()
    for cell in reference_canonical:
        outcome_reference[_canonical_key(cell)] = _canonical_json(cell)

    with get_tracer().span("chaos.sweep", cat="chaos",
                           seed=policy.seed, rate=policy.rate):
        sweep = SweepScheduler(chaos_config).run(workloads, strategies,
                                                 parallel=parallel)
    outcome = ChaosOutcome(policy=policy, sweep=sweep,
                           reference=outcome_reference,
                           reference_wall_s=reference_wall)
    check_identity(outcome)
    return outcome
