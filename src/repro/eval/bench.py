"""Benchmark harness for the evaluation pipeline itself.

Not a paper experiment: this measures *the reproduction's own* evaluation
machinery — how much wall-clock the parallel scheduler and the
content-addressed artifact cache save over the naive serial sweep.  Three
phases run the identical workload × strategy matrix:

``serial``
    The legacy path: a fresh uncached :class:`WorkloadPipeline` per matrix
    cell, exactly what ``repro compare`` in a shell loop would cost.
``cold``
    The :class:`SweepScheduler` against an empty cache — artifact sharing
    (one compile/baseline/profile per workload) plus process fan-out.
``warm``
    The scheduler again over the now-populated cache — every artifact
    should load instead of rebuild (100% hit rate).

Because the simulated toolchain is deterministic and per-task seeds are
content-derived, all three phases must agree on every metric; the harness
checks that and reports any divergence as a benchmark failure.  Results are
written to ``BENCH_pipeline.json`` (schema below) for CI trend tracking.

A fourth, optional phase (``attribution``, on by default) runs the startup
attribution profiler (:mod:`repro.eval.explain`) on one AWFY workload and
one microservice of the matrix against the warm cache: observer-enabled
runs are the only extra cost, and the payload records what turning the
hook on adds over observer-off runs of the same binaries as
``attribution.overhead_vs_cold`` (``observer_overhead_s`` relative to the
cold phase) — asserted under :data:`MAX_ATTRIBUTION_OVERHEAD` by
``--check``, keeping the observer's price honest.  Its per-workload top-blamed units also feed the regression
gate: when ``--baseline`` fails, the gate names the symbols most
responsible for the current layout's faults instead of just the numbers.

A sixth, optional phase (``pgo``, on by default) drives the continuous-PGO
loop (:mod:`repro.pgo`) through a seeded drift scenario against the warm
cache: synthetic traffic shifts away from the deployed profile (the loop
must auto-refresh and strictly cut replayed first-touch faults), and the
last epoch's re-layout candidate is deliberately damaged (the canary gate
must quarantine it and roll back).  ``--check`` asserts all three: at
least one genuine refresh with a strict fault reduction, the injected-bad
candidate rolled back into quarantine, and zero unguarded regressions at
any epoch.

A seventh, optional phase (``optimize``, on by default) runs the
search-based layout optimizer (:mod:`repro.ordering.optimize`) on every
workload of the matrix against the warm cache: the three optimizers
(greedy chain merging, recursive bisection, seeded annealing) search CU /
heap-group orders, the winning ``cu-opt`` / ``heap-opt`` layouts are
built through the cached pipeline and verified (structural +
differential), and the payload records optimizer-vs-seed simulated
first-touch fault counts per section.  ``--check`` asserts the
never-worse invariant — no optimizer layout loses to its seed strategy —
and that every built candidate passed verification.

A fifth, optional phase (``chaos``, on by default) reruns the identical
matrix through the scheduler with a recoverable
:class:`~repro.robustness.chaos.ChaosPolicy` armed against a fresh cache
(see :mod:`repro.eval.chaosrun`): every injected fault must be recovered
by retry/respawn/heal, and every surviving canonical result must be
byte-identical to the cold phase — the chaos sweep reuses the cold phase's
results as its fault-free reference.  The payload records the fault
schedule, the :class:`~repro.eval.scheduler.SweepHealthReport`, and the
recovery overhead relative to cold; ``--check`` gates the identity
invariant and requires zero quarantined or failed cells.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cache import ArtifactCache
from ..cache.keys import TOOLCHAIN_VERSION
from ..obs.history import DEFAULT_HISTORY, BenchHistory, make_entry, matrix_hash
from ..util.stats import MAD_SIGMA, cusum_alarm, mad, median
from ..workloads.awfy.suite import AWFY_NAMES, awfy_suite
from ..workloads.microservices.suite import MICROSERVICE_NAMES, microservice_suite
from .pipeline import ALL_STRATEGY_SPECS, StrategySpec, Workload, WorkloadPipeline
from .scheduler import (
    STRATEGY_BY_NAME,
    SchedulerConfig,
    SweepResult,
    SweepScheduler,
    run_task,
    task_seed,
)

BENCH_SCHEMA = 1
DEFAULT_OUTPUT = "BENCH_pipeline.json"

#: the ``--quick`` matrix: small-but-representative (two AWFY benchmarks
#: plus one microservice, one code and one heap strategy)
QUICK_WORKLOADS: Tuple[str, ...] = ("Bounce", "Queens", "quarkus")
QUICK_STRATEGIES: Tuple[str, ...] = ("cu", "heap path")


@dataclass(frozen=True)
class BenchConfig:
    """What to benchmark and how.

    Empty ``workloads``/``strategies`` mean the full registered matrix
    (14 AWFY + 3 microservices × all eight strategies: six paper + the
    ``cu-opt``/``heap-opt`` optimizers).
    """

    workloads: Tuple[str, ...] = ()
    strategies: Tuple[str, ...] = ()
    iterations: int = 1
    base_seed: int = 1
    #: worker processes for the cold/warm phases; 0 = one per core
    max_workers: int = 0
    cache_dir: Optional[str] = None
    output: str = DEFAULT_OUTPUT
    #: skip the serial reference phase (it dominates runtime on big matrices)
    skip_serial: bool = False
    #: run the attribution phase (observer-enabled runs + blame report)
    attribution: bool = True
    #: run the chaos phase (fault-injected sweep + identity check)
    chaos: bool = True
    #: per-cell fault probability of the chaos phase
    chaos_rate: float = 0.2
    #: chaos schedule seed (fixed so the bench replays the same faults;
    #: chosen so both the ``--quick`` and the full matrix get injections)
    chaos_seed: int = 11
    #: run the pgo phase (continuous-PGO drift scenario + canary gate)
    pgo: bool = True
    #: traffic epochs of the pgo drift scenario
    pgo_epochs: int = 3
    #: pgo scenario seed (traffic synthesis, mix schedule, builds)
    pgo_seed: int = 7
    #: run the optimize phase (search-based layout optimizer vs seeds)
    optimize: bool = True
    #: annealing cost evaluations per section in the optimize phase
    #: (smaller than the :class:`~repro.ordering.OptimizeConfig` default:
    #: the bench runs every matrix workload)
    optimize_budget: int = 200
    #: search RNG seed of the optimize phase
    optimize_seed: int = 13
    #: history store successful runs append to (``--no-history`` opts out)
    history: str = DEFAULT_HISTORY
    #: append a history entry after a successful run
    write_history: bool = True
    #: gate the run against the history trend (``--trend``)
    trend: bool = False
    #: history entries the trend gate compares against
    trend_window: int = 10

    @classmethod
    def quick(cls, **overrides: Any) -> "BenchConfig":
        """The CI smoke matrix (3 workloads × 2 strategies)."""
        overrides.setdefault("workloads", QUICK_WORKLOADS)
        overrides.setdefault("strategies", QUICK_STRATEGIES)
        return cls(**overrides)


def resolve_matrix(config: BenchConfig) -> Tuple[List[Workload], List[StrategySpec]]:
    """Materialize the workload and strategy lists a config names.

    Raises :class:`KeyError` for unknown workload or strategy names so a
    typo fails before any benchmarking starts.
    """
    suite: Dict[str, Workload] = dict(awfy_suite())
    suite.update(microservice_suite())
    names = list(config.workloads) or AWFY_NAMES + MICROSERVICE_NAMES
    unknown = [n for n in names if n not in suite]
    if unknown:
        raise KeyError(f"unknown workload(s) {unknown}; choose from {sorted(suite)}")
    strategy_names = list(config.strategies) or [s.name for s in ALL_STRATEGY_SPECS]
    unknown = [n for n in strategy_names if n not in STRATEGY_BY_NAME]
    if unknown:
        raise KeyError(
            f"unknown strateg(ies) {unknown}; choose from {sorted(STRATEGY_BY_NAME)}"
        )
    return ([suite[n] for n in names],
            [STRATEGY_BY_NAME[n] for n in strategy_names])


def _scheduler_config(config: BenchConfig, cache_dir: Optional[str],
                      max_workers: int) -> SchedulerConfig:
    return SchedulerConfig(
        cache_dir=cache_dir,
        max_workers=max_workers,
        iterations=config.iterations,
        base_seed=config.base_seed,
    )


def _phase_dict(sweep: SweepResult) -> Dict[str, Any]:
    return {
        "wall_s": round(sweep.wall_s, 4),
        "tasks": len(sweep.tasks),
        "workers": sweep.workers,
        "ok": sweep.ok,
        "total_ops": sweep.total_ops,
        "cache_hits": sweep.cache_hits,
        "cache_misses": sweep.cache_misses,
        "cache_hit_rate": round(sweep.cache_hit_rate, 4),
    }


def _run_serial_legacy(workloads: Sequence[Workload],
                       strategies: Sequence[StrategySpec],
                       config: BenchConfig) -> SweepResult:
    """The reference cost: fresh uncached pipeline per matrix cell.

    Implemented via :func:`run_task` on single-cell scheduler configs so
    the metrics are extracted identically to the scheduler phases — but a
    brand-new :class:`WorkloadPipeline` (new compile, new baseline build,
    new profiling run) is forced for every cell, matching what N separate
    ``repro compare`` invocations would pay.
    """
    from . import scheduler as _sched

    results = []
    start = time.perf_counter()
    for workload in workloads:
        for spec in strategies:
            _sched.reset_worker_state()  # force the from-scratch path
            task = _sched.EvalTask(
                workload=workload,
                strategy_name=spec.name,
                seed=task_seed(config.base_seed, workload.name),
                iterations=config.iterations,
            )
            results.append(run_task(task, _scheduler_config(config, None, 1)))
    _sched.reset_worker_state()
    return SweepResult(tasks=results, wall_s=time.perf_counter() - start,
                       workers=1)


#: ceiling on the attribution phase's cost relative to the cold sweep;
#: the fault observer is supposed to be cheap, and ``--check`` holds it to it
MAX_ATTRIBUTION_OVERHEAD = 0.10

#: top blamed units recorded per workload (the regression-gate diagnosis)
ATTRIBUTION_TOP = 3


def _attribution_picks(workloads: Sequence[Workload]) -> List[Workload]:
    """One AWFY workload and one microservice (whichever the matrix has)."""
    picks: List[Workload] = []
    for micro in (False, True):
        for workload in workloads:
            if workload.microservice == micro:
                picks.append(workload)
                break
    return picks


def _attribution_phase(workloads: Sequence[Workload],
                       strategies: Sequence[StrategySpec],
                       config: BenchConfig,
                       cache_dir: str) -> Dict[str, Any]:
    """Observer-enabled ``repro why`` runs against the warm cache.

    Builds and profiles are warm-cache hits; the new work is one
    observer-enabled cold run per binary.  ``runs_wall_s`` times exactly
    those runs; ``plain_wall_s`` times the same runs with the observer
    off, so ``observer_overhead_s`` isolates what turning the hook on
    costs — the quantity the ``overhead_vs_cold`` budget polices.
    ``wall_s`` is the whole phase including cache loads and the diff.
    """
    from ..runtime.executor import run_binary
    from .explain import attributed_run, explain_reports

    spec = next((s for s in strategies if s.name == "cu"), strategies[0])
    entries: Dict[str, Any] = {}
    runs_wall = 0.0
    plain_wall = 0.0
    start = time.perf_counter()
    for workload in _attribution_picks(workloads):
        pipeline = WorkloadPipeline(
            workload, cache=ArtifactCache(Path(cache_dir))
        )
        seed = task_seed(config.base_seed, workload.name)
        baseline_binary = pipeline.build_baseline(seed=seed)
        outcome = pipeline.profile(seed=seed)
        optimized_binary = pipeline.build_optimized(
            outcome.profiles, spec, seed=seed
        )
        tick = time.perf_counter()
        for binary in (baseline_binary, optimized_binary):
            run_binary(binary, pipeline.exec_config)
        plain_wall += time.perf_counter() - tick
        tick = time.perf_counter()
        baseline_report = attributed_run(
            pipeline, baseline_binary, label=f"{workload.name}/baseline"
        )
        current_report = attributed_run(
            pipeline, optimized_binary, label=f"{workload.name}/{spec.name}"
        )
        runs_wall += time.perf_counter() - tick
        why = explain_reports(
            baseline_report, current_report,
            workload=workload.name, strategy=spec.name,
        )
        entries[workload.name] = {
            "top_blamed": why.top_blamed(ATTRIBUTION_TOP),
            "moved_units": len(why.moved_units),
            "changed_units": len(why.ranked),
            "fault_delta": why.fault_delta,
            "events": len(why.current.timeline),
        }
    return {
        "strategy": spec.name,
        "wall_s": round(time.perf_counter() - start, 4),
        "runs_wall_s": round(runs_wall, 4),
        "plain_wall_s": round(plain_wall, 4),
        "observer_overhead_s": round(max(runs_wall - plain_wall, 0.0), 4),
        "workloads": entries,
    }


def _pgo_phase(workloads: Sequence[Workload],
               strategies: Sequence[StrategySpec],
               config: BenchConfig,
               cache_dir: str) -> Dict[str, Any]:
    """The continuous-PGO drift scenario against the warm cache.

    One workload (``Queens`` when the matrix has it — its traced hot set
    is small enough that drift visibly moves fault counts) drives a
    :func:`repro.pgo.run_scenario` with the last epoch's candidate
    deliberately damaged: the payload records every refresh's stale-vs-
    candidate expected faults and what the canary gate quarantined, the
    quantities ``--check`` gates on.
    """
    from ..pgo import ACTION_REFRESH, DriftScenario, run_scenario

    workload = next((w for w in workloads if w.name == "Queens"),
                    workloads[0])
    spec = next((s for s in strategies if s.name == "cu+heap path"),
                strategies[0])
    scenario = DriftScenario(epochs=config.pgo_epochs, seed=config.pgo_seed,
                             inject_bad_epoch=max(config.pgo_epochs - 1, 1))
    start = time.perf_counter()
    pipeline = WorkloadPipeline(workload,
                                cache=ArtifactCache(Path(cache_dir)))
    outcome = run_scenario(pipeline, spec, scenario=scenario)
    refresh_detail = [
        {
            "epoch": epoch.epoch,
            "stale_faults": epoch.deployed_faults_before,
            "candidate_faults": epoch.candidate_faults,
        }
        for epoch in outcome.epochs if epoch.action == ACTION_REFRESH
    ]
    return {
        "workload": workload.name,
        "strategy": spec.name,
        "seed": config.pgo_seed,
        "epochs": len(outcome.epochs),
        "inject_bad_epoch": scenario.inject_bad_epoch,
        "wall_s": round(time.perf_counter() - start, 4),
        "refreshes": outcome.refreshes,
        "rollbacks": outcome.rollbacks,
        "retained": outcome.retained,
        "refresh_detail": refresh_detail,
        "quarantined": list(outcome.quarantined),
        "unguarded_regressions": outcome.unguarded_regressions,
        "ok": outcome.ok,
    }


def _optimize_phase(workloads: Sequence[Workload],
                    config: BenchConfig,
                    cache_dir: str) -> Dict[str, Any]:
    """The search-based layout optimizer on every workload, warm cache.

    Seed-strategy and optimizer builds are warm-cache hits from the
    cold/warm phases (same per-task seeds); the new work is the search
    itself plus verification of the winning layouts.  Fault counts come
    from :func:`repro.ordering.optimize.simulated_faults` on the built
    binaries — one oracle for seeds and optimizers, so the recorded
    never-worse verdicts are apples-to-apples.
    """
    from ..ordering.optimize import OptimizeConfig, optimize_workload

    search = OptimizeConfig(budget=config.optimize_budget,
                            seed=config.optimize_seed)
    entries: Dict[str, Any] = {}
    improved = 0
    sections_total = 0
    start = time.perf_counter()
    for workload in workloads:
        pipeline = WorkloadPipeline(
            workload, cache=ArtifactCache(Path(cache_dir)),
            optimize_config=search,
        )
        report = optimize_workload(
            pipeline, seed=task_seed(config.base_seed, workload.name)
        )
        entries[workload.name] = {
            "ok": report.ok,
            "sections": [section.as_dict() for section in report.sections],
        }
        for section in report.sections:
            if not section.skipped:
                sections_total += 1
                improved += bool(section.improved)
    return {
        "budget": config.optimize_budget,
        "search_seed": config.optimize_seed,
        "wall_s": round(time.perf_counter() - start, 4),
        "workloads": entries,
        "sections": sections_total,
        "improved_sections": improved,
        "ok": all(entry["ok"] for entry in entries.values()),
    }


def run_bench(config: BenchConfig,
              log=lambda message: None) -> Dict[str, Any]:
    """Run all phases and return the ``BENCH_pipeline.json`` payload."""
    workloads, strategies = resolve_matrix(config)
    cells = len(workloads) * len(strategies)
    payload: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "toolchain": TOOLCHAIN_VERSION,
        "config": {
            "workloads": [w.name for w in workloads],
            "strategies": [s.name for s in strategies],
            "iterations": config.iterations,
            "base_seed": config.base_seed,
            "max_workers": config.max_workers,
            "cells": cells,
        },
        "phases": {},
    }

    serial: Optional[SweepResult] = None
    if not config.skip_serial:
        log(f"phase serial: {cells} cells, fresh uncached pipeline each")
        serial = _run_serial_legacy(workloads, strategies, config)
        payload["phases"]["serial"] = _phase_dict(serial)
        log(f"  {serial.wall_s:.2f}s")

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as scratch:
        cache_dir = config.cache_dir or str(Path(scratch) / "cache")
        ArtifactCache(Path(cache_dir)).clear()  # cold means cold

        log(f"phase cold: scheduler + empty cache at {cache_dir}")
        cold = SweepScheduler(
            _scheduler_config(config, cache_dir, config.max_workers)
        ).run(workloads, strategies)
        payload["phases"]["cold"] = _phase_dict(cold)
        log(f"  {cold.wall_s:.2f}s on {cold.workers} worker(s)")

        log("phase warm: scheduler + populated cache")
        warm = SweepScheduler(
            _scheduler_config(config, cache_dir, config.max_workers)
        ).run(workloads, strategies)
        payload["phases"]["warm"] = _phase_dict(warm)
        log(f"  {warm.wall_s:.2f}s, hit rate {warm.cache_hit_rate:.0%}")

        if config.attribution:
            log("phase attribution: observer-enabled runs + blame report")
            attribution = _attribution_phase(
                workloads, strategies, config, cache_dir
            )
            attribution["overhead_vs_cold"] = (
                round(attribution["observer_overhead_s"] / cold.wall_s, 4)
                if cold.wall_s else 0.0
            )
            payload["attribution"] = attribution
            log(f"  {attribution['wall_s']:.2f}s "
                f"({attribution['overhead_vs_cold']:.1%} of cold)")

        if config.chaos:
            from ..robustness.chaos import ChaosPolicy
            from .chaosrun import run_chaos

            policy = ChaosPolicy(seed=config.chaos_seed,
                                 rate=config.chaos_rate, hang_s=0.5)
            log(f"phase chaos: {policy.describe()}, fresh cache, "
                f"cold phase as the fault-free reference")
            chaos_cache = str(Path(scratch) / "chaos-cache")
            outcome = run_chaos(
                workloads, strategies, policy=policy,
                config=_scheduler_config(config, chaos_cache,
                                         config.max_workers),
                reference_canonical=cold.canonical(),
            )
            payload["phases"]["chaos"] = _phase_dict(outcome.sweep)
            chaos_payload = outcome.as_dict()
            chaos_payload["overhead_vs_cold"] = (
                round(outcome.sweep.wall_s / cold.wall_s, 4)
                if cold.wall_s else 0.0
            )
            payload["chaos"] = chaos_payload
            log(f"  {outcome.sweep.wall_s:.2f}s "
                f"({chaos_payload['overhead_vs_cold']:.2f}x of cold), "
                f"identity {'OK' if outcome.identity_ok else 'FAILED'}, "
                f"{len(outcome.surviving)}/{len(outcome.sweep.tasks)} "
                f"survived")

        if config.optimize:
            log(f"phase optimize: search-based layout optimizer on "
                f"{len(workloads)} workload(s), budget "
                f"{config.optimize_budget}, warm cache")
            optimize = _optimize_phase(workloads, config, cache_dir)
            payload["optimize"] = optimize
            log(f"  {optimize['wall_s']:.2f}s: "
                f"{optimize['improved_sections']}/{optimize['sections']} "
                f"section(s) strictly improved, never-worse "
                f"{'OK' if optimize['ok'] else 'VIOLATED'}")

        if config.pgo:
            log(f"phase pgo: {config.pgo_epochs}-epoch drift scenario, "
                f"seed {config.pgo_seed}, warm cache, injected-bad final "
                f"candidate")
            pgo = _pgo_phase(workloads, strategies, config, cache_dir)
            payload["pgo"] = pgo
            log(f"  {pgo['wall_s']:.2f}s on {pgo['workload']}/"
                f"{pgo['strategy']}: {pgo['refreshes']} refresh(es), "
                f"{pgo['rollbacks']} rollback(s), "
                f"{pgo['unguarded_regressions']} unguarded regression(s)")

    if serial is not None and cold.wall_s:
        payload["speedup_parallel"] = round(serial.wall_s / cold.wall_s, 2)
    if warm.wall_s:
        payload["speedup_warm"] = round(cold.wall_s / warm.wall_s, 2)

    canonical = cold.canonical()
    deterministic = canonical == warm.canonical()
    if serial is not None:
        deterministic = deterministic and canonical == serial.canonical()
    payload["deterministic"] = deterministic
    payload["ok"] = (cold.ok and warm.ok and (serial is None or serial.ok)
                     and deterministic)
    payload["results"] = canonical
    return payload


#: default regression-gate tolerances: wall-clock is noisy on shared CI
#: runners, hit rate is not
DEFAULT_WALL_TOLERANCE = 0.5
DEFAULT_HIT_RATE_TOLERANCE = 0.02


def check_regression(payload: Dict[str, Any], baseline: Dict[str, Any],
                     wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
                     hit_rate_tolerance: float = DEFAULT_HIT_RATE_TOLERANCE,
                     ) -> List[str]:
    """Compare a bench payload against a committed baseline payload.

    Fails (returns human-readable messages) when any shared phase's
    wall-clock regressed by more than ``wall_tolerance`` (a fraction: 0.5
    = 50% slower) or the warm cache hit rate dropped by more than
    ``hit_rate_tolerance`` (absolute).  Phases present in only one payload
    are skipped, so a ``--skip-serial`` run still gates against a full
    baseline.  Matrices of different sizes are incomparable and fail
    outright.

    When the gate fails and the payload carries an attribution phase, the
    failure list ends with the per-workload top-blamed units — the CUs /
    heap objects most responsible for the current layout's faults — so a
    red gate names suspects, not just numbers.
    """
    failures: List[str] = []
    mine = payload.get("config", {}).get("cells")
    theirs = baseline.get("config", {}).get("cells")
    if mine != theirs:
        return [f"matrix size differs from baseline ({mine} vs {theirs} "
                "cells); regression gate needs identical matrices"]
    for name, phase in sorted(payload.get("phases", {}).items()):
        base_phase = baseline.get("phases", {}).get(name)
        if not base_phase:
            continue
        base_wall = base_phase.get("wall_s", 0.0)
        wall = phase.get("wall_s", 0.0)
        if base_wall > 0 and wall > base_wall * (1.0 + wall_tolerance):
            failures.append(
                f"phase {name}: wall-clock {wall:.2f}s exceeds baseline "
                f"{base_wall:.2f}s by more than {wall_tolerance:.0%}"
            )
    warm = payload.get("phases", {}).get("warm", {})
    base_warm = baseline.get("phases", {}).get("warm", {})
    if warm and base_warm:
        rate = warm.get("cache_hit_rate", 0.0)
        base_rate = base_warm.get("cache_hit_rate", 0.0)
        if rate < base_rate - hit_rate_tolerance:
            failures.append(
                f"warm cache hit rate {rate:.2%} dropped below baseline "
                f"{base_rate:.2%} by more than {hit_rate_tolerance:.0%}"
            )
    if failures:
        failures.extend(attribution_diagnosis(payload))
    return failures


def attribution_diagnosis(payload: Dict[str, Any]) -> List[str]:
    """The blame lines a failing gate appends (empty without attribution)."""
    attribution = payload.get("attribution") or {}
    strategy = attribution.get("strategy", "?")
    lines = []
    for name, entry in sorted(attribution.get("workloads", {}).items()):
        blamed = ", ".join(entry.get("top_blamed", [])) or "none"
        lines.append(
            f"top blamed symbols for {name}/{strategy}: {blamed} "
            f"({entry.get('changed_units', 0)} changed unit(s), "
            f"fault delta {entry.get('fault_delta', 0):+d})"
        )
    return lines


#: history entries below which the trend gate abstains (no trajectory yet)
TREND_MIN_ENTRIES = 3

#: default window: the last N comparable history entries
DEFAULT_TREND_WINDOW = 10

#: step threshold in robust sigmas above the rolling median
TREND_STEP_SIGMAS = 4.0

#: sigma floor for wall-clock series, as a fraction of the median (CI
#: runners are noisy; a MAD of zero must not make any jitter a failure)
TREND_WALL_REL_FLOOR = 0.10

#: sigma floor for fault-count series (faults are deterministic, so the
#: MAD is usually zero; this tolerates sub-noise wobble only)
TREND_FAULT_FLOOR = 1.0

#: CUSUM slack and decision interval (in sigmas); drifts below ``k`` per
#: entry never alarm, anything above accumulates toward ``h``
TREND_CUSUM_K = 0.5
TREND_CUSUM_H = 4.0


def _trend_series_check(
    name: str, unit: str, series: List[float], value: float,
    sigma_floor: float, step_sigmas: float,
) -> Optional[str]:
    """Gate one scalar against its history series; a message = failure.

    Two detectors run in order:

    * **step** — the new value exceeds the rolling median by more than
      ``step_sigmas`` robust sigmas (MAD-scaled, floored): a one-run
      regression large enough to stand out of the noise band.
    * **drift** — a one-sided CUSUM over the window *plus the new value*,
      targeted at the rolling median: each entry contributes its excess
      over ``median + k*sigma``, so a slow creep that never individually
      clears the step band still accumulates to an alarm.  Only an alarm
      at (or after) the window's last third is attributed to the current
      trajectory; an old already-absorbed shift is not this run's fault.
    """
    center = median(series)
    sigma = max(mad(series) * MAD_SIGMA, sigma_floor, 1e-12)
    threshold = center + step_sigmas * sigma
    if value > threshold:
        return (
            f"trend: {name} {value:.2f}{unit} is a step regression over "
            f"the rolling median {center:.2f}{unit} of the last "
            f"{len(series)} run(s) (limit {threshold:.2f}{unit} = "
            f"median + {step_sigmas:g} robust sigmas)"
        )
    full = series + [value]
    alarm = cusum_alarm(full, target=center, sigma=sigma,
                        k=TREND_CUSUM_K, h=TREND_CUSUM_H)
    if alarm is not None and alarm >= (2 * len(full)) // 3:
        return (
            f"trend: {name} is drifting upward — CUSUM over the last "
            f"{len(full)} run(s) crossed {TREND_CUSUM_H:g} sigmas at "
            f"run {alarm + 1}/{len(full)} (median {center:.2f}{unit}, "
            f"sigma {sigma:.2f}{unit}, latest {value:.2f}{unit})"
        )
    return None


def check_trend(payload: Dict[str, Any],
                history: "BenchHistory | Sequence[Dict[str, Any]]",
                window: int = DEFAULT_TREND_WINDOW) -> List[str]:
    """Gate a bench payload against the history trend (empty = pass).

    Unlike :func:`check_regression` (one frozen baseline), this compares
    the new run against the *trajectory*: the last ``window`` history
    entries whose matrix hash matches the payload's.  Per-phase wall
    clocks and per-cell fault totals each pass through a step detector
    (rolling median ± MAD band) and a CUSUM changepoint detector, so a
    single large regression and a slow drift spread over several entries
    both fail.  With fewer than :data:`TREND_MIN_ENTRIES` comparable
    entries the gate abstains — an empty trajectory cannot regress.

    As with the baseline gate, a failing result ends with the PR-5
    attribution blame lines naming the top suspect symbols.
    """
    candidate = make_entry(payload)
    target_hash = candidate["matrix"]["hash"]
    if isinstance(history, BenchHistory):
        entries = history.tail(window, matrix_hash=target_hash)
    else:
        entries = [e for e in history
                   if e.get("matrix", {}).get("hash") == target_hash]
        entries = entries[-window:] if window > 0 else entries
    if len(entries) < TREND_MIN_ENTRIES:
        return []
    failures: List[str] = []
    for name, phase in sorted(candidate["phases"].items()):
        series = [float(e["phases"][name]["wall_s"]) for e in entries
                  if name in e.get("phases", {})]
        if len(series) < TREND_MIN_ENTRIES:
            continue
        floor = TREND_WALL_REL_FLOOR * max(median(series), 1e-9)
        message = _trend_series_check(
            f"phase {name} wall-clock", "s", series,
            float(phase.get("wall_s", 0.0)), floor, TREND_STEP_SIGMAS)
        if message:
            failures.append(message)
    for cell, faults in sorted(candidate["cell_faults"].items()):
        series = [float(e["cell_faults"][cell]) for e in entries
                  if cell in e.get("cell_faults", {})]
        if len(series) < TREND_MIN_ENTRIES:
            continue
        message = _trend_series_check(
            f"cell {cell} faults", "", series, float(faults),
            TREND_FAULT_FLOOR, TREND_STEP_SIGMAS)
        if message:
            failures.append(message)
    if failures:
        failures.extend(attribution_diagnosis(payload))
    return failures


def record_history(payload: Dict[str, Any],
                   path: "str | Path" = DEFAULT_HISTORY,
                   timestamp: Optional[float] = None,
                   run_id: Optional[str] = None) -> Dict[str, Any]:
    """Append one history entry for a bench payload; returns the entry.

    The entry snapshots the process-wide metrics registry at call time,
    so the run's ``phase.*`` duration percentiles travel with it.
    """
    from ..obs import get_registry

    entry = make_entry(payload, metrics_snapshot=get_registry().snapshot(),
                       timestamp=timestamp, run_id=run_id)
    BenchHistory(path).append(entry)
    return entry


def check_payload(payload: Dict[str, Any]) -> List[str]:
    """CI assertions; returns a list of human-readable failures (empty = pass)."""
    failures = []
    if not payload.get("ok"):
        failures.append("bench reported ok=false (task errors or divergence)")
    if not payload.get("deterministic"):
        failures.append("phases disagreed on metrics (determinism violation)")
    warm = payload.get("phases", {}).get("warm", {})
    if warm.get("cache_misses", 1) != 0:
        failures.append(
            f"warm phase had {warm.get('cache_misses')} cache misses (want 0)"
        )
    if warm.get("cache_hit_rate", 0.0) != 1.0:
        failures.append(
            f"warm cache hit rate {warm.get('cache_hit_rate')} (want 1.0)"
        )
    attribution = payload.get("attribution")
    if attribution:
        overhead = attribution.get("overhead_vs_cold", 0.0)
        if overhead > MAX_ATTRIBUTION_OVERHEAD:
            failures.append(
                f"attribution overhead {overhead:.1%} of cold wall-clock "
                f"exceeds the {MAX_ATTRIBUTION_OVERHEAD:.0%} budget"
            )
    chaos = payload.get("chaos")
    if chaos:
        identity = chaos.get("identity", {})
        if not identity.get("ok"):
            failures.append(
                "chaos phase broke the identity invariant: "
                f"{len(identity.get('divergent', []))} surviving result(s) "
                "diverged from the fault-free reference"
            )
        if chaos.get("quarantined"):
            failures.append(
                "chaos phase quarantined cells under a recoverable fault "
                f"schedule: {', '.join(chaos['quarantined'])}"
            )
        if chaos.get("failed"):
            failures.append(
                f"chaos phase left {len(chaos['failed'])} cell(s) "
                "unrecovered under a recoverable fault schedule"
            )
    optimize = payload.get("optimize")
    if optimize:
        for name, entry in sorted(optimize.get("workloads", {}).items()):
            for section in entry.get("sections", []):
                if section.get("skipped"):
                    continue
                cell = f"{name}/{section.get('strategy', '?')}"
                if not section.get("never_worse"):
                    failures.append(
                        f"optimize phase: {cell} lost to its seed strategy "
                        f"{section.get('seed_strategy', '?')} "
                        f"({section.get('seed_faults')} -> "
                        f"{section.get('optimized_faults')} faults)"
                    )
                if not section.get("verified"):
                    failures.append(
                        f"optimize phase: {cell} failed structural layout "
                        "verification"
                    )
                if not section.get("differential_ok"):
                    failures.append(
                        f"optimize phase: {cell} diverged under differential "
                        "execution"
                    )
                if section.get("predicted_faults") != section.get(
                        "optimized_faults"):
                    failures.append(
                        f"optimize phase: {cell} search predicted "
                        f"{section.get('predicted_faults')} faults but the "
                        f"built binary replayed "
                        f"{section.get('optimized_faults')} (cost model "
                        "drifted from the executor)"
                    )
    pgo = payload.get("pgo")
    if pgo:
        cell = f"{pgo.get('workload', '?')}/{pgo.get('strategy', '?')}"
        if not pgo.get("ok"):
            failures.append(
                f"pgo phase shipped {pgo.get('unguarded_regressions')} "
                f"unguarded regression(s) on {cell}: the deployed layout "
                "regressed past the canary gate threshold"
            )
        if not pgo.get("refreshes"):
            failures.append(
                f"pgo phase never refreshed on {cell}: the genuine traffic "
                "shift went undetected"
            )
        for detail in pgo.get("refresh_detail", []):
            if not detail["candidate_faults"] < detail["stale_faults"]:
                failures.append(
                    f"pgo refresh at epoch {detail['epoch']} did not "
                    f"strictly reduce expected faults "
                    f"({detail['stale_faults']} -> "
                    f"{detail['candidate_faults']})"
                )
        if pgo.get("inject_bad_epoch") is not None:
            if not pgo.get("rollbacks"):
                failures.append(
                    f"pgo phase deployed the injected-bad candidate on "
                    f"{cell} instead of rolling back"
                )
            if not pgo.get("quarantined"):
                failures.append(
                    "pgo phase rolled back without quarantining the "
                    "convicted candidate layout"
                )
    return failures


def write_payload(payload: Dict[str, Any], output: str) -> Path:
    path = Path(output)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def format_summary(payload: Dict[str, Any]) -> str:
    lines = [f"pipeline bench: {payload['config']['cells']} matrix cells, "
             f"toolchain {payload['toolchain']}"]
    for name in ("serial", "cold", "warm", "chaos"):
        phase = payload["phases"].get(name)
        if phase:
            lines.append(
                f"  {name:<6} {phase['wall_s']:>8.2f}s  "
                f"workers={phase['workers']}  "
                f"cache {phase['cache_hits']}h/{phase['cache_misses']}m"
            )
    if "speedup_parallel" in payload:
        lines.append(f"  parallel+share speedup over serial: "
                     f"{payload['speedup_parallel']:.2f}x")
    if "speedup_warm" in payload:
        lines.append(f"  warm-cache speedup over cold: "
                     f"{payload['speedup_warm']:.2f}x")
    attribution = payload.get("attribution")
    if attribution:
        lines.append(
            f"  attribution ({attribution['strategy']}): observed runs "
            f"{attribution['runs_wall_s']:.2f}s "
            f"(observer overhead "
            f"{attribution.get('overhead_vs_cold', 0.0):.1%} of cold) on "
            + ", ".join(sorted(attribution.get("workloads", {})))
        )
    chaos = payload.get("chaos")
    if chaos:
        health = chaos.get("health", {})
        injected = sum(health.get("injected", {}).values())
        lines.append(
            f"  chaos (seed {chaos['policy']['seed']}, "
            f"rate {chaos['policy']['rate']:.0%}): {injected} fault(s) "
            f"injected, {chaos['surviving']}/{chaos['cells']} survived, "
            f"identity {'OK' if chaos['identity']['ok'] else 'FAILED'}, "
            f"{chaos.get('overhead_vs_cold', 0.0):.2f}x of cold"
        )
    optimize = payload.get("optimize")
    if optimize:
        lines.append(
            f"  optimize (budget {optimize['budget']}, seed "
            f"{optimize['search_seed']}): "
            f"{optimize['improved_sections']}/{optimize['sections']} "
            f"section(s) strictly beat their seed strategy, never-worse "
            f"{'OK' if optimize['ok'] else 'VIOLATED'}, "
            f"{optimize['wall_s']:.2f}s"
        )
    pgo = payload.get("pgo")
    if pgo:
        cuts = ", ".join(
            f"{d['stale_faults']:.1f}->{d['candidate_faults']:.1f}"
            for d in pgo.get("refresh_detail", [])
        ) or "none"
        lines.append(
            f"  pgo ({pgo['workload']}/{pgo['strategy']}, "
            f"seed {pgo['seed']}): {pgo['refreshes']} refresh(es) "
            f"(fault cut {cuts}), {pgo['rollbacks']} rollback(s), "
            f"{len(pgo.get('quarantined', []))} quarantined, "
            f"{pgo['unguarded_regressions']} unguarded regression(s)"
        )
    lines.append(f"  deterministic: {payload['deterministic']}")
    return "\n".join(lines)
