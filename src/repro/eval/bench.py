"""Benchmark harness for the evaluation pipeline itself.

Not a paper experiment: this measures *the reproduction's own* evaluation
machinery — how much wall-clock the parallel scheduler and the
content-addressed artifact cache save over the naive serial sweep.  Three
phases run the identical workload × strategy matrix:

``serial``
    The legacy path: a fresh uncached :class:`WorkloadPipeline` per matrix
    cell, exactly what ``repro compare`` in a shell loop would cost.
``cold``
    The :class:`SweepScheduler` against an empty cache — artifact sharing
    (one compile/baseline/profile per workload) plus process fan-out.
``warm``
    The scheduler again over the now-populated cache — every artifact
    should load instead of rebuild (100% hit rate).

Because the simulated toolchain is deterministic and per-task seeds are
content-derived, all three phases must agree on every metric; the harness
checks that and reports any divergence as a benchmark failure.  Results are
written to ``BENCH_pipeline.json`` (schema below) for CI trend tracking.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cache import ArtifactCache
from ..cache.keys import TOOLCHAIN_VERSION
from ..workloads.awfy.suite import AWFY_NAMES, awfy_suite
from ..workloads.microservices.suite import MICROSERVICE_NAMES, microservice_suite
from .pipeline import ALL_STRATEGY_SPECS, StrategySpec, Workload, WorkloadPipeline
from .scheduler import (
    STRATEGY_BY_NAME,
    SchedulerConfig,
    SweepResult,
    SweepScheduler,
    run_task,
    task_seed,
)

BENCH_SCHEMA = 1
DEFAULT_OUTPUT = "BENCH_pipeline.json"

#: the ``--quick`` matrix: small-but-representative (two AWFY benchmarks
#: plus one microservice, one code and one heap strategy)
QUICK_WORKLOADS: Tuple[str, ...] = ("Bounce", "Queens", "quarkus")
QUICK_STRATEGIES: Tuple[str, ...] = ("cu", "heap path")


@dataclass(frozen=True)
class BenchConfig:
    """What to benchmark and how.

    Empty ``workloads``/``strategies`` mean the full paper matrix
    (14 AWFY + 3 microservices × all six strategies).
    """

    workloads: Tuple[str, ...] = ()
    strategies: Tuple[str, ...] = ()
    iterations: int = 1
    base_seed: int = 1
    #: worker processes for the cold/warm phases; 0 = one per core
    max_workers: int = 0
    cache_dir: Optional[str] = None
    output: str = DEFAULT_OUTPUT
    #: skip the serial reference phase (it dominates runtime on big matrices)
    skip_serial: bool = False

    @classmethod
    def quick(cls, **overrides: Any) -> "BenchConfig":
        """The CI smoke matrix (3 workloads × 2 strategies)."""
        overrides.setdefault("workloads", QUICK_WORKLOADS)
        overrides.setdefault("strategies", QUICK_STRATEGIES)
        return cls(**overrides)


def resolve_matrix(config: BenchConfig) -> Tuple[List[Workload], List[StrategySpec]]:
    """Materialize the workload and strategy lists a config names.

    Raises :class:`KeyError` for unknown workload or strategy names so a
    typo fails before any benchmarking starts.
    """
    suite: Dict[str, Workload] = dict(awfy_suite())
    suite.update(microservice_suite())
    names = list(config.workloads) or AWFY_NAMES + MICROSERVICE_NAMES
    unknown = [n for n in names if n not in suite]
    if unknown:
        raise KeyError(f"unknown workload(s) {unknown}; choose from {sorted(suite)}")
    strategy_names = list(config.strategies) or [s.name for s in ALL_STRATEGY_SPECS]
    unknown = [n for n in strategy_names if n not in STRATEGY_BY_NAME]
    if unknown:
        raise KeyError(
            f"unknown strateg(ies) {unknown}; choose from {sorted(STRATEGY_BY_NAME)}"
        )
    return ([suite[n] for n in names],
            [STRATEGY_BY_NAME[n] for n in strategy_names])


def _scheduler_config(config: BenchConfig, cache_dir: Optional[str],
                      max_workers: int) -> SchedulerConfig:
    return SchedulerConfig(
        cache_dir=cache_dir,
        max_workers=max_workers,
        iterations=config.iterations,
        base_seed=config.base_seed,
    )


def _phase_dict(sweep: SweepResult) -> Dict[str, Any]:
    return {
        "wall_s": round(sweep.wall_s, 4),
        "tasks": len(sweep.tasks),
        "workers": sweep.workers,
        "ok": sweep.ok,
        "total_ops": sweep.total_ops,
        "cache_hits": sweep.cache_hits,
        "cache_misses": sweep.cache_misses,
        "cache_hit_rate": round(sweep.cache_hit_rate, 4),
    }


def _run_serial_legacy(workloads: Sequence[Workload],
                       strategies: Sequence[StrategySpec],
                       config: BenchConfig) -> SweepResult:
    """The reference cost: fresh uncached pipeline per matrix cell.

    Implemented via :func:`run_task` on single-cell scheduler configs so
    the metrics are extracted identically to the scheduler phases — but a
    brand-new :class:`WorkloadPipeline` (new compile, new baseline build,
    new profiling run) is forced for every cell, matching what N separate
    ``repro compare`` invocations would pay.
    """
    from . import scheduler as _sched

    results = []
    start = time.perf_counter()
    for workload in workloads:
        for spec in strategies:
            _sched._WORKER_PIPELINES.clear()  # force the from-scratch path
            task = _sched.EvalTask(
                workload=workload,
                strategy_name=spec.name,
                seed=task_seed(config.base_seed, workload.name),
                iterations=config.iterations,
            )
            results.append(run_task(task, _scheduler_config(config, None, 1)))
    _sched._WORKER_PIPELINES.clear()
    return SweepResult(tasks=results, wall_s=time.perf_counter() - start,
                       workers=1)


def run_bench(config: BenchConfig,
              log=lambda message: None) -> Dict[str, Any]:
    """Run all phases and return the ``BENCH_pipeline.json`` payload."""
    workloads, strategies = resolve_matrix(config)
    cells = len(workloads) * len(strategies)
    payload: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "toolchain": TOOLCHAIN_VERSION,
        "config": {
            "workloads": [w.name for w in workloads],
            "strategies": [s.name for s in strategies],
            "iterations": config.iterations,
            "base_seed": config.base_seed,
            "max_workers": config.max_workers,
            "cells": cells,
        },
        "phases": {},
    }

    serial: Optional[SweepResult] = None
    if not config.skip_serial:
        log(f"phase serial: {cells} cells, fresh uncached pipeline each")
        serial = _run_serial_legacy(workloads, strategies, config)
        payload["phases"]["serial"] = _phase_dict(serial)
        log(f"  {serial.wall_s:.2f}s")

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as scratch:
        cache_dir = config.cache_dir or str(Path(scratch) / "cache")
        ArtifactCache(Path(cache_dir)).clear()  # cold means cold

        log(f"phase cold: scheduler + empty cache at {cache_dir}")
        cold = SweepScheduler(
            _scheduler_config(config, cache_dir, config.max_workers)
        ).run(workloads, strategies)
        payload["phases"]["cold"] = _phase_dict(cold)
        log(f"  {cold.wall_s:.2f}s on {cold.workers} worker(s)")

        log("phase warm: scheduler + populated cache")
        warm = SweepScheduler(
            _scheduler_config(config, cache_dir, config.max_workers)
        ).run(workloads, strategies)
        payload["phases"]["warm"] = _phase_dict(warm)
        log(f"  {warm.wall_s:.2f}s, hit rate {warm.cache_hit_rate:.0%}")

    if serial is not None and cold.wall_s:
        payload["speedup_parallel"] = round(serial.wall_s / cold.wall_s, 2)
    if warm.wall_s:
        payload["speedup_warm"] = round(cold.wall_s / warm.wall_s, 2)

    canonical = cold.canonical()
    deterministic = canonical == warm.canonical()
    if serial is not None:
        deterministic = deterministic and canonical == serial.canonical()
    payload["deterministic"] = deterministic
    payload["ok"] = (cold.ok and warm.ok and (serial is None or serial.ok)
                     and deterministic)
    payload["results"] = canonical
    return payload


#: default regression-gate tolerances: wall-clock is noisy on shared CI
#: runners, hit rate is not
DEFAULT_WALL_TOLERANCE = 0.5
DEFAULT_HIT_RATE_TOLERANCE = 0.02


def check_regression(payload: Dict[str, Any], baseline: Dict[str, Any],
                     wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
                     hit_rate_tolerance: float = DEFAULT_HIT_RATE_TOLERANCE,
                     ) -> List[str]:
    """Compare a bench payload against a committed baseline payload.

    Fails (returns human-readable messages) when any shared phase's
    wall-clock regressed by more than ``wall_tolerance`` (a fraction: 0.5
    = 50% slower) or the warm cache hit rate dropped by more than
    ``hit_rate_tolerance`` (absolute).  Phases present in only one payload
    are skipped, so a ``--skip-serial`` run still gates against a full
    baseline.  Matrices of different sizes are incomparable and fail
    outright.
    """
    failures: List[str] = []
    mine = payload.get("config", {}).get("cells")
    theirs = baseline.get("config", {}).get("cells")
    if mine != theirs:
        return [f"matrix size differs from baseline ({mine} vs {theirs} "
                "cells); regression gate needs identical matrices"]
    for name, phase in sorted(payload.get("phases", {}).items()):
        base_phase = baseline.get("phases", {}).get(name)
        if not base_phase:
            continue
        base_wall = base_phase.get("wall_s", 0.0)
        wall = phase.get("wall_s", 0.0)
        if base_wall > 0 and wall > base_wall * (1.0 + wall_tolerance):
            failures.append(
                f"phase {name}: wall-clock {wall:.2f}s exceeds baseline "
                f"{base_wall:.2f}s by more than {wall_tolerance:.0%}"
            )
    warm = payload.get("phases", {}).get("warm", {})
    base_warm = baseline.get("phases", {}).get("warm", {})
    if warm and base_warm:
        rate = warm.get("cache_hit_rate", 0.0)
        base_rate = base_warm.get("cache_hit_rate", 0.0)
        if rate < base_rate - hit_rate_tolerance:
            failures.append(
                f"warm cache hit rate {rate:.2%} dropped below baseline "
                f"{base_rate:.2%} by more than {hit_rate_tolerance:.0%}"
            )
    return failures


def check_payload(payload: Dict[str, Any]) -> List[str]:
    """CI assertions; returns a list of human-readable failures (empty = pass)."""
    failures = []
    if not payload.get("ok"):
        failures.append("bench reported ok=false (task errors or divergence)")
    if not payload.get("deterministic"):
        failures.append("phases disagreed on metrics (determinism violation)")
    warm = payload.get("phases", {}).get("warm", {})
    if warm.get("cache_misses", 1) != 0:
        failures.append(
            f"warm phase had {warm.get('cache_misses')} cache misses (want 0)"
        )
    if warm.get("cache_hit_rate", 0.0) != 1.0:
        failures.append(
            f"warm cache hit rate {warm.get('cache_hit_rate')} (want 1.0)"
        )
    return failures


def write_payload(payload: Dict[str, Any], output: str) -> Path:
    path = Path(output)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def format_summary(payload: Dict[str, Any]) -> str:
    lines = [f"pipeline bench: {payload['config']['cells']} matrix cells, "
             f"toolchain {payload['toolchain']}"]
    for name in ("serial", "cold", "warm"):
        phase = payload["phases"].get(name)
        if phase:
            lines.append(
                f"  {name:<6} {phase['wall_s']:>8.2f}s  "
                f"workers={phase['workers']}  "
                f"cache {phase['cache_hits']}h/{phase['cache_misses']}m"
            )
    if "speedup_parallel" in payload:
        lines.append(f"  parallel+share speedup over serial: "
                     f"{payload['speedup_parallel']:.2f}x")
    if "speedup_warm" in payload:
        lines.append(f"  warm-cache speedup over cold: "
                     f"{payload['speedup_warm']:.2f}x")
    lines.append(f"  deterministic: {payload['deterministic']}")
    return "\n".join(lines)
