"""ASCII figure rendering.

The harness prints each figure the way the paper lays it out: workloads on
the x-axis, one bar per strategy with the exact factor above/next to the
bar and the 95% CI, plus the geometric mean after the benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..util.stats import ConfidenceInterval

_BAR_WIDTH = 40


def render_factor_chart(
    title: str,
    workload_names: Sequence[str],
    strategy_names: Sequence[str],
    factors: Dict[str, Dict[str, ConfidenceInterval]],
    geomeans: Optional[Dict[str, float]] = None,
    max_factor: Optional[float] = None,
) -> str:
    """Render grouped horizontal bars: ``factors[workload][strategy]``."""
    lines: List[str] = []
    lines.append(title)
    lines.append("=" * len(title))
    limit = max_factor or _max_value(factors) or 1.0
    label_width = max((len(s) for s in strategy_names), default=8) + 2

    for workload in workload_names:
        lines.append(f"\n{workload}")
        per_strategy = factors.get(workload, {})
        for strategy in strategy_names:
            ci = per_strategy.get(strategy)
            if ci is None:
                continue
            bar = _bar(ci.mean, limit)
            lines.append(
                f"  {strategy:<{label_width}}|{bar:<{_BAR_WIDTH}}| "
                f"{ci.mean:5.2f}x  (+/-{ci.half_width:.2f})"
            )
    if geomeans:
        lines.append("\ngeomean")
        for strategy in strategy_names:
            value = geomeans.get(strategy)
            if value is None:
                continue
            bar = _bar(value, limit)
            lines.append(f"  {strategy:<{label_width}}|{bar:<{_BAR_WIDTH}}| {value:5.2f}x")
    return "\n".join(lines)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
) -> str:
    """Simple aligned text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _bar(value: float, limit: float) -> str:
    filled = int(round(_BAR_WIDTH * min(value, limit) / limit))
    return "#" * filled


def _max_value(factors: Dict[str, Dict[str, ConfidenceInterval]]) -> float:
    best = 0.0
    for per_strategy in factors.values():
        for ci in per_strategy.values():
            best = max(best, ci.mean + ci.half_width)
    return best
