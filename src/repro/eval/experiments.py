"""Experiment definitions: one function per table/figure of the paper.

* Fig. 2 — page-fault reduction on AWFY (``page_fault_experiment``)
* Fig. 3 — page-fault reduction on microservices (same, micro suite)
* Fig. 4 — execution-time speedup on microservices (``speedup`` columns)
* Fig. 5 — execution-time speedup on AWFY
* Sec. 7.4 — profiling overhead (``profiling_overhead_experiment``)
* Fig. 6 — ``.text`` page map (:mod:`repro.eval.textmap`)

Methodology mirrors Sec. 7.1: per strategy we build ``n_builds`` images
with different build seeds, run each ``n_runs`` times with cold caches, and
report the factor ``M_baseline / M_optimized`` (higher is better) with a
95% CI across builds, plus the geometric mean across workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..image.sections import HEAP_SECTION, TEXT_SECTION
from ..util.stats import ConfidenceInterval, confidence_interval_95, geomean, mean
from .pipeline import (
    PAPER_STRATEGY_SPECS,
    StrategySpec,
    Workload,
    WorkloadPipeline,
)


@dataclass(frozen=True)
class ExperimentConfig:
    """How much measurement to do (paper: 10 builds x 10 runs)."""

    n_builds: int = 3
    n_runs: int = 3
    #: the paper's figures evaluate its six strategies; pass the
    #: optimizer specs explicitly to put them on the same axes
    strategies: Sequence[StrategySpec] = PAPER_STRATEGY_SPECS
    #: base of the per-build seed sequence
    seed_base: int = 1


@dataclass
class StrategyResult:
    """Per-workload, per-strategy factors."""

    strategy: str
    fault_factor: ConfidenceInterval
    speedup: ConfidenceInterval
    #: per-build factor samples (diagnostics / plotting)
    fault_samples: List[float] = field(default_factory=list)
    speedup_samples: List[float] = field(default_factory=list)


@dataclass
class WorkloadResult:
    workload: str
    microservice: bool
    baseline_faults: Dict[str, float] = field(default_factory=dict)
    baseline_time_s: float = 0.0
    strategies: Dict[str, StrategyResult] = field(default_factory=dict)


@dataclass
class SuiteResult:
    """All workloads of one suite (AWFY or microservices)."""

    suite: str
    workloads: List[WorkloadResult] = field(default_factory=list)

    def geomean_fault_factor(self, strategy: str) -> float:
        values = [
            w.strategies[strategy].fault_factor.mean
            for w in self.workloads
            if strategy in w.strategies
        ]
        return geomean(values) if values else float("nan")

    def geomean_speedup(self, strategy: str) -> float:
        values = [
            w.strategies[strategy].speedup.mean
            for w in self.workloads
            if strategy in w.strategies
        ]
        return geomean(values) if values else float("nan")


def _relevant_faults(faults: Dict[str, int], strategy: StrategySpec) -> float:
    text = faults.get(TEXT_SECTION, 0)
    heap = faults.get(HEAP_SECTION, 0)
    if strategy.is_code and strategy.is_heap:
        return float(text + heap)
    if strategy.is_code:
        return float(text)
    return float(heap)


def _measure_point(metrics, strategy: StrategySpec, microservice: bool):
    """(fault metric, time metric) for one run."""
    if microservice and metrics.first_response_time_s is not None:
        faults = metrics.first_response_faults or metrics.faults
        time_s = metrics.first_response_time_s
    else:
        faults = metrics.faults
        time_s = metrics.time_s
    return _relevant_faults(faults, strategy), time_s


def evaluate_workload(
    workload: Workload,
    config: Optional[ExperimentConfig] = None,
    pipeline: Optional[WorkloadPipeline] = None,
) -> WorkloadResult:
    """Run the full strategy matrix on one workload."""
    config = config or ExperimentConfig()
    pipeline = pipeline or WorkloadPipeline(workload)
    result = WorkloadResult(workload=workload.name, microservice=workload.microservice)

    per_strategy_fault_factors: Dict[str, List[float]] = {
        s.name: [] for s in config.strategies
    }
    per_strategy_speedups: Dict[str, List[float]] = {s.name: [] for s in config.strategies}
    base_fault_totals: List[Dict[str, int]] = []
    base_times: List[float] = []

    for build in range(config.n_builds):
        seed = config.seed_base + build * 7
        baseline = pipeline.build_baseline(seed=seed)
        base_runs = pipeline.measure(baseline, config.n_runs, seed=seed)
        # Profile with the *instrumented* build of this seed.
        outcome = pipeline.profile(seed=seed + 1)

        for spec in config.strategies:
            optimized = pipeline.build_optimized(outcome.profiles, spec, seed=seed + 2)
            opt_runs = pipeline.measure(optimized, config.n_runs, seed=seed + 3)

            base_faults = mean(
                [_measure_point(m, spec, workload.microservice)[0] for m in base_runs]
            )
            base_time = mean(
                [_measure_point(m, spec, workload.microservice)[1] for m in base_runs]
            )
            opt_faults = mean(
                [_measure_point(m, spec, workload.microservice)[0] for m in opt_runs]
            )
            opt_time = mean(
                [_measure_point(m, spec, workload.microservice)[1] for m in opt_runs]
            )
            fault_factor = base_faults / opt_faults if opt_faults else float(base_faults or 1.0)
            per_strategy_fault_factors[spec.name].append(fault_factor)
            per_strategy_speedups[spec.name].append(base_time / opt_time)

        for metrics in base_runs:
            if workload.microservice and metrics.first_response_faults is not None:
                base_fault_totals.append(metrics.first_response_faults)
                base_times.append(metrics.first_response_time_s or metrics.time_s)
            else:
                base_fault_totals.append(metrics.faults)
                base_times.append(metrics.time_s)

    result.baseline_faults = {
        TEXT_SECTION: mean([f.get(TEXT_SECTION, 0) for f in base_fault_totals]),
        HEAP_SECTION: mean([f.get(HEAP_SECTION, 0) for f in base_fault_totals]),
    }
    result.baseline_time_s = mean(base_times)
    for spec in config.strategies:
        fault_samples = per_strategy_fault_factors[spec.name]
        speed_samples = per_strategy_speedups[spec.name]
        result.strategies[spec.name] = StrategyResult(
            strategy=spec.name,
            fault_factor=confidence_interval_95(fault_samples),
            speedup=confidence_interval_95(speed_samples),
            fault_samples=fault_samples,
            speedup_samples=speed_samples,
        )
    return result


def evaluate_suite(
    workloads: Dict[str, Workload],
    suite_name: str,
    config: Optional[ExperimentConfig] = None,
) -> SuiteResult:
    """Evaluate every workload of a suite."""
    suite = SuiteResult(suite=suite_name)
    for name in workloads:
        suite.workloads.append(evaluate_workload(workloads[name], config))
    return suite


# ---------------------------------------------------------------------------
# Sec. 7.4: profiling overhead
# ---------------------------------------------------------------------------


@dataclass
class OverheadResult:
    """Per-workload instrumented/regular time ratios, per tracing flavour."""

    workload: str
    cu_overhead: float
    method_overhead: float
    heap_overhead: float
    dump_mode: str


def profiling_overhead(
    workload: Workload, pipeline: Optional[WorkloadPipeline] = None, seed: int = 1
) -> OverheadResult:
    """Model the per-flavour tracing overhead from one instrumented run.

    The emitted instrumentation is the same for all heap strategies, so a
    single overhead number covers incremental id/structural hash/heap path
    (Sec. 7.4).  Flavours differ in which probes they need: *cu* only CU
    entries, *method* all method entries, *heap* paths + object IDs.
    """
    pipeline = pipeline or WorkloadPipeline(workload)
    exec_config = pipeline.exec_config
    baseline = pipeline.build_baseline(seed=seed)
    base = pipeline.measure(baseline, 1, seed=seed)[0]
    outcome = pipeline.profile(seed=seed)
    counts = outcome.instrumented_metrics.trace_event_counts
    instrumented = outcome.instrumented_metrics

    if workload.microservice and instrumented.first_response_time_s is not None:
        instr_plain = instrumented.first_response_time_s
        base_time = base.first_response_time_s or base.time_s
    else:
        instr_plain = instrumented.time_s
        base_time = base.time_s

    # Decompose the instrumented time into probe flavours.
    per_record = counts.get("path_records", 0) * exec_config.probe_record_s
    dump_cost = counts.get("dumps", 0) * exec_config.dump_cost_s
    mmap_cost = counts.get("mmap_writes", 0) * exec_config.mmap_write_through_s
    io_cost = dump_cost + mmap_cost

    cu_cost = counts.get("cu_entries", 0) * exec_config.probe_method_entry_s
    method_cost = counts.get("method_entries", 0) * exec_config.probe_method_entry_s
    heap_cost = (
        counts.get("blocks", 0) * exec_config.probe_block_s
        + counts.get("heap_ids", 0) * exec_config.probe_heap_id_s
        + per_record
    )
    all_probe = cu_cost + method_cost + heap_cost + per_record
    # An instrumented build is never faster than the regular one in practice
    # (its code is strictly larger), so floor the de-probed core time.
    core_time = max(instr_plain - all_probe - io_cost, base_time)

    def ratio(flavour_cost: float) -> float:
        return (core_time + flavour_cost + io_cost) / base_time

    return OverheadResult(
        workload=workload.name,
        cu_overhead=ratio(cu_cost),
        method_overhead=ratio(method_cost),
        heap_overhead=ratio(heap_cost),
        dump_mode="mmap" if workload.microservice else "dump-on-full",
    )


def quick_config(strategies: Optional[Sequence[StrategySpec]] = None) -> ExperimentConfig:
    """A fast configuration for tests and CI-sized runs."""
    return ExperimentConfig(
        n_builds=1, n_runs=1, strategies=tuple(strategies or PAPER_STRATEGY_SPECS)
    )


def paper_config() -> ExperimentConfig:
    """Closer to the paper's 10x10 methodology (still laptop-friendly)."""
    return ExperimentConfig(n_builds=5, n_runs=3)
