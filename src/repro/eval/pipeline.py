"""End-to-end pipeline: profile -> post-process -> optimize -> measure.

Implements the methodology of Fig. 1 for one workload:

1. build the **instrumented** binary and run it once under the tracing
   profiler (buffered dumps for run-to-completion workloads, memory-mapped
   buffers for microservices that are SIGKILLed after the first response);
2. post-process the traces into ordering profiles + call counts;
3. build the **optimized** binary with the requested code/heap ordering;
4. run baseline and optimized binaries with cold caches and report
   page faults per section and the simulated execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..image.binary import (
    MODE_INSTRUMENTED,
    MODE_OPTIMIZED,
    MODE_REGULAR,
    NativeImageBinary,
)
from ..image.builder import BuildConfig, NativeImageBuilder
from ..minijava.bytecode import Program
from ..minijava.frontend import compile_source
from ..ordering.profiles import ProfileBundle
from ..postproc.framework import build_profiles
from ..profiling.tracebuf import TraceSession
from ..profiling.tracefile import MODE_DUMP_ON_FULL, MODE_MMAP
from ..profiling.tracer import PathTracer
from ..runtime.executor import ExecutionConfig, RunMetrics, run_binary


@dataclass(frozen=True)
class Workload:
    """A benchmark program plus how to run/measure it."""

    name: str
    source: str
    main_class: str = "Main"
    #: microservices: measure time-to-first-response, kill after response,
    #: profile with memory-mapped buffers
    microservice: bool = False
    description: str = ""

    def compile(self) -> Program:
        return compile_source(self.source, main_class=self.main_class)


@dataclass(frozen=True)
class StrategySpec:
    """One of the paper's ordering strategies (or their combination)."""

    name: str
    code_ordering: Optional[str] = None  # "cu" | "method"
    heap_ordering: Optional[str] = None  # an ID-strategy name

    @property
    def is_code(self) -> bool:
        return self.code_ordering is not None

    @property
    def is_heap(self) -> bool:
        return self.heap_ordering is not None


#: The five strategies of the evaluation plus the combined one (Sec. 7.1).
STRATEGY_CU = StrategySpec("cu", code_ordering="cu")
STRATEGY_METHOD = StrategySpec("method", code_ordering="method")
STRATEGY_INCREMENTAL = StrategySpec("incremental id", heap_ordering="incremental_id")
STRATEGY_STRUCTURAL = StrategySpec("structural hash", heap_ordering="structural_hash")
STRATEGY_HEAP_PATH = StrategySpec("heap path", heap_ordering="heap_path")
STRATEGY_COMBINED = StrategySpec(
    "cu+heap path", code_ordering="cu", heap_ordering="heap_path"
)
ALL_STRATEGY_SPECS = (
    STRATEGY_CU,
    STRATEGY_METHOD,
    STRATEGY_INCREMENTAL,
    STRATEGY_STRUCTURAL,
    STRATEGY_HEAP_PATH,
    STRATEGY_COMBINED,
)


@dataclass
class ProfilingOutcome:
    """The artifacts of one profiling run."""

    profiles: ProfileBundle
    instrumented_metrics: RunMetrics
    trace_bytes: int
    lost_records: int


class WorkloadPipeline:
    """Builds and measures all binaries of one workload."""

    def __init__(
        self,
        workload: Workload,
        build_config: Optional[BuildConfig] = None,
        exec_config: Optional[ExecutionConfig] = None,
    ) -> None:
        self.workload = workload
        self.build_config = build_config or BuildConfig()
        base_exec = exec_config or ExecutionConfig()
        if workload.microservice and not base_exec.stop_on_first_response:
            from dataclasses import replace

            base_exec = replace(base_exec, stop_on_first_response=True)
        self.exec_config = base_exec
        self._program = workload.compile()

    @property
    def program(self) -> Program:
        return self._program

    def builder(self) -> NativeImageBuilder:
        return NativeImageBuilder(self._program, self.build_config)

    # -- builds ------------------------------------------------------------------

    def build_baseline(self, seed: int = 0) -> NativeImageBinary:
        return self.builder().build(mode=MODE_REGULAR, seed=seed)

    def build_instrumented(self, seed: int = 0) -> NativeImageBinary:
        return self.builder().build(mode=MODE_INSTRUMENTED, seed=seed)

    def build_optimized(
        self,
        profiles: ProfileBundle,
        strategy: Optional[StrategySpec] = None,
        seed: int = 0,
    ) -> NativeImageBinary:
        builder = self.builder()
        return builder.build(
            mode=MODE_OPTIMIZED,
            profiles=profiles,
            code_ordering=strategy.code_ordering if strategy else None,
            heap_ordering=strategy.heap_ordering if strategy else None,
            seed=seed,
        )

    # -- profiling -----------------------------------------------------------------

    def profile(self, seed: int = 0) -> ProfilingOutcome:
        """Run the instrumented binary once and post-process its traces."""
        instrumented = self.build_instrumented(seed=seed)
        mode = MODE_MMAP if self.workload.microservice else MODE_DUMP_ON_FULL
        session = TraceSession(mode=mode)
        tracer = PathTracer(instrumented.manifest, session)
        metrics = run_binary(instrumented, self.exec_config, tracer=tracer)
        profiles = build_profiles(instrumented.manifest, session.trace_files())
        stats = session.total_stats()
        return ProfilingOutcome(
            profiles=profiles,
            instrumented_metrics=metrics,
            trace_bytes=stats.bytes_written,
            lost_records=stats.lost_records,
        )

    # -- measurement ------------------------------------------------------------------

    def measure(
        self, binary: NativeImageBinary, iterations: int = 1, seed: int = 0
    ) -> List[RunMetrics]:
        """Cold-cache runs of ``binary`` (each run drops all caches)."""
        return [
            run_binary(binary, self.exec_config, run_index=(seed << 8) | index)
            for index in range(iterations)
        ]

    # -- one-shot convenience ------------------------------------------------------------

    def run_strategy(
        self, strategy: StrategySpec, seed: int = 0, iterations: int = 1
    ) -> Tuple[List[RunMetrics], List[RunMetrics]]:
        """(baseline runs, optimized runs) for one strategy at one seed."""
        baseline = self.build_baseline(seed=seed)
        outcome = self.profile(seed=seed)
        optimized = self.build_optimized(outcome.profiles, strategy, seed=seed)
        return (
            self.measure(baseline, iterations, seed),
            self.measure(optimized, iterations, seed),
        )


def metric_for_strategy(metrics: RunMetrics, strategy: StrategySpec,
                        microservice: bool) -> Dict[str, float]:
    """Extract the paper's per-strategy measurements from one run.

    Code strategies report ``.text`` faults, heap strategies ``.svm_heap``
    faults, the combined strategy both; time is end-to-end for AWFY and
    time-to-first-response for microservices (Sec. 7.1).
    """
    from ..image.sections import HEAP_SECTION, TEXT_SECTION

    if microservice and metrics.first_response_time_s is not None:
        time_s = metrics.first_response_time_s
        faults = metrics.first_response_faults or metrics.faults
    else:
        time_s = metrics.time_s
        faults = metrics.faults
    text = faults.get(TEXT_SECTION, 0)
    heap = faults.get(HEAP_SECTION, 0)
    if strategy.is_code and strategy.is_heap:
        fault_metric = text + heap
    elif strategy.is_code:
        fault_metric = text
    else:
        fault_metric = heap
    return {"faults": float(fault_metric), "time_s": time_s,
            "text_faults": float(text), "heap_faults": float(heap)}
