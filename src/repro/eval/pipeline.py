"""End-to-end pipeline: profile -> post-process -> optimize -> measure.

Implements the methodology of Fig. 1 for one workload:

1. build the **instrumented** binary and run it once under the tracing
   profiler (buffered dumps for run-to-completion workloads, memory-mapped
   buffers for microservices that are SIGKILLed after the first response);
2. post-process the traces into ordering profiles + call counts;
3. build the **optimized** binary with the requested code/heap ordering;
4. run baseline and optimized binaries with cold caches and report
   page faults per section and the simulated execution time.

With an :class:`~repro.cache.ArtifactCache` armed, every stage is
content-addressed: compiled programs, raw traces, post-processed profiles,
built images, and run metrics are keyed by digests of (workload source,
strategy, build/execution/policy configuration, toolchain version, seed)
and loaded instead of rebuilt when nothing they depend on changed.  See
:mod:`repro.cache.keys` for the exact key derivations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cache import (
    KIND_IMAGE,
    KIND_METRICS,
    KIND_PROFILE,
    KIND_PROGRAM,
    KIND_REPORT,
    KIND_TRACE,
    ArtifactCache,
    fingerprint,
    image_key,
    metrics_key,
    profile_key,
    program_key,
    source_digest,
    trace_key,
)
from ..image.binary import (
    MODE_INSTRUMENTED,
    MODE_OPTIMIZED,
    MODE_REGULAR,
    NativeImageBinary,
)
from ..image.builder import BuildConfig, NativeImageBuilder
from ..minijava.bytecode import Program
from ..minijava.frontend import compile_source
from ..obs import phase
from ..ordering.optimize import (
    CU_OPT_ORDERING,
    HEAP_OPT_ORDERING,
    OptimizeConfig,
    synthesize_optimizer_profiles,
)
from ..ordering.profiles import ProfileBundle, ProfileCompleteness
from ..postproc.framework import build_profiles
from ..profiling.tracebuf import TraceSession
from ..profiling.tracefile import (
    MODE_DUMP_ON_FULL,
    MODE_MMAP,
    pack_traces,
    unpack_traces,
)
from ..profiling.tracer import PathTracer
from ..robustness.degradation import (
    DegradationPolicy,
    DegradationReport,
    ProfilingAttempt,
)
from ..runtime.executor import ExecutionConfig, RunMetrics, run_binary
from ..validation.invariants import (
    LayoutVerificationError,
    LayoutVerificationReport,
    verify_layout,
)
from ..validation.oracle import VerificationPolicy
from ..validation.quarantine import QuarantineRegistry
from ..validation.watchdog import WatchdogReport, run_with_watchdog


@dataclass(frozen=True)
class Workload:
    """A benchmark program plus how to run/measure it.

    Frozen and picklable by construction, so workloads travel unchanged
    into the parallel scheduler's worker processes; ``source`` is the full
    MiniJava text and its byte-exact digest addresses every cached artifact
    derived from it.
    """

    name: str
    source: str
    main_class: str = "Main"
    #: microservices: measure time-to-first-response, kill after response,
    #: profile with memory-mapped buffers
    microservice: bool = False
    description: str = ""

    def compile(self) -> Program:
        """Compile ``source`` to bytecode.

        Raises the front-end's typed errors (:class:`LexError`,
        :class:`ParseError`, :class:`SemanticError`, :class:`CompileError`,
        all :class:`MiniJavaError`) on malformed source; the pipeline does
        not catch them — a workload that does not compile is a programming
        error, not a degradation.
        """
        return compile_source(self.source, main_class=self.main_class)


@dataclass(frozen=True)
class StrategySpec:
    """An ordering strategy: the paper's six, or a search-based optimizer."""

    name: str
    code_ordering: Optional[str] = None  # "cu" | "method" | "cu-opt"
    heap_ordering: Optional[str] = None  # an ID-strategy name | "heap-opt"

    @property
    def is_code(self) -> bool:
        return self.code_ordering is not None

    @property
    def is_heap(self) -> bool:
        return self.heap_ordering is not None


#: The five strategies of the evaluation plus the combined one (Sec. 7.1).
STRATEGY_CU = StrategySpec("cu", code_ordering="cu")
STRATEGY_METHOD = StrategySpec("method", code_ordering="method")
STRATEGY_INCREMENTAL = StrategySpec("incremental id", heap_ordering="incremental_id")
STRATEGY_STRUCTURAL = StrategySpec("structural hash", heap_ordering="structural_hash")
STRATEGY_HEAP_PATH = StrategySpec("heap path", heap_ordering="heap_path")
STRATEGY_COMBINED = StrategySpec(
    "cu+heap path", code_ordering="cu", heap_ordering="heap_path"
)
PAPER_STRATEGY_SPECS = (
    STRATEGY_CU,
    STRATEGY_METHOD,
    STRATEGY_INCREMENTAL,
    STRATEGY_STRUCTURAL,
    STRATEGY_HEAP_PATH,
    STRATEGY_COMBINED,
)

#: Search-based strategies (repro.ordering.optimize): the pipeline derives
#: their profiles by optimizing against the paging-simulator cost oracle
#: (see :meth:`WorkloadPipeline.optimize_profiles`).
STRATEGY_CU_OPT = StrategySpec("cu-opt", code_ordering=CU_OPT_ORDERING)
STRATEGY_HEAP_OPT = StrategySpec("heap-opt", heap_ordering=HEAP_OPT_ORDERING)
OPTIMIZER_STRATEGY_SPECS = (STRATEGY_CU_OPT, STRATEGY_HEAP_OPT)

#: Everything the scheduler/bench/api can run: paper + optimizer strategies.
ALL_STRATEGY_SPECS = PAPER_STRATEGY_SPECS + OPTIMIZER_STRATEGY_SPECS


@dataclass
class ProfilingOutcome:
    """The artifacts of one profiling run."""

    profiles: ProfileBundle
    instrumented_metrics: RunMetrics
    trace_bytes: int
    lost_records: int
    #: salvage accounting (lenient post-processing only; None = strict)
    completeness: Optional[ProfileCompleteness] = None


class WorkloadPipeline:
    """Builds and measures all binaries of one workload.

    ``degradation_policy`` arms graceful degradation: profiling failures
    are retried with perturbed seeds, damaged traces are salvaged instead
    of raising, and optimized builds fall back to the default layout when
    profiles are empty or mismatched.  Every decision lands in
    ``last_degradation_report``.  ``fault_hook`` (usually a
    :class:`repro.robustness.faults.FaultInjector`) is threaded into every
    profiling session's trace buffers.

    ``verification`` arms the layout-verification rung: every optimized
    build is structurally checked; a violation quarantines the (workload,
    strategy) ordering in ``self.quarantine`` and rolls the build back to
    the default layout.  When the policy carries watchdog budgets, all
    ``measure`` runs are bounded by them; trips land in
    ``last_watchdog_reports`` and the degradation report.

    ``cache`` (an :class:`~repro.cache.ArtifactCache`) makes every stage
    content-addressed: unchanged (source, strategy, config, seed)
    combinations load their compiled program, traces, profiles, images,
    and metrics instead of recomputing them.  Caching is bypassed whenever
    a non-pure hook is armed (``fault_hook``, ``verification.mutator``) —
    injected faults and mutations must never be replayed from disk.  A
    cache hit restores the associated verification report and re-registers
    any quarantine conviction recorded by the building run, so the
    verification rung survives the cache.
    """

    def __init__(
        self,
        workload: Workload,
        build_config: Optional[BuildConfig] = None,
        exec_config: Optional[ExecutionConfig] = None,
        degradation_policy: Optional[DegradationPolicy] = None,
        fault_hook: Optional[object] = None,
        verification: Optional[VerificationPolicy] = None,
        cache: Optional[ArtifactCache] = None,
        optimize_config: Optional[OptimizeConfig] = None,
    ) -> None:
        self.workload = workload
        self.build_config = build_config or BuildConfig()
        base_exec = exec_config or ExecutionConfig()
        if workload.microservice and not base_exec.stop_on_first_response:
            from dataclasses import replace

            base_exec = replace(base_exec, stop_on_first_response=True)
        self.exec_config = base_exec
        self.degradation_policy = degradation_policy
        self.fault_hook = fault_hook
        self.verification = verification
        self.cache = cache
        #: drives the search-based strategies (cu-opt / heap-opt); part of
        #: every augmented bundle's content, so cache keys stay honest
        self.optimize_config = optimize_config or OptimizeConfig()
        self.quarantine = QuarantineRegistry()
        self.last_degradation_report: Optional[DegradationReport] = None
        self.last_verification_report: Optional[LayoutVerificationReport] = None
        self.last_watchdog_reports: List[WatchdogReport] = []
        #: compiled lazily (a fully cache-hit sweep never needs it)
        self._program: Optional[Program] = None
        self._src_digest = source_digest(workload.source)
        self._build_fp = self.build_config.fingerprint()
        self._exec_fp = self.exec_config.fingerprint()
        self._policy_fp = (
            fingerprint(degradation_policy) if degradation_policy else ""
        )
        self._watchdog_fp = (
            fingerprint(verification.watchdog)
            if verification is not None and verification.watchdog is not None
            else ""
        )

    @property
    def _cache_armed(self) -> bool:
        """Whether lookups/stores may be served for this configuration."""
        return (
            self.cache is not None
            and self.fault_hook is None
            and (self.verification is None or self.verification.mutator is None)
        )

    @property
    def program(self) -> Program:
        """The workload's compiled bytecode (compiled or cache-loaded lazily)."""
        if self._program is None:
            key = program_key(self._src_digest)
            if self._cache_armed:
                self._program = self.cache.get(KIND_PROGRAM, key)
            if self._program is None:
                with phase("compile", workload=self.workload.name):
                    self._program = self.workload.compile()
                if self._cache_armed:
                    self.cache.put(KIND_PROGRAM, key, self._program,
                                   note=self.workload.name)
        return self._program

    def builder(self) -> NativeImageBuilder:
        """A fresh builder over the compiled program (one per build)."""
        return NativeImageBuilder(self.program, self.build_config)

    # -- builds ------------------------------------------------------------------

    def _cached_build(self, mode: str, seed: int) -> NativeImageBinary:
        """Regular/instrumented build, served content-addressed if possible."""
        key = image_key(self._src_digest, self._build_fp, mode,
                        None, None, "", seed)
        if self._cache_armed:
            binary = self.cache.get(KIND_IMAGE, key)
            if binary is not None:
                binary._cache_key = key
                return binary
        binary = self.builder().build(mode=mode, seed=seed)
        binary._cache_key = key
        if self._cache_armed:
            self.cache.put(KIND_IMAGE, key, binary,
                           note=f"{self.workload.name} {mode}")
        return binary

    def build_baseline(self, seed: int = 0) -> NativeImageBinary:
        """Build (or cache-load) the regular image for ``seed``."""
        return self._cached_build(MODE_REGULAR, seed)

    def build_instrumented(self, seed: int = 0) -> NativeImageBinary:
        """Build (or cache-load) the instrumented image for ``seed``."""
        return self._cached_build(MODE_INSTRUMENTED, seed)

    def build_optimized(
        self,
        profiles: ProfileBundle,
        strategy: Optional[StrategySpec] = None,
        seed: int = 0,
    ) -> NativeImageBinary:
        """Profile-guided build with the degradation + verification rungs.

        Inputs: the profile bundle of :meth:`profile`, an ordering
        ``strategy`` (``None`` = default layout with PGO inlining only),
        and the build ``seed``.  Returns the final (possibly rolled-back)
        binary.  Raises :class:`ValueError` from the builder when profiles
        lack a requested ordering and no degradation policy is armed, and
        :class:`LayoutVerificationError` when even a default-layout rebuild
        fails structural verification (a broken builder, not a broken
        profile).

        With a cache armed, the key binds the strategy, the *content
        digest* of ``profiles``, both policies, and the seed; a hit
        restores the built image, its verification report, the degradation
        report, and any quarantine conviction of the building run.
        """
        self.last_verification_report = None
        if self._quarantine_applies(strategy):
            return self._build_quarantined(profiles, strategy, seed)
        profiles = self.optimize_profiles(profiles, strategy, seed=seed)
        key = self._optimized_key(profiles, strategy, seed)
        if key is not None:
            binary = self.cache.get(KIND_IMAGE, key)
            if binary is not None:
                binary._cache_key = key
                self._restore_rung(self.cache.get(KIND_REPORT, key), strategy)
                return binary
        if self.degradation_policy is not None:
            binary = self._build_optimized_degraded(profiles, strategy, seed)
        else:
            binary = self._build_plain(profiles, strategy, seed)
        if self.verification is not None:
            binary = self._verification_rung(binary, profiles, strategy, seed)
        binary._cache_key = key
        if key is not None:
            entry = (self.quarantine.entry_for(self.workload.name, strategy.name)
                     if strategy is not None else None)
            note = (f"{self.workload.name} optimized "
                    f"({strategy.name if strategy else 'default'})")
            # image payload and rung decisions live in separate entries so
            # the warm fast path (cached_strategy_runs) can restore the
            # rung without unpickling the image
            self.cache.put(KIND_IMAGE, key, binary, note=note)
            self.cache.put(KIND_REPORT, key, {
                "verification": self.last_verification_report,
                "degradation": self.last_degradation_report,
                "quarantine": entry,
            }, note=note)
        return binary

    def optimize_profiles(
        self,
        profiles: ProfileBundle,
        strategy: Optional[StrategySpec],
        seed: int = 0,
    ) -> ProfileBundle:
        """Derive search-based orderings when ``strategy`` needs them.

        For the optimizer strategies (``cu-opt``/``heap-opt``) this runs
        the layout search of :mod:`repro.ordering.optimize` against a
        cached *reference* build (default layout, PGO inlining — the
        source of unit sizes) and returns a new bundle carrying the
        derived profile; for every other strategy — or when the bundle
        already carries the profile — the input bundle returns unchanged.
        Pure and deterministic given (profiles, strategy,
        ``self.optimize_config``, seed), so the augmented bundle's digest
        is stable and both :meth:`build_optimized` and the warm fast path
        :meth:`cached_strategy_runs` derive identical cache keys.  When
        the seed profiles a section's search needs are missing, no profile
        is added and the degradation ladder falls back as usual.
        """
        if strategy is None:
            return profiles
        kinds = []
        if (strategy.code_ordering == CU_OPT_ORDERING
                and CU_OPT_ORDERING not in profiles.code):
            kinds.append("code")
        if (strategy.heap_ordering == HEAP_OPT_ORDERING
                and HEAP_OPT_ORDERING not in profiles.heap):
            kinds.append("heap")
        if not kinds:
            return profiles
        # Reference build: default layout + PGO inlining, so unit sizes
        # match what the final build will place.  strategy=None never
        # recurses back into this method.
        reference = self.build_optimized(profiles, None, seed=seed)
        with phase("optimize", workload=self.workload.name,
                   strategy=strategy.name):
            return synthesize_optimizer_profiles(
                reference, profiles, kinds, self.optimize_config)

    def _optimized_key(self, profiles: ProfileBundle,
                       strategy: Optional[StrategySpec],
                       seed: int) -> Optional[str]:
        """Cache key of one optimized build; ``None`` = do not cache."""
        if not self._cache_armed:
            return None
        # The final binary depends on the degradation ladder (fallbacks)
        # and the verification rung (rollback), so both policies join the
        # profile digest in the key material.
        verif_fp = fingerprint({
            "verify_structure": self.verification.verify_structure,
            "quarantine": self.verification.quarantine,
        }) if self.verification is not None else ""
        return image_key(
            self._src_digest, self._build_fp, MODE_OPTIMIZED,
            strategy.code_ordering if strategy else None,
            strategy.heap_ordering if strategy else None,
            f"{profiles.digest()}/{self._policy_fp}/{verif_fp}", seed,
        )

    def _restore_rung(self, rung: Optional[Dict[str, object]],
                      strategy: Optional[StrategySpec]) -> None:
        """Replay a cached build's rung decisions (reports + quarantine)."""
        if rung is None:
            return
        self.last_verification_report = rung.get("verification")
        report = rung.get("degradation")
        if report is not None:
            self.last_degradation_report = report
        entry = rung.get("quarantine")
        if (entry is not None and strategy is not None
                and self.verification is not None
                and self.verification.quarantine):
            self.quarantine.quarantine(entry.workload, entry.strategy,
                                       entry.reason,
                                       layout_digest=entry.layout_digest)

    def _build_plain(
        self,
        profiles: ProfileBundle,
        strategy: Optional[StrategySpec],
        seed: int,
    ) -> NativeImageBinary:
        return self.builder().build(
            mode=MODE_OPTIMIZED,
            profiles=profiles,
            code_ordering=strategy.code_ordering if strategy else None,
            heap_ordering=strategy.heap_ordering if strategy else None,
            seed=seed,
        )

    # -- layout verification rung (quarantine-and-rollback) ----------------

    def _quarantine_applies(self, strategy: Optional[StrategySpec]) -> bool:
        return (self.verification is not None and strategy is not None
                and (strategy.is_code or strategy.is_heap)
                and self.quarantine.is_quarantined(self.workload.name,
                                                   strategy.name))

    def _build_quarantined(
        self, profiles: ProfileBundle, strategy: StrategySpec, seed: int
    ) -> NativeImageBinary:
        """Default-layout build for a quarantined ordering profile."""
        entry = self.quarantine.entry_for(self.workload.name, strategy.name)
        report = self._degradation_report()
        report.strategy = strategy.name
        report.quarantined = True
        report.layout_fallback = True
        report.note(f"ordering profile quarantined ({entry.reason}); "
                    "building the default layout")
        binary = self._build_plain(profiles, None, seed)
        if self.verification.verify_structure:
            with phase("verify", workload=self.workload.name):
                self.last_verification_report = verify_layout(binary)
        return binary

    def _verification_rung(
        self,
        binary: NativeImageBinary,
        profiles: ProfileBundle,
        strategy: Optional[StrategySpec],
        seed: int,
    ) -> NativeImageBinary:
        """Structurally verify an optimized build; quarantine + roll back.

        A violation on an ordered build convicts the ordering profile: the
        (workload, strategy) pair is quarantined (policy permitting) and
        the binary replaced by a default-layout rebuild, which must verify
        clean — if even that fails, the builder itself is broken and
        :class:`LayoutVerificationError` propagates.
        """
        policy = self.verification
        if not policy.verify_structure:
            return binary
        has_ordering = (binary.code_ordering is not None
                        or binary.heap_ordering is not None)
        if policy.mutator is not None and has_ordering:
            policy.mutator.mutate(binary)
        with phase("verify", workload=self.workload.name,
                   strategy=strategy.name if strategy else ""):
            report = verify_layout(binary)
        self.last_verification_report = report
        if report.ok:
            return binary
        if not has_ordering:
            # Default layouts have nothing to roll back to.
            raise LayoutVerificationError(report)
        degradation = self._degradation_report()
        if strategy is not None:
            degradation.strategy = strategy.name
        degradation.layout_fallback = True
        degradation.verification = report
        codes = ", ".join(sorted(report.codes()))
        degradation.note(f"layout verification failed ({codes}); "
                         "rolled back to the default layout")
        if policy.quarantine and strategy is not None:
            self.quarantine.quarantine(
                self.workload.name, strategy.name,
                f"layout verification failed: {codes}",
                layout_digest=report.layout_digest,
            )
            degradation.quarantined = True
        rollback = self._build_plain(profiles, None, seed)
        with phase("verify", workload=self.workload.name, rollback=True):
            rollback_report = verify_layout(rollback)
        self.last_verification_report = rollback_report
        if not rollback_report.ok:
            raise LayoutVerificationError(rollback_report)
        return rollback

    def _build_optimized_degraded(
        self,
        profiles: ProfileBundle,
        strategy: Optional[StrategySpec],
        seed: int,
    ) -> NativeImageBinary:
        """Optimized build that downgrades instead of raising.

        Missing or empty profiles strip the corresponding ordering; a heap
        ID match rate below the policy floor (profile from a mismatched
        build) rebuilds with the default traversal layout.
        """
        policy = self.degradation_policy
        report = self._degradation_report()
        report.strategy = strategy.name if strategy else ""
        code = strategy.code_ordering if strategy else None
        heap = strategy.heap_ordering if strategy else None
        if code is not None:
            code_profile = profiles.code_profile(code)
            if code_profile is None or not code_profile.signatures:
                report.code_fallback = True
                report.note(
                    f"no usable {code!r} code profile; "
                    "keeping default (alphabetical) CU order"
                )
                code = None
        if heap is not None:
            heap_profile = profiles.heap_profile(heap)
            if heap_profile is None or not heap_profile.ids:
                report.heap_fallback = True
                report.note(
                    f"no usable {heap!r} heap profile; "
                    "keeping default (traversal) object order"
                )
                heap = None
        builder = self.builder()
        binary = builder.build(
            mode=MODE_OPTIMIZED, profiles=profiles,
            code_ordering=code, heap_ordering=heap, seed=seed,
        )
        match = builder.last_match_report
        if heap is not None and match is not None:
            report.heap_match_rate = match.profile_match_rate
            if match.profile_match_rate < policy.min_match_rate:
                report.heap_fallback = True
                report.note(
                    f"heap ID match rate {match.profile_match_rate:.0%} below "
                    f"the {policy.min_match_rate:.0%} floor (profile from a "
                    "mismatched build?); rebuilt with default object order"
                )
                binary = self.builder().build(
                    mode=MODE_OPTIMIZED, profiles=profiles,
                    code_ordering=code, heap_ordering=None, seed=seed,
                )
        return binary

    def _degradation_report(self) -> DegradationReport:
        if self.last_degradation_report is None:
            self.last_degradation_report = DegradationReport(
                workload=self.workload.name
            )
        return self.last_degradation_report

    # -- profiling -----------------------------------------------------------------

    def profile(self, seed: int = 0) -> ProfilingOutcome:
        """Run the instrumented binary once and post-process its traces.

        Input: the build/run ``seed``.  Returns a :class:`ProfilingOutcome`
        carrying the ordering profiles, the instrumented run's metrics, and
        salvage accounting.  Without a degradation policy, trace damage
        raises the typed :class:`TraceDecodeError`; with one armed, failed
        or damaged profiling runs are retried with perturbed seeds and the
        traces parsed leniently — this method then never raises on trace
        damage, worst case returning an empty bundle that the optimized
        build turns into a default-layout fallback.

        Caching is layered: a *profile* hit returns the post-processed
        outcome outright; otherwise a *trace* hit replays the raw trace
        bytes through post-processing without re-running the instrumented
        binary; only a double miss runs the profiler.  Fault-injected
        sessions (``fault_hook``) are never cached.
        """
        if not self._cache_armed:
            return self._profile_uncached(seed)
        key = profile_key(self._src_digest, self._build_fp,
                          self._profiler_fp(), seed, self._policy_fp)
        cached = self.cache.get(KIND_PROFILE, key)
        if cached is not None:
            outcome, report = cached
            if report is not None:
                self.last_degradation_report = report
            return outcome
        outcome = self._profile_uncached(seed)
        self.cache.put(KIND_PROFILE, key,
                       (outcome, self.last_degradation_report),
                       note=self.workload.name)
        return outcome

    def _profile_uncached(self, seed: int) -> ProfilingOutcome:
        if self.degradation_policy is None:
            return self._profile_once(seed, lenient=self.fault_hook is not None)
        return self._profile_with_degradation(seed)

    def _profiler_fp(self) -> str:
        """Fingerprint of everything shaping trace content beyond the build."""
        mode = MODE_MMAP if self.workload.microservice else MODE_DUMP_ON_FULL
        return f"{self._exec_fp}/mode{mode}"

    def _profile_once(self, seed: int, lenient: bool) -> ProfilingOutcome:
        tkey = None
        if self._cache_armed:
            tkey = trace_key(self._src_digest, self._build_fp,
                             self._profiler_fp(), seed)
            packed = self.cache.get(KIND_TRACE, tkey)
            if packed is not None:
                return self._postprocess_traces(packed, seed, lenient)
        instrumented = self.build_instrumented(seed=seed)
        mode = MODE_MMAP if self.workload.microservice else MODE_DUMP_ON_FULL
        session = TraceSession(mode=mode, fault_hook=self.fault_hook)
        tracer = PathTracer(instrumented.manifest, session)
        with phase("trace", workload=self.workload.name, seed=seed):
            metrics = run_binary(instrumented, self.exec_config, tracer=tracer)
        trace_files = session.trace_files()
        with phase("post-process", workload=self.workload.name):
            profiles = build_profiles(instrumented.manifest, trace_files,
                                      lenient=lenient)
        stats = session.total_stats()
        if tkey is not None:
            self.cache.put(KIND_TRACE, tkey, {
                "traces": pack_traces(trace_files),
                "metrics": metrics,
                "trace_bytes": stats.bytes_written,
                "lost_records": stats.lost_records,
            }, note=self.workload.name)
        return ProfilingOutcome(
            profiles=profiles,
            instrumented_metrics=metrics,
            trace_bytes=stats.bytes_written,
            lost_records=stats.lost_records,
            completeness=profiles.completeness,
        )

    def _postprocess_traces(self, packed: Dict[str, object], seed: int,
                            lenient: bool) -> ProfilingOutcome:
        """Rebuild profiles from cached raw traces (no instrumented run)."""
        instrumented = self.build_instrumented(seed=seed)
        with phase("post-process", workload=self.workload.name, replay=True):
            profiles = build_profiles(instrumented.manifest,
                                      unpack_traces(packed["traces"]),
                                      lenient=lenient)
        return ProfilingOutcome(
            profiles=profiles,
            instrumented_metrics=packed["metrics"],
            trace_bytes=packed["trace_bytes"],
            lost_records=packed["lost_records"],
            completeness=profiles.completeness,
        )

    def _profile_with_degradation(self, seed: int) -> ProfilingOutcome:
        policy = self.degradation_policy
        self.last_degradation_report = None
        report = self._degradation_report()
        fallback_outcome: Optional[ProfilingOutcome] = None
        for attempt in range(policy.max_retries + 1):
            attempt_seed = policy.retry_seed(seed, attempt)
            try:
                outcome = self._profile_once(attempt_seed, lenient=True)
            except Exception as exc:  # a profiling run died; retry
                report.attempts.append(ProfilingAttempt(
                    attempt=attempt, seed=attempt_seed, status="error",
                    detail=f"{type(exc).__name__}: {exc}",
                ))
                continue
            completeness = outcome.completeness
            usable = completeness.usable_records if completeness else 0
            if usable >= policy.min_records:
                status = "ok" if (completeness is None
                                  or completeness.complete) else "salvaged"
                report.attempts.append(ProfilingAttempt(
                    attempt=attempt, seed=attempt_seed, status=status,
                    records=usable,
                ))
                report.completeness = completeness
                report.profile_source = "profiled" if status == "ok" else "salvaged"
                if status == "salvaged":
                    report.note(
                        f"profile salvaged from damaged trace(s): "
                        f"{completeness.summary()}"
                    )
                return outcome
            report.attempts.append(ProfilingAttempt(
                attempt=attempt, seed=attempt_seed, status="empty",
                records=usable,
                detail=completeness.summary() if completeness else "",
            ))
            fallback_outcome = outcome
        report.profile_source = "none"
        report.note(
            f"profiling produced no usable records after "
            f"{policy.max_retries + 1} attempt(s); optimized build will "
            "fall back to the default layout"
        )
        if fallback_outcome is None:
            fallback_outcome = ProfilingOutcome(
                profiles=ProfileBundle(completeness=ProfileCompleteness()),
                instrumented_metrics=RunMetrics(),
                trace_bytes=0,
                lost_records=0,
                completeness=ProfileCompleteness(),
            )
        report.completeness = fallback_outcome.completeness
        return fallback_outcome

    # -- measurement ------------------------------------------------------------------

    def measure(
        self, binary: NativeImageBinary, iterations: int = 1, seed: int = 0
    ) -> List[RunMetrics]:
        """Cold-cache runs of ``binary`` (each run drops all caches).

        Inputs: a built image, the number of ``iterations``, and the
        ``seed`` folded into each run index.  Returns one
        :class:`RunMetrics` per iteration.  With watchdog budgets armed
        (``verification.watchdog``), every run is bounded; a tripped run
        contributes empty metrics and a note in the degradation report
        rather than wedging the measurement loop.

        Measurements of cache-addressed binaries are themselves cached
        (the simulator is deterministic, so replaying metrics is exact);
        binaries built outside the cache path are always re-measured.
        """
        mkey = None
        if self._cache_armed and getattr(binary, "_cache_key", None):
            mkey = metrics_key(binary._cache_key, self._exec_fp,
                               iterations, seed, self._watchdog_fp)
            cached = self.cache.get(KIND_METRICS, mkey)
            if cached is not None:
                results, watchdog_reports = cached
                self.last_watchdog_reports = watchdog_reports
                return results
        results = self._measure_uncached(binary, iterations, seed)
        if mkey is not None:
            self.cache.put(KIND_METRICS, mkey,
                           (results, self.last_watchdog_reports),
                           note=f"{self.workload.name} {binary.mode}")
        return results

    def _measure_uncached(
        self, binary: NativeImageBinary, iterations: int, seed: int
    ) -> List[RunMetrics]:
        with phase("measure", workload=self.workload.name,
                   mode=binary.mode, runs=iterations):
            return self._measure_runs(binary, iterations, seed)

    def _measure_runs(
        self, binary: NativeImageBinary, iterations: int, seed: int
    ) -> List[RunMetrics]:
        budget = self.verification.watchdog if self.verification else None
        self.last_watchdog_reports = []
        if budget is None:
            return [
                run_binary(binary, self.exec_config,
                           run_index=(seed << 8) | index)
                for index in range(iterations)
            ]
        results: List[RunMetrics] = []
        for index in range(iterations):
            watchdog = run_with_watchdog(
                binary, self.exec_config, budget,
                run_index=(seed << 8) | index,
            )
            self.last_watchdog_reports.append(watchdog)
            if watchdog.metrics is not None:
                results.append(watchdog.metrics)
            else:
                self._degradation_report().note(
                    f"{watchdog.describe()} (run {index}, {binary.mode} binary)"
                )
                results.append(RunMetrics())
        return results

    # -- one-shot convenience ------------------------------------------------------------

    def run_strategy(
        self, strategy: StrategySpec, seed: int = 0, iterations: int = 1
    ) -> Tuple[List[RunMetrics], List[RunMetrics]]:
        """(baseline runs, optimized runs) for one strategy at one seed.

        The one-shot convenience used by ``repro compare``/``robustness``
        and the bench harness's serial reference: builds the baseline,
        profiles, builds the optimized image, and measures both.  Raises
        whatever the underlying stages raise (see :meth:`profile` and
        :meth:`build_optimized`); with degradation + verification armed it
        only raises on programming errors, never on damaged inputs.
        """
        baseline = self.build_baseline(seed=seed)
        outcome = self.profile(seed=seed)
        optimized = self.build_optimized(outcome.profiles, strategy, seed=seed)
        return (
            self.measure(baseline, iterations, seed),
            self.measure(optimized, iterations, seed),
        )

    def cached_strategy_runs(
        self, strategy: StrategySpec, seed: int = 0, iterations: int = 1
    ) -> Optional[Tuple[List[RunMetrics], List[RunMetrics]]]:
        """Warm-only counterpart of :meth:`run_strategy`.

        When every measurement of the (strategy, seed) cell is already
        cached, returns ``(baseline runs, optimized runs)`` without
        unpickling either image payload — metrics entries are keyed by
        image *key*, not image *content*, so the binaries never need to be
        loaded.  Rung decisions (verification report, degradation report,
        quarantine conviction) are restored from their side entry exactly
        as a cached :meth:`build_optimized` would.  Returns ``None`` on
        any miss; callers fall back to :meth:`run_strategy`.
        """
        if not self._cache_armed:
            return None
        base_key = image_key(self._src_digest, self._build_fp, MODE_REGULAR,
                             None, None, "", seed)
        base_runs = self._cached_measurements(base_key, iterations, seed)
        if base_runs is None:
            return None
        outcome = self.profile(seed=seed)  # a warm profile() is itself a hit
        if self._quarantine_applies(strategy):
            return None
        # Optimizer strategies key on the *augmented* bundle; on a warm
        # cache the reference build inside is itself a hit.
        profiles = self.optimize_profiles(outcome.profiles, strategy,
                                          seed=seed)
        opt_key = self._optimized_key(profiles, strategy, seed)
        if opt_key is None or not self.cache.contains(KIND_REPORT, opt_key):
            return None
        opt_runs = self._cached_measurements(opt_key, iterations, seed)
        if opt_runs is None:
            return None
        self.last_verification_report = None
        self._restore_rung(self.cache.get(KIND_REPORT, opt_key), strategy)
        return base_runs, opt_runs

    def _cached_measurements(
        self, image_key_str: str, iterations: int, seed: int
    ) -> Optional[List[RunMetrics]]:
        """Cached runs of an image identified only by its cache key."""
        mkey = metrics_key(image_key_str, self._exec_fp, iterations, seed,
                           self._watchdog_fp)
        if not self.cache.contains(KIND_METRICS, mkey):
            return None  # probe silently: the builder path records the miss
        cached = self.cache.get(KIND_METRICS, mkey)
        if cached is None:
            return None
        results, watchdog_reports = cached
        self.last_watchdog_reports = watchdog_reports
        return results


def metric_for_strategy(metrics: RunMetrics, strategy: StrategySpec,
                        microservice: bool) -> Dict[str, float]:
    """Extract the paper's per-strategy measurements from one run.

    Code strategies report ``.text`` faults, heap strategies ``.svm_heap``
    faults, the combined strategy both; time is end-to-end for AWFY and
    time-to-first-response for microservices (Sec. 7.1).
    """
    from ..image.sections import HEAP_SECTION, TEXT_SECTION

    if microservice and metrics.first_response_time_s is not None:
        time_s = metrics.first_response_time_s
        faults = metrics.first_response_faults or metrics.faults
    else:
        time_s = metrics.time_s
        faults = metrics.faults
    text = faults.get(TEXT_SECTION, 0)
    heap = faults.get(HEAP_SECTION, 0)
    if strategy.is_code and strategy.is_heap:
        fault_metric = text + heap
    elif strategy.is_code:
        fault_metric = text
    else:
        fault_metric = heap
    return {"faults": float(fault_metric), "time_s": time_s,
            "text_faults": float(text), "heap_faults": float(heap)}
