"""Heap-snapshot visualization — the paper's stated future work.

Appendix A: "we plan to develop a similar visualization for the
heap-snapshot section of the binary.  This visualization may enable a
fine-grained analysis of the included objects and a better understanding of
the results."  This module provides it:

* a Fig. 6-style page map of ``.svm_heap`` (faulted / mapped / untouched);
* a per-page breakdown of which object types live on the faulted pages —
  the "fine-grained analysis of the included objects";
* occupancy statistics showing how small the accessed fraction is (the
  paper measures ~4% of objects accessed on AWFY).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..image.binary import NativeImageBinary
from ..image.sections import HEAP_SECTION
from ..runtime.executor import ExecutionConfig, run_binary
from ..util.pagemath import page_count, pages_spanned


@dataclass
class HeapPageMap:
    """Page-level fault picture of the ``.svm_heap`` section."""

    cells: str
    faulted: int
    mapped_not_faulted: int
    unmapped: int
    #: page index -> most common object types on that page
    page_types: Dict[int, List[Tuple[str, int]]]
    accessed_fraction: float  # objects on faulted pages / all objects

    def render(self, width: int = 64) -> str:
        rows = [
            self.cells[index : index + width]
            for index in range(0, len(self.cells), width)
        ]
        legend = (
            f"# faulted: {self.faulted}   o mapped-no-fault: "
            f"{self.mapped_not_faulted}   . untouched: {self.unmapped}   "
            f"objects on faulted pages: {self.accessed_fraction:.0%}"
        )
        return "\n".join(rows + [legend])

    def hot_page_report(self, top: int = 8) -> str:
        """What actually lives on the faulted pages."""
        lines = ["faulted pages (object types per page):"]
        shown = 0
        for page in sorted(self.page_types):
            if self.cells[page] != "#":
                continue
            types = ", ".join(f"{name} x{count}" for name, count in self.page_types[page][:4])
            lines.append(f"  page {page:4d}: {types}")
            shown += 1
            if shown >= top:
                remaining = self.faulted - shown
                if remaining > 0:
                    lines.append(f"  ... and {remaining} more faulted pages")
                break
        return "\n".join(lines)


def heap_page_map(
    binary: NativeImageBinary,
    exec_config: Optional[ExecutionConfig] = None,
    fault_around_pages: int = 0,
) -> HeapPageMap:
    """Run ``binary`` cold and build its ``.svm_heap`` page map."""
    config = exec_config or ExecutionConfig()
    config = replace(config, fault_around_pages=fault_around_pages)
    metrics = run_binary(binary, config)

    total_pages = max(page_count(binary.heap.size), 1)
    faulted = metrics.faulted_pages.get(HEAP_SECTION, frozenset())
    resident = metrics.resident_pages.get(HEAP_SECTION, frozenset())

    # Which objects sit on which page (an object may span pages).
    page_type_counts: Dict[int, Counter] = {}
    objects_on_faulted = 0
    for obj in binary.heap.ordered:
        on_faulted = False
        for page in pages_spanned(obj.address, max(obj.size, 1)):
            page_type_counts.setdefault(page, Counter())[obj.type_name] += 1
            if page in faulted:
                on_faulted = True
        if on_faulted:
            objects_on_faulted += 1

    cells: List[str] = []
    counts = {"#": 0, "o": 0, ".": 0}
    for page in range(total_pages):
        if page in faulted:
            cell = "#"
        elif page in resident:
            cell = "o"
        else:
            cell = "."
        counts[cell] += 1
        cells.append(cell)

    total_objects = max(len(binary.heap.ordered), 1)
    return HeapPageMap(
        cells="".join(cells),
        faulted=counts["#"],
        mapped_not_faulted=counts["o"],
        unmapped=counts["."],
        page_types={
            page: counter.most_common() for page, counter in page_type_counts.items()
        },
        accessed_fraction=objects_on_faulted / total_objects,
    )


def compare_heap_maps(regular: HeapPageMap, optimized: HeapPageMap,
                      width: int = 64) -> str:
    """Regular vs heap-path-ordered ``.svm_heap``, stacked."""
    return "\n".join([
        "(a) regular binary",
        regular.render(width),
        "",
        "(b) binary optimized with the heap path strategy",
        optimized.render(width),
    ])


def heap_front_density(page_map: HeapPageMap, fraction: float = 0.25) -> float:
    """Share of faulted heap pages in the first ``fraction`` of the section."""
    cells = page_map.cells
    cutoff = max(int(len(cells) * fraction), 1)
    front = cells[:cutoff].count("#")
    total = cells.count("#")
    return front / total if total else 0.0
