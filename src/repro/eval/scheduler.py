"""Parallel evaluation scheduler: the workload × strategy matrix on N cores.

The paper's evaluation sweeps 14 AWFY benchmarks plus 3 microservice
frameworks across six ordering strategies; re-running that serially from
scratch repeats an enormous amount of shared work (every strategy of a
workload shares its compile, baseline build, and profiling run).  This
module fans the matrix out across a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping three invariants:

* **Determinism** — each task's seed is a pure function of (base seed,
  workload name, strategy name), so results are byte-identical regardless
  of worker count, task order, or which worker ran what.  ``parallel=False``
  runs the same tasks inline for differential testing.
* **Artifact sharing** — each worker process keeps one
  :class:`WorkloadPipeline` per workload (compile once, baseline once,
  profile once) and all workers share one content-addressed
  :class:`~repro.cache.ArtifactCache` on disk, so cross-process repeats are
  loads, not rebuilds.
* **The verification rung survives** — pipelines run with whatever
  :class:`VerificationPolicy`/:class:`DegradationPolicy` the scheduler was
  configured with; watchdog budgets are reused across every task a worker
  executes, and per-task quarantine convictions travel back in the
  :class:`TaskResult` and are merged into the sweep-level registry.

Typical use::

    from repro.eval.scheduler import SchedulerConfig, SweepScheduler

    scheduler = SweepScheduler(SchedulerConfig(cache_dir=".repro-cache"))
    sweep = scheduler.run(awfy_suite().values(), ALL_STRATEGY_SPECS)
    print(sweep.summary())
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..cache import ArtifactCache, CacheStats
from ..image.builder import BuildConfig
from ..obs import MetricsSnapshot, get_registry, get_tracer
from ..robustness.degradation import DegradationPolicy
from ..runtime.executor import ExecutionConfig, RunMetrics
from ..util.murmur3 import murmur3_64
from ..validation.oracle import VerificationPolicy
from ..validation.quarantine import QuarantineRegistry
from .pipeline import (
    ALL_STRATEGY_SPECS,
    StrategySpec,
    Workload,
    WorkloadPipeline,
    metric_for_strategy,
)

STRATEGY_BY_NAME: Dict[str, StrategySpec] = {
    spec.name: spec for spec in ALL_STRATEGY_SPECS
}


def task_seed(base_seed: int, workload_name: str) -> int:
    """Deterministic per-workload seed, independent of scheduling order.

    Derived by hashing the workload name under ``base_seed``, so any two
    runs of the same matrix — serial, parallel, or resumed from cache —
    agree exactly.  The seed is deliberately *not* strategy-dependent:
    every strategy of a workload then presents identical inputs for the
    strategy-independent stages (compile, baseline build, profiling run),
    and the content-addressed cache dedupes them — six strategies cost one
    profile run, exactly like :meth:`NativeImageToolchain.profile` followed
    by six ``build_optimized`` calls.
    """
    material = workload_name.encode("utf-8")
    return (base_seed + (murmur3_64(material, seed=base_seed) % 1009)) & 0x7FFFFFFF


@dataclass(frozen=True)
class SchedulerConfig:
    """Everything a worker needs to evaluate tasks (picklable by design)."""

    build_config: Optional[BuildConfig] = None
    exec_config: Optional[ExecutionConfig] = None
    degradation_policy: Optional[DegradationPolicy] = None
    verification: Optional[VerificationPolicy] = None
    #: cache directory shared by all workers; None = run uncached
    cache_dir: Optional[str] = None
    #: worker processes; 0 = one per core, 1 = inline (no pool)
    max_workers: int = 0
    #: cold-cache measurement runs per binary
    iterations: int = 1
    base_seed: int = 1

    def resolved_workers(self) -> int:
        if self.max_workers > 0:
            return self.max_workers
        return max(os.cpu_count() or 1, 1)


@dataclass(frozen=True)
class EvalTask:
    """One (workload, strategy) cell of the evaluation matrix."""

    workload: Workload
    strategy_name: str
    seed: int
    iterations: int = 1


@dataclass
class TaskResult:
    """What one matrix cell produced (plain data, cheap to pickle).

    ``baseline``/``optimized`` are canonical per-run metric dicts (faults
    by section, simulated time, op counts) — everything downstream
    consumers and the bench JSON need, none of the heavyweight run state.
    ``error`` carries a formatted exception when the task failed; the
    scheduler never lets one bad cell sink the sweep.

    ``metrics`` is the delta of the worker's metrics registry across this
    task and ``spans`` the trace events it recorded — both are shipped
    back so the scheduler can merge worker-process observability into the
    parent (and both are excluded from :meth:`canonical`, since the
    operational plane legitimately varies with scheduling).
    """

    workload: str
    strategy: str
    seed: int
    baseline: List[Dict[str, float]] = field(default_factory=list)
    optimized: List[Dict[str, float]] = field(default_factory=list)
    fault_factor: float = 1.0
    speedup: float = 1.0
    cache_hits: int = 0
    cache_misses: int = 0
    degraded: bool = False
    quarantined: bool = False
    quarantine_reason: str = ""
    wall_s: float = 0.0
    error: Optional[str] = None
    metrics: Optional[MetricsSnapshot] = None
    spans: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None

    def canonical(self) -> Dict[str, Any]:
        """Deterministic view: everything except host wall-clock.

        Two sweeps of the same matrix must agree on this dict byte-for-byte
        (the determinism tests compare its JSON serialization); ``wall_s``
        and cache counters legitimately differ run to run and are excluded.
        """
        return {
            "workload": self.workload,
            "strategy": self.strategy,
            "seed": self.seed,
            "baseline": self.baseline,
            "optimized": self.optimized,
            "fault_factor": self.fault_factor,
            "speedup": self.speedup,
            "degraded": self.degraded,
            "quarantined": self.quarantined,
            "error": self.error,
        }


def _metric_dict(metrics: RunMetrics, spec: StrategySpec,
                 microservice: bool) -> Dict[str, float]:
    out = metric_for_strategy(metrics, spec, microservice)
    out["ops"] = float(metrics.ops)
    out["total_faults"] = float(metrics.total_faults)
    return out


# -- worker side ---------------------------------------------------------------

#: per-process pipeline registry: workload name -> pipeline.  Reusing the
#: pipeline reuses the compiled program, the watchdog budgets, and the
#: in-memory quarantine registry across every task the worker executes.
_WORKER_PIPELINES: Dict[Tuple[str, Optional[str], int], WorkloadPipeline] = {}
_WORKER_CACHE: Optional[ArtifactCache] = None


def _worker_cache(config: SchedulerConfig) -> Optional[ArtifactCache]:
    global _WORKER_CACHE
    if config.cache_dir is None:
        return None
    if _WORKER_CACHE is None or str(_WORKER_CACHE.root) != config.cache_dir:
        _WORKER_CACHE = ArtifactCache(Path(config.cache_dir))
    return _WORKER_CACHE


def _worker_pipeline(workload: Workload,
                     config: SchedulerConfig) -> WorkloadPipeline:
    key = (workload.name, config.cache_dir, id(config.verification))
    pipeline = _WORKER_PIPELINES.get(key)
    if pipeline is None:
        pipeline = WorkloadPipeline(
            workload,
            build_config=config.build_config,
            exec_config=config.exec_config,
            degradation_policy=config.degradation_policy,
            verification=config.verification,
            cache=_worker_cache(config),
        )
        _WORKER_PIPELINES[key] = pipeline
    return pipeline


def run_task(task: EvalTask, config: SchedulerConfig) -> TaskResult:
    """Evaluate one matrix cell; never raises (errors land in ``.error``).

    Runs the same stages as :meth:`WorkloadPipeline.run_strategy` on a
    worker-local pipeline: baseline build, profiling, optimized build
    (through the degradation + verification rungs), and cold-cache
    measurement of both binaries.

    Observability: the task is one ``sched`` span; everything recorded in
    the process-wide registry while the task ran travels back as a
    metrics delta, and the deterministic ``sweep.*`` counters are derived
    from the canonical result so serial and parallel schedulers agree on
    them exactly.
    """
    registry = get_registry()
    tracer = get_tracer()
    registry.counter("sched.tasks.dispatched")
    metrics_before = registry.snapshot()
    span_mark = tracer.mark()
    result = TaskResult(workload=task.workload.name,
                        strategy=task.strategy_name, seed=task.seed)
    start = time.perf_counter()
    with tracer.span("task", cat="sched", workload=task.workload.name,
                     strategy=task.strategy_name, seed=task.seed):
        _run_task_body(result, task, config)
    registry.counter(
        "sched.tasks.completed" if result.ok else "sched.tasks.failed"
    )
    _record_sweep_counters(registry, result)
    result.wall_s = time.perf_counter() - start
    result.metrics = registry.snapshot().diff(metrics_before)
    result.spans = tracer.events_since(span_mark)
    return result


def _record_sweep_counters(registry, result: TaskResult) -> None:
    """The deterministic metric plane: derived only from canonical data.

    Everything here is a pure function of :meth:`TaskResult.canonical`,
    which is byte-identical across serial and parallel runs of the same
    matrix — so the merged ``sweep.*`` counters are too (the determinism
    test in ``tests/test_scheduler_bench.py`` holds the line).
    """
    registry.counter("sweep.tasks.completed" if result.ok
                     else "sweep.tasks.errors")
    if result.degraded:
        registry.counter("sweep.tasks.degraded")
    if result.quarantined:
        registry.counter("sweep.tasks.quarantined")
    registry.counter("sweep.runs.baseline", len(result.baseline))
    registry.counter("sweep.runs.optimized", len(result.optimized))
    registry.counter("sweep.faults.baseline",
                     int(sum(m["faults"] for m in result.baseline)))
    registry.counter("sweep.faults.optimized",
                     int(sum(m["faults"] for m in result.optimized)))
    registry.counter("sweep.ops",
                     int(sum(m["ops"]
                             for m in result.baseline + result.optimized)))


def _run_task_body(result: TaskResult, task: EvalTask,
                   config: SchedulerConfig) -> None:
    try:
        spec = STRATEGY_BY_NAME[task.strategy_name]
        pipeline = _worker_pipeline(task.workload, config)
        cache = pipeline.cache
        before = cache.stats.snapshot() if cache else (0, 0)

        pipeline.last_degradation_report = None  # this task's decisions only
        fast = pipeline.cached_strategy_runs(spec, seed=task.seed,
                                             iterations=task.iterations)
        if fast is not None:
            base_runs, opt_runs = fast
        else:
            baseline = pipeline.build_baseline(seed=task.seed)
            outcome = pipeline.profile(seed=task.seed)
            optimized = pipeline.build_optimized(outcome.profiles, spec,
                                                 seed=task.seed)
            base_runs = pipeline.measure(baseline, task.iterations,
                                         seed=task.seed)
            opt_runs = pipeline.measure(optimized, task.iterations,
                                        seed=task.seed)

        micro = task.workload.microservice
        result.baseline = [_metric_dict(m, spec, micro) for m in base_runs]
        result.optimized = [_metric_dict(m, spec, micro) for m in opt_runs]
        base_faults = sum(m["faults"] for m in result.baseline)
        opt_faults = sum(m["faults"] for m in result.optimized)
        base_time = sum(m["time_s"] for m in result.baseline)
        opt_time = sum(m["time_s"] for m in result.optimized)
        result.fault_factor = (base_faults / opt_faults if opt_faults
                               else float(base_faults or 1.0))
        result.speedup = base_time / opt_time if opt_time else 1.0

        report = pipeline.last_degradation_report
        if report is not None and report.degraded:
            result.degraded = True
        entry = pipeline.quarantine.entry_for(task.workload.name,
                                              spec.name)
        if entry is not None:
            result.quarantined = True
            result.quarantine_reason = entry.reason
        if cache:
            after = cache.stats.snapshot()
            result.cache_hits = after[0] - before[0]
            result.cache_misses = after[1] - before[1]
    except Exception as exc:  # one bad cell must not sink the sweep
        result.error = f"{type(exc).__name__}: {exc}"


def _run_task_tuple(payload: Tuple[EvalTask, SchedulerConfig]) -> TaskResult:
    return run_task(*payload)


# -- sweep side ---------------------------------------------------------------


@dataclass
class SweepResult:
    """Aggregate of one scheduler run over the whole matrix."""

    tasks: List[TaskResult] = field(default_factory=list)
    wall_s: float = 0.0
    workers: int = 1
    #: sum of per-task cache hit/miss deltas across all workers
    cache_hits: int = 0
    cache_misses: int = 0
    quarantine: QuarantineRegistry = field(default_factory=QuarantineRegistry)
    #: merged per-task metric deltas (all workers); the ``sweep.*`` plane
    #: of this snapshot is identical for serial and parallel runs
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)

    @property
    def ok(self) -> bool:
        return all(task.ok for task in self.tasks)

    @property
    def errors(self) -> List[TaskResult]:
        return [task for task in self.tasks if not task.ok]

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def total_ops(self) -> float:
        return sum(m["ops"] for task in self.tasks
                   for m in task.baseline + task.optimized)

    def canonical(self) -> List[Dict[str, Any]]:
        """Order- and timing-independent view of every task result."""
        return [task.canonical()
                for task in sorted(self.tasks,
                                   key=lambda t: (t.workload, t.strategy))]

    def summary(self) -> str:
        lines = [
            f"{len(self.tasks)} task(s) on {self.workers} worker(s) "
            f"in {self.wall_s:.2f}s"
        ]
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
                f"({self.cache_hit_rate:.0%})"
            )
        for task in self.errors:
            lines.append(f"FAILED {task.workload}/{task.strategy}: {task.error}")
        if len(self.quarantine):
            lines.append(self.quarantine.describe())
        return "\n".join(lines)


class SweepScheduler:
    """Fans the workload × strategy matrix out across worker processes.

    ``config.max_workers`` = 1 (or ``parallel=False`` on :meth:`run`)
    executes the identical task list inline — same seeds, same pipelines,
    same cache — which is both the degraded mode for single-core machines
    and the reference the determinism tests compare the pool against.
    """

    def __init__(self, config: Optional[SchedulerConfig] = None) -> None:
        self.config = config or SchedulerConfig()

    def build_tasks(self, workloads: Iterable[Workload],
                    strategies: Sequence[StrategySpec]) -> List[EvalTask]:
        """The deterministic task list (workload-major, strategy-minor)."""
        tasks = []
        for workload in workloads:
            for spec in strategies:
                if spec.name not in STRATEGY_BY_NAME:
                    raise KeyError(f"unknown strategy {spec.name!r}")
                tasks.append(EvalTask(
                    workload=workload,
                    strategy_name=spec.name,
                    seed=task_seed(self.config.base_seed, workload.name),
                    iterations=self.config.iterations,
                ))
        return tasks

    def run(self, workloads: Iterable[Workload],
            strategies: Sequence[StrategySpec] = ALL_STRATEGY_SPECS,
            parallel: bool = True) -> SweepResult:
        """Evaluate the full matrix; returns the aggregated sweep.

        Never raises for per-task failures (see :attr:`TaskResult.error`);
        raises :class:`KeyError` for strategies the scheduler does not
        know, before any work starts.
        """
        tasks = self.build_tasks(workloads, strategies)
        workers = self.config.resolved_workers() if parallel else 1
        workers = min(workers, max(len(tasks), 1))
        start = time.perf_counter()
        with get_tracer().span("sweep", cat="sched", tasks=len(tasks),
                               workers=workers):
            if workers <= 1:
                results = [run_task(task, self.config) for task in tasks]
            else:
                payloads = [(task, self.config) for task in tasks]
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    results = list(pool.map(_run_task_tuple, payloads))
        sweep = SweepResult(tasks=results,
                            wall_s=time.perf_counter() - start,
                            workers=workers)
        # Worker-process observability folds into the parent here.  In
        # inline mode (workers <= 1) the tasks already recorded into this
        # process's registry and tracer, so only the sweep-local snapshot
        # is built — merging the shipped deltas again would double-count;
        # either way the parent registry ends up with the same totals.
        inline = workers <= 1
        registry = get_registry()
        tracer = get_tracer()
        for task in results:
            sweep.cache_hits += task.cache_hits
            sweep.cache_misses += task.cache_misses
            if task.metrics is not None:
                sweep.metrics.merge(task.metrics)
                if not inline:
                    registry.merge_snapshot(task.metrics)
            if not inline and task.spans:
                tracer.absorb(task.spans)
            if task.quarantined:
                sweep.quarantine.quarantine(task.workload, task.strategy,
                                            task.quarantine_reason)
        return sweep
