"""Parallel evaluation scheduler: the workload × strategy matrix on N cores.

The paper's evaluation sweeps 14 AWFY benchmarks plus 3 microservice
frameworks across six ordering strategies; re-running that serially from
scratch repeats an enormous amount of shared work (every strategy of a
workload shares its compile, baseline build, and profiling run).  This
module fans the matrix out across a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping three invariants:

* **Determinism** — each task's seed is a pure function of (base seed,
  workload name, strategy name), so results are byte-identical regardless
  of worker count, task order, or which worker ran what.  ``parallel=False``
  runs the same tasks inline for differential testing.
* **Artifact sharing** — each worker process keeps one
  :class:`WorkloadPipeline` per workload (compile once, baseline once,
  profile once) and all workers share one content-addressed
  :class:`~repro.cache.ArtifactCache` on disk, so cross-process repeats are
  loads, not rebuilds.
* **The verification rung survives** — pipelines run with whatever
  :class:`VerificationPolicy`/:class:`DegradationPolicy` the scheduler was
  configured with; watchdog budgets are reused across every task a worker
  executes, and per-task quarantine convictions travel back in the
  :class:`TaskResult` and are merged into the sweep-level registry.
* **Failure is survivable** — with a :class:`RetryPolicy` armed, failed
  tasks are retried with capped exponential backoff and deterministic
  jitter (the retried attempt reuses the *same* seed, so a surviving
  retry is byte-identical to a first-try success); a hung task trips the
  per-task deadline (the :mod:`repro.validation.watchdog` pattern inside
  the worker) and is retried; a dead worker breaks the pool, which is
  respawned with every in-flight task requeued; a task that keeps failing
  is convicted as *poison* and quarantined through the PR-2 rung so the
  sweep continues; and repeated pool breakage degrades the whole sweep to
  serial inline execution.  Every recovery decision is accounted in a
  typed :class:`SweepHealthReport`.  A :class:`ChaosPolicy` injects all
  of those failures on a reproducible schedule — see
  :mod:`repro.robustness.chaos`.

Typical use::

    from repro.eval.scheduler import SchedulerConfig, SweepScheduler

    scheduler = SweepScheduler(SchedulerConfig(cache_dir=".repro-cache"))
    sweep = scheduler.run(awfy_suite().values(), ALL_STRATEGY_SPECS)
    print(sweep.summary())
"""

from __future__ import annotations

import heapq
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..cache import ArtifactCache, CacheStats
from ..image.builder import BuildConfig
from ..obs import MetricsSnapshot, get_event_log, get_registry, get_tracer
from ..robustness.chaos import (
    CHAOS_CACHE_IO,
    CHAOS_CORRUPT_ARTIFACT,
    CHAOS_CRASH_EXIT,
    CHAOS_HANG,
    CHAOS_OVERSIZED_RESULT,
    CHAOS_WORKER_CRASH,
    ChaosCacheInjector,
    ChaosPolicy,
    SimulatedWorkerCrash,
)
from ..robustness.degradation import DegradationPolicy, DegradationReport
from ..runtime.executor import ExecutionConfig, RunMetrics
from ..util.murmur3 import murmur3_64
from ..validation.oracle import VerificationPolicy
from ..validation.quarantine import QuarantineRegistry
from ..validation.watchdog import call_with_deadline
from .pipeline import (
    ALL_STRATEGY_SPECS,
    StrategySpec,
    Workload,
    WorkloadPipeline,
    metric_for_strategy,
)

STRATEGY_BY_NAME: Dict[str, StrategySpec] = {
    spec.name: spec for spec in ALL_STRATEGY_SPECS
}


def task_seed(base_seed: int, workload_name: str) -> int:
    """Deterministic per-workload seed, independent of scheduling order.

    Derived by hashing the workload name under ``base_seed``, so any two
    runs of the same matrix — serial, parallel, or resumed from cache —
    agree exactly.  The seed is deliberately *not* strategy-dependent:
    every strategy of a workload then presents identical inputs for the
    strategy-independent stages (compile, baseline build, profiling run),
    and the content-addressed cache dedupes them — six strategies cost one
    profile run, exactly like :meth:`NativeImageToolchain.profile` followed
    by six ``build_optimized`` calls.
    """
    material = workload_name.encode("utf-8")
    return (base_seed + (murmur3_64(material, seed=base_seed) % 1009)) & 0x7FFFFFFF


@dataclass(frozen=True)
class RetryPolicy:
    """Per-task retry with capped exponential backoff + deterministic jitter.

    The backoff schedule is a pure function of (task seed, cell, attempt):
    the same failing cell waits the same amount in every run — chaos
    schedules replay exactly — yet different cells de-synchronize because
    the jitter fraction is hash-derived per cell.  With ``jitter`` ≤ 1 the
    schedule is provably non-decreasing in ``attempt`` (the ×2 step always
    dominates the ≤ ×(1+jitter) jitter swing) and clamped at
    ``backoff_cap_s``.

    Retried attempts reuse the task's original seed untouched — a retry
    that survives is byte-identical to a first-try success.  A task that
    fails ``max_attempts`` times is convicted as *poison* and quarantined
    so the sweep continues without it.
    """

    #: total attempts per task (1 = no retries)
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: relative jitter amplitude in [0, 1]
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(self, seed: int, workload: str, strategy: str,
                  attempt: int) -> float:
        """Wait before re-running ``attempt + 1`` (attempt is 0-based)."""
        material = f"{workload}\x1f{strategy}\x1f{attempt}".encode("utf-8")
        frac = (murmur3_64(material, seed=seed & 0xFFFFFFFF)
                % (1 << 24)) / float(1 << 24)
        raw = self.backoff_base_s * (2 ** attempt) * (1.0 + self.jitter * frac)
        return min(raw, self.backoff_cap_s)


@dataclass(frozen=True)
class SchedulerConfig:
    """Everything a worker needs to evaluate tasks (picklable by design)."""

    build_config: Optional[BuildConfig] = None
    exec_config: Optional[ExecutionConfig] = None
    degradation_policy: Optional[DegradationPolicy] = None
    verification: Optional[VerificationPolicy] = None
    #: cache directory shared by all workers; None = run uncached
    cache_dir: Optional[str] = None
    #: worker processes; 0 = one per core, 1 = inline (no pool)
    max_workers: int = 0
    #: cold-cache measurement runs per binary
    iterations: int = 1
    base_seed: int = 1
    #: retry/backoff policy; None = one attempt per task, never quarantine
    retry: Optional[RetryPolicy] = None
    #: fault-injection schedule (tests, CI chaos smoke); None = run clean
    chaos: Optional[ChaosPolicy] = None
    #: per-task wall-clock ceiling enforced inside the worker (the
    #: :func:`repro.validation.watchdog.call_with_deadline` pattern);
    #: None = unbounded.  A tripped deadline fails the attempt, which the
    #: retry policy then handles like any other failure.
    task_deadline_s: Optional[float] = None
    #: pool breakages tolerated before the sweep degrades to serial
    pool_break_limit: int = 3

    def resolved_workers(self) -> int:
        if self.max_workers > 0:
            return self.max_workers
        return max(os.cpu_count() or 1, 1)


@dataclass(frozen=True)
class EvalTask:
    """One (workload, strategy) cell of the evaluation matrix."""

    workload: Workload
    strategy_name: str
    seed: int
    iterations: int = 1


@dataclass
class TaskResult:
    """What one matrix cell produced (plain data, cheap to pickle).

    ``baseline``/``optimized`` are canonical per-run metric dicts (faults
    by section, simulated time, op counts) — everything downstream
    consumers and the bench JSON need, none of the heavyweight run state.
    ``error`` carries a formatted exception when the task failed; the
    scheduler never lets one bad cell sink the sweep.

    ``metrics`` is the delta of the worker's metrics registry across this
    task and ``spans`` the trace events it recorded — both are shipped
    back so the scheduler can merge worker-process observability into the
    parent (and both are excluded from :meth:`canonical`, since the
    operational plane legitimately varies with scheduling).
    """

    workload: str
    strategy: str
    seed: int
    baseline: List[Dict[str, float]] = field(default_factory=list)
    optimized: List[Dict[str, float]] = field(default_factory=list)
    fault_factor: float = 1.0
    speedup: float = 1.0
    cache_hits: int = 0
    cache_misses: int = 0
    degraded: bool = False
    quarantined: bool = False
    quarantine_reason: str = ""
    wall_s: float = 0.0
    error: Optional[str] = None
    metrics: Optional[MetricsSnapshot] = None
    spans: List[Dict[str, Any]] = field(default_factory=list)
    #: correlated event-log entries this task emitted (chaos injections,
    #: degradation notes, phase events); absorbed into the parent log
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: which attempt produced this result (0 = first try); excluded from
    #: :meth:`canonical` — a surviving retry must be byte-identical to a
    #: first-try success
    attempt: int = 0
    #: chaos class that failed this attempt, when one did ("" = real error
    #: or success)
    error_kind: str = ""
    #: IPC ballast attached by an ``oversized_result`` fault; the scheduler
    #: strips it on receipt and accounts the bytes in the health report
    ballast: bytes = b""

    @property
    def ok(self) -> bool:
        return self.error is None

    def canonical(self) -> Dict[str, Any]:
        """Deterministic view: everything except host wall-clock.

        Two sweeps of the same matrix must agree on this dict byte-for-byte
        (the determinism tests compare its JSON serialization); ``wall_s``,
        cache counters, and retry bookkeeping (``attempt``, ``error_kind``,
        ``ballast``) legitimately differ run to run and are excluded.
        """
        return {
            "workload": self.workload,
            "strategy": self.strategy,
            "seed": self.seed,
            "baseline": self.baseline,
            "optimized": self.optimized,
            "fault_factor": self.fault_factor,
            "speedup": self.speedup,
            "degraded": self.degraded,
            "quarantined": self.quarantined,
            "error": self.error,
        }


def _metric_dict(metrics: RunMetrics, spec: StrategySpec,
                 microservice: bool) -> Dict[str, float]:
    out = metric_for_strategy(metrics, spec, microservice)
    out["ops"] = float(metrics.ops)
    out["total_faults"] = float(metrics.total_faults)
    return out


# -- worker side ---------------------------------------------------------------

#: per-process pipeline registry: workload name -> pipeline.  Reusing the
#: pipeline reuses the compiled program, the watchdog budgets, and the
#: in-memory quarantine registry across every task the worker executes.
_WORKER_PIPELINES: Dict[Tuple[str, Optional[str], int], WorkloadPipeline] = {}
_WORKER_CACHE: Optional[ArtifactCache] = None


def _worker_cache(config: SchedulerConfig) -> Optional[ArtifactCache]:
    global _WORKER_CACHE
    if config.cache_dir is None:
        return None
    if _WORKER_CACHE is None or str(_WORKER_CACHE.root) != config.cache_dir:
        _WORKER_CACHE = ArtifactCache(Path(config.cache_dir))
    return _WORKER_CACHE


def reset_worker_state() -> None:
    """Drop the process-local pipeline/cache memos.

    Inline runs reuse compiled pipelines and the cache's in-memory LRU
    across sweeps in the same process; call this to simulate a brand-new
    worker process — every artifact then comes back through the disk
    cache and its checksum verification (the cold-cost bench reference
    and the cache-healing tests rely on exactly that)."""
    global _WORKER_CACHE
    _WORKER_PIPELINES.clear()
    _WORKER_CACHE = None


def _worker_pipeline(workload: Workload,
                     config: SchedulerConfig) -> WorkloadPipeline:
    key = (workload.name, config.cache_dir, id(config.verification))
    pipeline = _WORKER_PIPELINES.get(key)
    if pipeline is None:
        pipeline = WorkloadPipeline(
            workload,
            build_config=config.build_config,
            exec_config=config.exec_config,
            degradation_policy=config.degradation_policy,
            verification=config.verification,
            cache=_worker_cache(config),
        )
        _WORKER_PIPELINES[key] = pipeline
    return pipeline


def run_task(task: EvalTask, config: SchedulerConfig, attempt: int = 0,
             allow_hard_crash: bool = False) -> TaskResult:
    """Evaluate one matrix cell; never raises (errors land in ``.error``).

    Runs the same stages as :meth:`WorkloadPipeline.run_strategy` on a
    worker-local pipeline: baseline build, profiling, optimized build
    (through the degradation + verification rungs), and cold-cache
    measurement of both binaries.

    ``attempt`` is retry bookkeeping only: it selects which chaos fault
    (if any) fires and travels back in the result, but deliberately never
    enters seed derivation or the task body — ``task.seed`` is the same
    frozen value on every attempt, so a retried task is bit-identical to a
    first-try success.  ``allow_hard_crash`` gates the one fault that must
    not fire inline: a chaos ``worker_crash`` calls ``os._exit`` (really
    killing the pool worker) when allowed, and degrades to an error result
    named :class:`SimulatedWorkerCrash` otherwise.

    Observability: the task is one ``sched`` span; everything recorded in
    the process-wide registry while the task ran travels back as a
    metrics delta, and the deterministic ``sweep.*`` counters are derived
    from the canonical result so serial and parallel schedulers agree on
    them exactly.
    """
    chaos = config.chaos
    fault = (chaos.fault_for(task.workload.name, task.strategy_name, attempt)
             if chaos is not None else None)
    if fault == CHAOS_WORKER_CRASH and allow_hard_crash:
        # Die hard, mid-task, before any result can be shipped.  This
        # breaks the whole ProcessPoolExecutor — exactly the failure the
        # scheduler's respawn + requeue path exists for.  The parent
        # records the injection (it can recompute the schedule); nothing
        # recorded here would survive the exit anyway.
        os._exit(CHAOS_CRASH_EXIT)
    registry = get_registry()
    tracer = get_tracer()
    event_log = get_event_log()
    registry.counter("sched.tasks.dispatched")
    metrics_before = registry.snapshot()
    span_mark = tracer.mark()
    event_mark = event_log.mark()
    task_id = f"{task.workload.name}/{task.strategy_name}"
    result = TaskResult(workload=task.workload.name,
                        strategy=task.strategy_name, seed=task.seed,
                        attempt=attempt)
    start = time.perf_counter()
    with event_log.context(task=task_id), \
            tracer.span("task", cat="sched", workload=task.workload.name,
                        strategy=task.strategy_name, seed=task.seed,
                        attempt=attempt):
        # A hard worker_crash never reaches this line (os._exit above);
        # a crash fault here is the inline simulated variant, so recording
        # it worker-side never double-counts the parent's submit-time entry.
        if fault is not None:
            registry.counter(f"chaos.injected.{fault}")
            tracer.instant("chaos.inject", cat="chaos", fault=fault,
                           workload=task.workload.name,
                           strategy=task.strategy_name, attempt=attempt)
            event_log.emit("chaos.inject", fault=fault, attempt=attempt)
        _run_task_attempt(result, task, config, fault)
    registry.counter(
        "sched.tasks.completed" if result.ok else "sched.tasks.failed"
    )
    _record_sweep_counters(registry, result)
    result.wall_s = time.perf_counter() - start
    result.metrics = registry.snapshot().diff(metrics_before)
    result.spans = tracer.events_since(span_mark)
    result.events = event_log.events_since(event_mark)
    return result


def _run_task_attempt(result: TaskResult, task: EvalTask,
                      config: SchedulerConfig,
                      fault: Optional[str]) -> None:
    """One attempt: chaos staging around the (possibly deadlined) body."""
    chaos = config.chaos
    if fault == CHAOS_WORKER_CRASH:
        # Inline stand-in for the process dying (serial fallback, tests):
        # the attempt fails the same way, minus the real os._exit.
        result.error = (f"{SimulatedWorkerCrash.__name__}: chaos killed the "
                        f"worker during {result.workload}/{result.strategy}")
        result.error_kind = fault
        return
    if fault == CHAOS_HANG:
        # The worker wedges instead of running the task body (so no
        # abandoned thread ever races the worker-shared pipeline state).
        # The deadline guard trips and the attempt fails cleanly; without
        # a configured deadline the hang simply costs its full duration.
        deadline = min(config.task_deadline_s or chaos.hang_s, chaos.hang_s)
        call_with_deadline(lambda: time.sleep(chaos.hang_s), deadline)
        result.error = (f"TaskHungError: task still running after "
                        f"{deadline:g}s; killed by the sweep deadline")
        result.error_kind = fault
        return

    cache = _worker_cache(config)
    injector = None
    if cache is not None and fault in (CHAOS_CACHE_IO, CHAOS_CORRUPT_ARTIFACT):
        injector = ChaosCacheInjector(
            chaos, result.workload, result.strategy,
            transient_ops=chaos.cache_ops if fault == CHAOS_CACHE_IO else 0,
            corrupt_puts=(chaos.cache_ops
                          if fault == CHAOS_CORRUPT_ARTIFACT else 0),
        )
        cache.fault_injector = injector
    try:
        if config.task_deadline_s is not None:
            finished, _ = call_with_deadline(
                lambda: _run_task_body(result, task, config),
                config.task_deadline_s)
            if not finished:
                # The body thread was abandoned mid-flight; report on a
                # fresh result object so nothing it still mutates leaks
                # into what we ship back.
                hung = TaskResult(workload=result.workload,
                                  strategy=result.strategy, seed=result.seed,
                                  attempt=result.attempt)
                hung.error = (f"TaskHungError: task still running after "
                              f"{config.task_deadline_s:g}s; killed by the "
                              f"sweep deadline")
                hung.error_kind = CHAOS_HANG
                result.__dict__.update(hung.__dict__)
        else:
            _run_task_body(result, task, config)
    finally:
        if injector is not None:
            cache.fault_injector = None
    if fault == CHAOS_OVERSIZED_RESULT and result.ok:
        time.sleep(chaos.stall_s)
        result.ballast = b"\x00" * chaos.ballast_bytes


def _record_sweep_counters(registry, result: TaskResult) -> None:
    """The deterministic metric plane: derived only from canonical data.

    Everything here is a pure function of :meth:`TaskResult.canonical`,
    which is byte-identical across serial and parallel runs of the same
    matrix — so the merged ``sweep.*`` counters are too (the determinism
    test in ``tests/test_scheduler_bench.py`` holds the line).
    """
    registry.counter("sweep.tasks.completed" if result.ok
                     else "sweep.tasks.errors")
    if result.degraded:
        registry.counter("sweep.tasks.degraded")
    if result.quarantined:
        registry.counter("sweep.tasks.quarantined")
    registry.counter("sweep.runs.baseline", len(result.baseline))
    registry.counter("sweep.runs.optimized", len(result.optimized))
    registry.counter("sweep.faults.baseline",
                     int(sum(m["faults"] for m in result.baseline)))
    registry.counter("sweep.faults.optimized",
                     int(sum(m["faults"] for m in result.optimized)))
    registry.counter("sweep.ops",
                     int(sum(m["ops"]
                             for m in result.baseline + result.optimized)))


def _run_task_body(result: TaskResult, task: EvalTask,
                   config: SchedulerConfig) -> None:
    try:
        spec = STRATEGY_BY_NAME[task.strategy_name]
        pipeline = _worker_pipeline(task.workload, config)
        cache = pipeline.cache
        before = cache.stats.snapshot() if cache else (0, 0)

        pipeline.last_degradation_report = None  # this task's decisions only
        fast = pipeline.cached_strategy_runs(spec, seed=task.seed,
                                             iterations=task.iterations)
        if fast is not None:
            base_runs, opt_runs = fast
        else:
            baseline = pipeline.build_baseline(seed=task.seed)
            outcome = pipeline.profile(seed=task.seed)
            optimized = pipeline.build_optimized(outcome.profiles, spec,
                                                 seed=task.seed)
            base_runs = pipeline.measure(baseline, task.iterations,
                                         seed=task.seed)
            opt_runs = pipeline.measure(optimized, task.iterations,
                                        seed=task.seed)

        micro = task.workload.microservice
        result.baseline = [_metric_dict(m, spec, micro) for m in base_runs]
        result.optimized = [_metric_dict(m, spec, micro) for m in opt_runs]
        base_faults = sum(m["faults"] for m in result.baseline)
        opt_faults = sum(m["faults"] for m in result.optimized)
        base_time = sum(m["time_s"] for m in result.baseline)
        opt_time = sum(m["time_s"] for m in result.optimized)
        result.fault_factor = (base_faults / opt_faults if opt_faults
                               else float(base_faults or 1.0))
        result.speedup = base_time / opt_time if opt_time else 1.0

        report = pipeline.last_degradation_report
        if report is not None and report.degraded:
            result.degraded = True
        entry = pipeline.quarantine.entry_for(task.workload.name,
                                              spec.name)
        if entry is not None:
            result.quarantined = True
            result.quarantine_reason = entry.reason
        if cache:
            after = cache.stats.snapshot()
            result.cache_hits = after[0] - before[0]
            result.cache_misses = after[1] - before[1]
    except Exception as exc:  # one bad cell must not sink the sweep
        result.error = f"{type(exc).__name__}: {exc}"


def _run_task_tuple(
    payload: Tuple[EvalTask, SchedulerConfig, int, bool]
) -> TaskResult:
    task, config, attempt, allow_hard_crash = payload
    return run_task(task, config, attempt=attempt,
                    allow_hard_crash=allow_hard_crash)


# -- sweep side ---------------------------------------------------------------


@dataclass
class SweepHealthReport:
    """Typed account of every recovery decision one sweep made.

    All zeros on a healthy run.  ``wasted_wall_s`` is the wall-clock spent
    on attempts whose results were thrown away (failed attempts) plus the
    scheduled backoff waits — the price of surviving the faults, which the
    chaos bench phase reports as overhead against a fault-free run.
    """

    #: attempts re-run because the previous attempt failed
    retries: int = 0
    #: tasks resubmitted because the pool broke while they were in flight
    requeues: int = 0
    #: times the worker pool broke (a worker died) and was respawned
    pool_breaks: int = 0
    #: attempts killed by the per-task deadline
    hangs: int = 0
    #: cells convicted as poison (failed every attempt) and quarantined
    poisoned: List[str] = field(default_factory=list)
    #: chaos fault classes actually injected, by class name
    injected: Dict[str, int] = field(default_factory=dict)
    #: cache entries healed (checksum mismatch / undecodable → evicted)
    cache_healed: int = 0
    #: transient cache I/O errors absorbed as misses / skipped writes
    cache_io_errors: int = 0
    #: total backoff wait the retry policy scheduled
    backoff_wait_s: float = 0.0
    #: wall-clock burned on failed attempts + backoff waits
    wasted_wall_s: float = 0.0
    #: IPC ballast stripped from oversized results
    ballast_bytes: int = 0
    #: the sweep hit ``pool_break_limit`` and degraded to serial execution
    serial_fallback: bool = False

    @property
    def healthy(self) -> bool:
        return (not self.retries and not self.requeues
                and not self.pool_breaks and not self.poisoned
                and not self.serial_fallback)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "retries": self.retries,
            "requeues": self.requeues,
            "pool_breaks": self.pool_breaks,
            "hangs": self.hangs,
            "poisoned": list(self.poisoned),
            "injected": dict(sorted(self.injected.items())),
            "cache_healed": self.cache_healed,
            "cache_io_errors": self.cache_io_errors,
            "backoff_wait_s": round(self.backoff_wait_s, 6),
            "wasted_wall_s": round(self.wasted_wall_s, 6),
            "ballast_bytes": self.ballast_bytes,
            "serial_fallback": self.serial_fallback,
            "healthy": self.healthy,
        }

    def describe(self) -> str:
        if self.healthy and not self.injected:
            return "sweep health: clean (no faults, no recoveries)"
        parts = [
            f"{self.retries} retried", f"{self.requeues} requeued",
            f"{self.pool_breaks} pool break(s)", f"{self.hangs} hang(s)",
            f"{len(self.poisoned)} poisoned",
            f"{self.cache_healed} cache heal(s)",
            f"{self.cache_io_errors} I/O error(s) absorbed",
            f"{self.wasted_wall_s:.2f}s wasted",
        ]
        if self.injected:
            injected = ", ".join(f"{k}×{v}"
                                 for k, v in sorted(self.injected.items()))
            parts.append(f"injected [{injected}]")
        if self.serial_fallback:
            parts.append("DEGRADED to serial")
        text = "sweep health: " + ", ".join(parts)
        for cell in self.poisoned:
            text += f"\n  poisoned: {cell}"
        return text

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


@dataclass
class SweepResult:
    """Aggregate of one scheduler run over the whole matrix."""

    tasks: List[TaskResult] = field(default_factory=list)
    wall_s: float = 0.0
    workers: int = 1
    #: sum of per-task cache hit/miss deltas across all workers
    cache_hits: int = 0
    cache_misses: int = 0
    quarantine: QuarantineRegistry = field(default_factory=QuarantineRegistry)
    #: merged per-task metric deltas (all workers); the ``sweep.*`` plane
    #: of this snapshot is identical for serial and parallel runs
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    #: every recovery decision this sweep made (all zeros when healthy)
    health: SweepHealthReport = field(default_factory=SweepHealthReport)
    #: sweep-level degradation rung (serial fallback lands here, next to
    #: the per-build rungs of :class:`DegradationReport`)
    degradation: DegradationReport = field(
        default_factory=lambda: DegradationReport(workload="<sweep>"))

    @property
    def ok(self) -> bool:
        return all(task.ok for task in self.tasks)

    @property
    def errors(self) -> List[TaskResult]:
        return [task for task in self.tasks if not task.ok]

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def total_ops(self) -> float:
        return sum(m["ops"] for task in self.tasks
                   for m in task.baseline + task.optimized)

    def canonical(self) -> List[Dict[str, Any]]:
        """Order- and timing-independent view of every task result."""
        return [task.canonical()
                for task in sorted(self.tasks,
                                   key=lambda t: (t.workload, t.strategy))]

    def summary(self) -> str:
        lines = [
            f"{len(self.tasks)} task(s) on {self.workers} worker(s) "
            f"in {self.wall_s:.2f}s"
        ]
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
                f"({self.cache_hit_rate:.0%})"
            )
        for task in self.errors:
            lines.append(f"FAILED {task.workload}/{task.strategy}: {task.error}")
        if len(self.quarantine):
            lines.append(self.quarantine.describe())
        if not self.health.healthy or self.health.injected:
            lines.append(self.health.describe())
        return "\n".join(lines)


class SweepScheduler:
    """Fans the workload × strategy matrix out across worker processes.

    ``config.max_workers`` = 1 (or ``parallel=False`` on :meth:`run`)
    executes the identical task list inline — same seeds, same pipelines,
    same cache — which is both the degraded mode for single-core machines
    and the reference the determinism tests compare the pool against.
    """

    def __init__(self, config: Optional[SchedulerConfig] = None) -> None:
        self.config = config or SchedulerConfig()

    def build_tasks(self, workloads: Iterable[Workload],
                    strategies: Sequence[StrategySpec]) -> List[EvalTask]:
        """The deterministic task list (workload-major, strategy-minor)."""
        tasks = []
        for workload in workloads:
            for spec in strategies:
                if spec.name not in STRATEGY_BY_NAME:
                    raise KeyError(f"unknown strategy {spec.name!r}")
                tasks.append(EvalTask(
                    workload=workload,
                    strategy_name=spec.name,
                    seed=task_seed(self.config.base_seed, workload.name),
                    iterations=self.config.iterations,
                ))
        return tasks

    def run(self, workloads: Iterable[Workload],
            strategies: Sequence[StrategySpec] = ALL_STRATEGY_SPECS,
            parallel: bool = True) -> SweepResult:
        """Evaluate the full matrix; returns the aggregated sweep.

        Never raises for per-task failures (see :attr:`TaskResult.error`);
        raises :class:`KeyError` for strategies the scheduler does not
        know, before any work starts.  With a :class:`RetryPolicy` armed
        the sweep additionally survives worker deaths (pool respawn +
        requeue), hung tasks (deadline trip + retry), and poison tasks
        (quarantine); the price of every recovery is accounted in
        :attr:`SweepResult.health`.
        """
        tasks = self.build_tasks(workloads, strategies)
        workers = self.config.resolved_workers() if parallel else 1
        workers = min(workers, max(len(tasks), 1))
        sweep = SweepResult(workers=workers)
        registry = get_registry()
        tracer = get_tracer()
        health_before = registry.snapshot()
        start = time.perf_counter()
        with tracer.span("sweep", cat="sched", tasks=len(tasks),
                         workers=workers):
            state = _SweepRun(tasks, self.config, sweep, inline=workers <= 1)
            if workers <= 1:
                state.run_serial(range(len(tasks)))
            else:
                state.run_pool(workers)
            results = state.finish()
        sweep.tasks = results
        sweep.wall_s = time.perf_counter() - start
        # Worker-process observability folds into the parent here.  Tasks
        # that ran inline — the whole sweep when workers <= 1, or the
        # cells a pool-mode sweep finished after degrading to serial —
        # already recorded into this process's registry and tracer, so
        # for them only the sweep-local snapshot is built; merging their
        # shipped deltas again would double-count.  Either way the parent
        # registry ends up with the same totals.
        for index, task in enumerate(results):
            ran_inline = index in state.inline_indices
            sweep.cache_hits += task.cache_hits
            sweep.cache_misses += task.cache_misses
            if task.metrics is not None:
                sweep.metrics.merge(task.metrics)
                if not ran_inline:
                    registry.merge_snapshot(task.metrics)
            if not ran_inline and task.spans:
                tracer.absorb(task.spans)
            if not ran_inline and task.events:
                get_event_log().absorb(task.events)
            if task.quarantined:
                sweep.quarantine.quarantine(task.workload, task.strategy,
                                            task.quarantine_reason)
        # Injection and self-healing counters for the health report come
        # from the parent registry delta across the whole sweep — failed
        # attempts included (their deltas were absorbed on receipt).
        delta = registry.snapshot().diff(health_before)
        for name, value in delta.counters.items():
            if name.startswith("chaos.injected."):
                fault = name[len("chaos.injected."):]
                sweep.health.injected[fault] = (
                    sweep.health.injected.get(fault, 0) + value)
            elif name.startswith("cache.heal."):
                sweep.health.cache_healed += value
            elif name.startswith("cache.io_error."):
                sweep.health.cache_io_errors += value
        return sweep


class _SweepRun:
    """One sweep execution: retry/requeue state shared by both modes.

    Tracks, per matrix cell: the next attempt number (bumped by failures
    *and* by pool-break requeues — chaos faults fire per attempt, so a
    requeued innocent is not re-injured), the count of genuine failed
    attempts (only these feed the poison conviction), and the final
    result.  The same receive logic serves the pool loop, the inline
    loop, and the serial-fallback rung, so recovery semantics cannot
    drift between modes.
    """

    def __init__(self, tasks: List[EvalTask], config: SchedulerConfig,
                 sweep: SweepResult, inline: bool) -> None:
        self.tasks = tasks
        self.config = config
        self.sweep = sweep
        self.health = sweep.health
        self.inline = inline
        self.registry = get_registry()
        self.tracer = get_tracer()
        n = len(tasks)
        self.final: List[Optional[TaskResult]] = [None] * n
        #: next attempt number per cell (0-based)
        self.attempts = [0] * n
        #: failed-attempt count per cell (pool-break requeues excluded)
        self.failures = [0] * n
        #: cells whose attempts ran in this process (their observability
        #: is already in the parent registry/tracer — never re-merge it)
        self.inline_indices: set = set()

    @property
    def max_attempts(self) -> int:
        retry = self.config.retry
        return retry.max_attempts if retry is not None else 1

    def receive(self, index: int, result: TaskResult) -> float:
        """Fold one attempt's result in; returns the backoff delay before
        the next attempt (0 when the cell is finished)."""
        task = self.tasks[index]
        if result.ballast:
            self.health.ballast_bytes += len(result.ballast)
            result.ballast = b""
        # Failed attempts are retried, so only the final result reaches
        # ``sweep.tasks`` — but their operational observability must not
        # vanish with them: absorb metrics + spans into the parent now.
        # (Attempts that ran inline recorded into the parent directly.)
        if (not self.inline and index not in self.inline_indices
                and not result.ok):
            if result.metrics is not None:
                self.registry.merge_snapshot(result.metrics)
            if result.spans:
                self.tracer.absorb(result.spans)
            if result.events:
                get_event_log().absorb(result.events)
        if result.ok:
            self.final[index] = result
            return 0.0
        if result.error_kind == CHAOS_HANG or (
                result.error or "").startswith("TaskHungError"):
            self.health.hangs += 1
        self.failures[index] += 1
        self.health.wasted_wall_s += result.wall_s
        retry = self.config.retry
        if retry is None or self.failures[index] >= retry.max_attempts:
            if retry is not None:
                # Poison conviction: the cell failed every attempt it was
                # given.  Quarantine it (PR-2 rung) so the sweep continues
                # without it; the failed result is still reported.
                result.quarantined = True
                result.quarantine_reason = (
                    f"poison task: failed {self.failures[index]} attempt(s); "
                    f"last error: {result.error}")
                self.registry.counter("sched.tasks.poisoned")
                self.registry.counter("sweep.tasks.quarantined")
                self.tracer.instant(
                    "sched.poison", cat="sched", workload=result.workload,
                    strategy=result.strategy, failures=self.failures[index])
                self.health.poisoned.append(
                    f"{result.workload}/{result.strategy}")
            self.final[index] = result
            return 0.0
        self.health.retries += 1
        self.registry.counter("sched.tasks.retried")
        self.tracer.instant("sched.retry", cat="sched",
                            workload=result.workload,
                            strategy=result.strategy,
                            attempt=result.attempt,
                            error=(result.error or "")[:120])
        self.attempts[index] = result.attempt + 1
        delay = retry.backoff_s(task.seed, task.workload.name,
                                task.strategy_name, result.attempt)
        self.health.backoff_wait_s += delay
        self.health.wasted_wall_s += delay
        return delay

    def requeue(self, index: int) -> None:
        """Resubmit a task that was in flight when the pool broke.

        We cannot tell the crashed task from its innocent pool-mates, so
        every in-flight task is requeued; the attempt number is bumped
        (so a recoverable chaos crash does not re-fire) but the failure
        count is not — an innocent task is never marched toward poison
        conviction by someone else's crash.
        """
        self.health.requeues += 1
        self.registry.counter("sched.tasks.requeued")
        self.attempts[index] += 1

    def record_crash_injection(self, index: int) -> None:
        """Parent-side bookkeeping for a hard worker crash.

        The worker dies via ``os._exit`` before it can record anything,
        but the chaos schedule is a pure function the parent can evaluate
        too — so the injection is accounted here, at submit time.
        """
        task = self.tasks[index]
        self.registry.counter(f"chaos.injected.{CHAOS_WORKER_CRASH}")
        self.tracer.instant("chaos.inject", cat="chaos",
                            fault=CHAOS_WORKER_CRASH,
                            workload=task.workload.name,
                            strategy=task.strategy_name,
                            attempt=self.attempts[index])

    def pending(self) -> List[int]:
        return [i for i, r in enumerate(self.final) if r is None]

    def finish(self) -> List[TaskResult]:
        missing = [i for i, r in enumerate(self.final) if r is None]
        if missing:  # pragma: no cover - loop invariant
            raise RuntimeError(f"sweep lost track of tasks {missing}")
        return [r for r in self.final if r is not None]

    # -- inline / serial-fallback mode ------------------------------------

    def run_serial(self, indices: Iterable[int]) -> None:
        """Run cells inline (no pool): the single-core degraded mode, the
        determinism reference, and the serial-fallback rung after repeated
        pool breakage.  Chaos worker crashes degrade to error results here
        (``allow_hard_crash=False``), so a persistent crasher finally gets
        attributed to its cell and convicted."""
        for index in indices:
            self.inline_indices.add(index)
            while self.final[index] is None:
                result = run_task(self.tasks[index], self.config,
                                  attempt=self.attempts[index],
                                  allow_hard_crash=False)
                delay = self.receive(index, result)
                if delay > 0:
                    time.sleep(delay)

    # -- pool mode ---------------------------------------------------------

    def run_pool(self, workers: int) -> None:
        """The fault-tolerant pool loop.

        A heap of (ready-time, submit-seq, cell) holds backoff-delayed
        resubmissions without blocking the pool; ``wait(FIRST_COMPLETED)``
        with a deadline-bounded timeout multiplexes completions against
        the next ready time.  A worker death breaks the whole
        :class:`ProcessPoolExecutor` (every in-flight future raises
        :class:`BrokenProcessPool`); the loop harvests the futures that
        finished cleanly, requeues the rest, and respawns the pool — up to
        ``pool_break_limit`` times, after which the sweep degrades to
        serial inline execution and notes it on the sweep-level
        degradation report.
        """
        config = self.config
        ready: List[Tuple[float, int, int]] = [
            (0.0, i, i) for i in range(len(self.tasks))]
        heapq.heapify(ready)
        seq = len(self.tasks)
        breaks = 0
        pool = ProcessPoolExecutor(max_workers=workers)
        in_flight: Dict[Any, int] = {}
        try:
            while self.pending():
                now = time.monotonic()
                broken = False
                while ready and ready[0][0] <= now and not broken:
                    _, _, index = heapq.heappop(ready)
                    if self.final[index] is not None:
                        continue
                    attempt = self.attempts[index]
                    task = self.tasks[index]
                    try:
                        future = pool.submit(
                            _run_task_tuple, (task, config, attempt, True))
                    except BrokenProcessPool:
                        # The pool died between loop turns; put the task
                        # back untouched (it never ran) and go heal.
                        broken = True
                        seq += 1
                        heapq.heappush(ready, (now, seq, index))
                        break
                    in_flight[future] = index
                    if (config.chaos is not None
                            and config.chaos.fault_for(
                                task.workload.name, task.strategy_name,
                                attempt) == CHAOS_WORKER_CRASH):
                        self.record_crash_injection(index)
                if not broken:
                    if not in_flight:
                        if ready:
                            time.sleep(max(0.0,
                                           ready[0][0] - time.monotonic()))
                            continue
                        break  # pragma: no cover - pending() guards this
                    timeout = (max(0.0, ready[0][0] - time.monotonic())
                               if ready else None)
                    done, _ = wait(list(in_flight), timeout=timeout,
                                   return_when=FIRST_COMPLETED)
                    for future in done:
                        index = in_flight.pop(future)
                        if future.exception() is not None:
                            # BrokenProcessPool (or an unpicklable result
                            # — same treatment): this future's task was
                            # in flight when a worker died.
                            broken = True
                            self.requeue(index)
                            seq += 1
                            heapq.heappush(ready,
                                           (time.monotonic(), seq, index))
                            continue
                        delay = self.receive(index, future.result())
                        if self.final[index] is None:
                            seq += 1
                            heapq.heappush(
                                ready,
                                (time.monotonic() + delay, seq, index))
                if broken:
                    breaks += 1
                    self.health.pool_breaks += 1
                    self.registry.counter("sched.pool.broken")
                    self.tracer.instant("sched.pool.break", cat="sched",
                                        breaks=breaks, workers=workers)
                    # Every other in-flight future is broken too; harvest
                    # the ones that finished before the pool died and
                    # requeue the rest.
                    for future, index in list(in_flight.items()):
                        if future.done() and future.exception() is None:
                            delay = self.receive(index, future.result())
                            if self.final[index] is None:
                                seq += 1
                                heapq.heappush(
                                    ready,
                                    (time.monotonic() + delay, seq, index))
                        else:
                            self.requeue(index)
                            seq += 1
                            heapq.heappush(ready,
                                           (time.monotonic(), seq, index))
                    in_flight.clear()
                    pool.shutdown(wait=False)
                    if breaks >= config.pool_break_limit:
                        self.health.serial_fallback = True
                        self.sweep.degradation.note(
                            f"worker pool broke {breaks}× (limit "
                            f"{config.pool_break_limit}); degrading the "
                            f"sweep to serial inline execution")
                        self.registry.counter("sched.pool.serial_fallback")
                        self.run_serial(self.pending())
                        return
                    pool = ProcessPoolExecutor(max_workers=workers)
        finally:
            pool.shutdown(wait=False)
