"""Parameter sweeps: sensitivity studies beyond the paper's figures.

* :func:`page_size_sweep` — the paper evaluates 4 KiB pages; larger pages
  coarsen the fault granularity and shrink the ordering win (relevant for
  16 KiB ARM kernels and hugepage-backed file systems).
* :func:`ballast_sweep` — how the factors scale with the amount of
  runtime-library code the points-to analysis drags in (bigger images →
  more to win by moving the executed slice together).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from ..image.sections import HEAP_SECTION, TEXT_SECTION
from ..runtime.executor import ExecutionConfig, run_binary
from ..runtime.paging import PageCache
from ..workloads.awfy.suite import awfy_workload
from .pipeline import STRATEGY_COMBINED, StrategySpec, Workload, WorkloadPipeline


@dataclass
class SweepPoint:
    """One configuration's baseline-vs-optimized outcome."""

    label: str
    baseline_faults: int
    optimized_faults: int
    speedup: float

    @property
    def fault_factor(self) -> float:
        return self.baseline_faults / max(self.optimized_faults, 1)


def _measure_pair(pipeline: WorkloadPipeline, strategy: StrategySpec,
                  seed: int, page_size: Optional[int] = None) -> SweepPoint:
    baseline = pipeline.build_baseline(seed=seed)
    outcome = pipeline.profile(seed=seed)
    optimized = pipeline.build_optimized(outcome.profiles, strategy, seed=seed + 1)

    if page_size is None:
        base = pipeline.measure(baseline, 1)[0]
        opt = pipeline.measure(optimized, 1)[0]
    else:
        base = _run_with_page_size(pipeline, baseline, page_size)
        opt = _run_with_page_size(pipeline, optimized, page_size)
    return SweepPoint(
        label="",
        baseline_faults=base.total_faults,
        optimized_faults=opt.total_faults,
        speedup=(base.first_response_time_s or base.time_s)
        / (opt.first_response_time_s or opt.time_s),
    )


def _run_with_page_size(pipeline: WorkloadPipeline, binary, page_size: int):
    """Run with a non-default page size by monkey-wiring the page cache."""
    from ..runtime import executor as executor_module

    original = PageCache.__init__

    def patched(self, *args, **kwargs):  # pragma: no cover - thin shim
        original(self, *args, **kwargs)
        self.page_size = page_size

    PageCache.__init__ = patched
    try:
        return run_binary(binary, pipeline.exec_config)
    finally:
        PageCache.__init__ = original


def page_size_sweep(
    workload: Optional[Workload] = None,
    page_sizes: Optional[List[int]] = None,
    strategy: StrategySpec = STRATEGY_COMBINED,
    seed: int = 1,
) -> List[SweepPoint]:
    """Fault factors of one strategy under different page sizes."""
    workload = workload or awfy_workload("Bounce")
    points = []
    for page_size in page_sizes or [4096, 16384, 65536]:
        pipeline = WorkloadPipeline(workload)
        point = _measure_pair(pipeline, strategy, seed, page_size=page_size)
        point.label = f"{page_size // 1024} KiB pages"
        points.append(point)
    return points


def ballast_sweep(
    benchmark: str = "Bounce",
    subsystem_counts: Optional[List[int]] = None,
    strategy: StrategySpec = STRATEGY_COMBINED,
    seed: int = 1,
) -> List[SweepPoint]:
    """Fault factors as the runtime-library ballast grows."""
    points = []
    for subsystems in subsystem_counts or [4, 8, 12, 20]:
        workload = awfy_workload(benchmark, ballast_subsystems=subsystems)
        pipeline = WorkloadPipeline(workload)
        point = _measure_pair(pipeline, strategy, seed)
        point.label = f"{subsystems} runtime subsystems"
        points.append(point)
    return points


def render_sweep(title: str, points: List[SweepPoint]) -> str:
    from .plotting import render_table

    rows = [
        [
            p.label,
            str(p.baseline_faults),
            str(p.optimized_faults),
            f"{p.fault_factor:.2f}x",
            f"{p.speedup:.2f}x",
        ]
        for p in points
    ]
    return render_table(
        title,
        ["configuration", "baseline faults", "optimized faults", "factor", "speedup"],
        rows,
    )
