"""Evaluation harness: pipelines, experiments, figures, visualizations."""

from .experiments import ExperimentConfig, evaluate_suite, evaluate_workload, profiling_overhead
from .heapmap import compare_heap_maps, heap_page_map
from .sweeps import ballast_sweep, page_size_sweep, render_sweep
from .textmap import compare_page_maps, front_density, text_page_map

from .bench import BenchConfig, run_bench
from .chaosrun import ChaosOutcome, check_identity, run_chaos
from .scheduler import (
    EvalTask,
    RetryPolicy,
    SchedulerConfig,
    SweepHealthReport,
    SweepResult,
    SweepScheduler,
    TaskResult,
    task_seed,
)

from .pipeline import (
    ALL_STRATEGY_SPECS,
    STRATEGY_COMBINED,
    STRATEGY_CU,
    STRATEGY_HEAP_PATH,
    STRATEGY_INCREMENTAL,
    STRATEGY_METHOD,
    STRATEGY_STRUCTURAL,
    StrategySpec,
    Workload,
    WorkloadPipeline,
)

__all__ = [
    "ExperimentConfig", "evaluate_suite", "evaluate_workload", "profiling_overhead",
    "BenchConfig", "run_bench",
    "ChaosOutcome", "check_identity", "run_chaos",
    "EvalTask", "RetryPolicy", "SchedulerConfig", "SweepHealthReport",
    "SweepResult", "SweepScheduler", "TaskResult", "task_seed",
    "compare_heap_maps", "heap_page_map",
    "ballast_sweep", "page_size_sweep", "render_sweep",
    "compare_page_maps", "front_density", "text_page_map",
    "ALL_STRATEGY_SPECS", "STRATEGY_COMBINED", "STRATEGY_CU",
    "STRATEGY_HEAP_PATH", "STRATEGY_INCREMENTAL", "STRATEGY_METHOD",
    "STRATEGY_STRUCTURAL", "StrategySpec", "Workload", "WorkloadPipeline",
]
