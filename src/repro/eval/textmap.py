"""Fig. 6: visual page map of the ``.text`` section.

Renders one character cell per 4 KiB page of ``.text``:

* ``#`` (green in the paper) — the page took a major fault;
* ``o`` (red) — the page is mapped but caused no fault (paged in by the
  kernel's fault-around; enable it via ``fault_around_pages``);
* ``.`` (black) — the page is not mapped at all;
* ``N`` — pages of the statically linked native blob (not reorderable;
  the trailing region of Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from ..image.binary import NativeImageBinary
from ..image.sections import TEXT_SECTION
from ..runtime.executor import ExecutionConfig, run_binary
from ..util.pagemath import page_count, page_of


@dataclass
class PageMap:
    """The page-level fault picture of one run's ``.text`` section."""

    cells: str  # one character per page
    faulted: int
    mapped_not_faulted: int
    unmapped: int
    #: first page of the native-library blob (unreorderable region)
    native_first: int = 0

    def render(self, width: int = 64) -> str:
        rows = [
            self.cells[index : index + width]
            for index in range(0, len(self.cells), width)
        ]
        legend = (
            f"# faulted: {self.faulted}   o mapped-no-fault: "
            f"{self.mapped_not_faulted}   . unmapped: {self.unmapped}"
        )
        return "\n".join(rows + [legend])


def text_page_map(
    binary: NativeImageBinary,
    exec_config: Optional[ExecutionConfig] = None,
    fault_around_pages: int = 2,
) -> PageMap:
    """Run ``binary`` cold and build its ``.text`` page map."""
    config = exec_config or ExecutionConfig()
    config = replace(config, fault_around_pages=fault_around_pages)
    metrics = run_binary(binary, config)

    total_pages = page_count(binary.text.size)
    native_first = page_of(binary.text.native_blob_offset)
    faulted = metrics.faulted_pages.get(TEXT_SECTION, frozenset())
    resident = metrics.resident_pages.get(TEXT_SECTION, frozenset())

    cells: List[str] = []
    counts = {"#": 0, "o": 0, ".": 0}
    for page in range(total_pages):
        if page in faulted:
            cell = "#"
        elif page in resident:
            cell = "o"
        else:
            cell = "."
        counts[cell] += 1
        if page >= native_first and cell == ".":
            cell = "N"
        cells.append(cell)
    return PageMap(
        cells="".join(cells),
        faulted=counts["#"],
        mapped_not_faulted=counts["o"],
        unmapped=counts["."],
        native_first=native_first,
    )


def compare_page_maps(regular: PageMap, optimized: PageMap, width: int = 64) -> str:
    """Fig. 6a/6b side by side (stacked), as in the appendix."""
    parts = [
        "(a) regular binary",
        regular.render(width),
        "",
        "(b) binary optimized with the cu strategy",
        optimized.render(width),
    ]
    return "\n".join(parts)


def front_density(page_map: PageMap, fraction: float = 0.25) -> float:
    """Share of faulted *reorderable* pages in the first ``fraction`` of them.

    The paper's qualitative claim for Fig. 6b: the optimized layout compacts
    executed code into the front of the section.  Native-blob pages are
    excluded — they are not reorderable (Fig. 6's trailing region).
    """
    cells = page_map.cells[: page_map.native_first or len(page_map.cells)]
    cutoff = max(int(len(cells) * fraction), 1)
    front = cells[:cutoff].count("#")
    total = cells.count("#")
    return front / total if total else 0.0
