"""Figure generators: regenerate every table/figure of the evaluation.

One evaluation run of a suite feeds two figures (page faults + speedups),
exactly as in the paper.  Each ``render_*`` function prints the same
rows/series the paper reports: per-workload factors with 95% CIs and the
geometric mean.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..workloads.awfy.suite import awfy_suite
from ..workloads.microservices.suite import microservice_suite
from .experiments import (
    ExperimentConfig,
    OverheadResult,
    SuiteResult,
    evaluate_suite,
    profiling_overhead,
)
from .pipeline import PAPER_STRATEGY_SPECS, Workload, WorkloadPipeline
from .plotting import render_factor_chart, render_table
from .textmap import compare_page_maps, text_page_map

# Paper figures reproduce the paper: only its six strategies appear
# (optimizer strategies are reported via the bench optimize phase
# and EXPERIMENTS.md instead).
_STRATEGY_NAMES = [spec.name for spec in PAPER_STRATEGY_SPECS]


def run_awfy_evaluation(
    config: Optional[ExperimentConfig] = None,
    names: Optional[List[str]] = None,
) -> SuiteResult:
    """Evaluate the AWFY suite (feeds Fig. 2 and Fig. 5)."""
    workloads = awfy_suite()
    if names:
        workloads = {name: workloads[name] for name in names}
    return evaluate_suite(workloads, "AWFY", config)


def run_microservice_evaluation(
    config: Optional[ExperimentConfig] = None,
    names: Optional[List[str]] = None,
) -> SuiteResult:
    """Evaluate the microservice suite (feeds Fig. 3 and Fig. 4)."""
    workloads = microservice_suite()
    if names:
        workloads = {name: workloads[name] for name in names}
    return evaluate_suite(workloads, "microservices", config)


def _chart(suite: SuiteResult, title: str, metric: str) -> str:
    factors: Dict[str, Dict] = {}
    for workload in suite.workloads:
        factors[workload.workload] = {
            name: (
                result.fault_factor if metric == "faults" else result.speedup
            )
            for name, result in workload.strategies.items()
        }
    geomeans = {
        name: (
            suite.geomean_fault_factor(name)
            if metric == "faults"
            else suite.geomean_speedup(name)
        )
        for name in _STRATEGY_NAMES
        if any(name in w.strategies for w in suite.workloads)
    }
    names = [w.workload for w in suite.workloads]
    present = [
        s for s in _STRATEGY_NAMES if any(s in w.strategies for w in suite.workloads)
    ]
    return render_factor_chart(title, names, present, factors, geomeans)


def render_fig2(suite: SuiteResult) -> str:
    """Fig. 2: page-fault reduction on AWFY."""
    return _chart(suite, "Figure 2: page-fault reduction (AWFY)", "faults")


def render_fig3(suite: SuiteResult) -> str:
    """Fig. 3: page-fault reduction on microservices."""
    return _chart(suite, "Figure 3: page-fault reduction (microservices)", "faults")


def render_fig4(suite: SuiteResult) -> str:
    """Fig. 4: execution-time speedup on microservices."""
    return _chart(suite, "Figure 4: time-to-first-response speedup (microservices)",
                  "speedup")


def render_fig5(suite: SuiteResult) -> str:
    """Fig. 5: execution-time speedup on AWFY."""
    return _chart(suite, "Figure 5: execution-time speedup (AWFY)", "speedup")


def run_overhead_evaluation(
    awfy_names: Optional[List[str]] = None,
    micro_names: Optional[List[str]] = None,
) -> List[OverheadResult]:
    """Sec. 7.4: profiling overhead on both suites."""
    results: List[OverheadResult] = []
    awfy = awfy_suite()
    for name in awfy_names or list(awfy):
        results.append(profiling_overhead(awfy[name]))
    micro = microservice_suite()
    for name in micro_names or list(micro):
        results.append(profiling_overhead(micro[name]))
    return results


def render_overhead(results: List[OverheadResult]) -> str:
    """Sec. 7.4 table: tracing overhead factors per flavour."""
    rows = [
        [
            r.workload,
            r.dump_mode,
            f"{r.cu_overhead:.2f}x",
            f"{r.method_overhead:.2f}x",
            f"{r.heap_overhead:.2f}x",
        ]
        for r in results
    ]
    return render_table(
        "Sec. 7.4: profiling overhead (instrumented / regular time)",
        ["workload", "dump mode", "cu", "method", "heap (all 3 strategies)"],
        rows,
    )


def run_fig6(workload: Optional[Workload] = None, seed: int = 1) -> str:
    """Fig. 6: .text page maps of AWFY Bounce, regular vs cu-optimized."""
    workload = workload or awfy_suite()["Bounce"]
    pipeline = WorkloadPipeline(workload)
    regular = pipeline.build_baseline(seed=seed)
    outcome = pipeline.profile(seed=seed)
    from .pipeline import STRATEGY_CU

    optimized = pipeline.build_optimized(outcome.profiles, STRATEGY_CU, seed=seed + 1)
    regular_map = text_page_map(regular, pipeline.exec_config)
    optimized_map = text_page_map(optimized, pipeline.exec_config)
    title = f"Figure 6: .text page map, AWFY {workload.name}"
    return "\n".join([title, "=" * len(title),
                      compare_page_maps(regular_map, optimized_map)])
