"""The ``som`` support library, in MiniJava.

The real AWFY suite ships its own deterministic collection library
(``som.Vector``, ``som.Random``, ...) so that every language implementation
executes the same algorithms.  We mirror that: the benchmarks below use
these classes rather than host collections, which also puts realistic
generic data structures into every image's code and heap sections.
"""

SOM_LIBRARY = """
class SomRandom {
    int seed;
    SomRandom() { seed = 74755; }
    int next() {
        seed = ((seed * 1309) + 13849) & 65535;
        return seed;
    }
}

class Vector {
    Object[] storage;
    int firstIdx;
    int lastIdx;
    Vector() {
        storage = new Object[8];
        firstIdx = 0;
        lastIdx = 0;
    }
    static Vector withSize(int size) {
        Vector v = new Vector();
        v.storage = new Object[size];
        v.lastIdx = size;
        return v;
    }
    int size() { return lastIdx - firstIdx; }
    boolean isEmpty() { return lastIdx == firstIdx; }
    Object at(int idx) {
        if (idx >= storage.length) return null;
        return storage[firstIdx + idx];
    }
    void atPut(int idx, Object val) {
        if (idx >= storage.length - firstIdx) {
            int newLength = storage.length;
            while (newLength <= idx + firstIdx) newLength *= 2;
            Object[] fresh = new Object[newLength];
            for (int i = 0; i < lastIdx; i++) fresh[i] = storage[i];
            storage = fresh;
        }
        storage[firstIdx + idx] = val;
        if (lastIdx < idx + firstIdx + 1) lastIdx = idx + firstIdx + 1;
    }
    void append(Object elem) {
        if (lastIdx >= storage.length) {
            Object[] fresh = new Object[storage.length * 2];
            for (int i = 0; i < lastIdx; i++) fresh[i] = storage[i];
            storage = fresh;
        }
        storage[lastIdx] = elem;
        lastIdx++;
    }
    Object removeFirst() {
        if (isEmpty()) return null;
        Object elem = storage[firstIdx];
        storage[firstIdx] = null;
        firstIdx++;
        return elem;
    }
    Object removeLast() {
        if (isEmpty()) return null;
        lastIdx--;
        Object elem = storage[lastIdx];
        storage[lastIdx] = null;
        return elem;
    }
    boolean remove(Object obj) {
        int moved = 0;
        boolean found = false;
        for (int i = firstIdx; i < lastIdx; i++) {
            if (storage[i] == obj) { found = true; }
            else { storage[firstIdx + moved] = storage[i]; moved++; }
        }
        for (int i = firstIdx + moved; i < lastIdx; i++) storage[i] = null;
        lastIdx = firstIdx + moved;
        return found;
    }
    void removeAll() {
        storage = new Object[storage.length];
        firstIdx = 0;
        lastIdx = 0;
    }
}

class IntVector {
    int[] storage;
    int count;
    IntVector() { storage = new int[8]; count = 0; }
    int size() { return count; }
    void append(int value) {
        if (count >= storage.length) {
            int[] fresh = new int[storage.length * 2];
            for (int i = 0; i < count; i++) fresh[i] = storage[i];
            storage = fresh;
        }
        storage[count] = value;
        count++;
    }
    int at(int idx) { return storage[idx]; }
    void atPut(int idx, int value) { storage[idx] = value; }
    boolean contains(int value) {
        for (int i = 0; i < count; i++) { if (storage[i] == value) return true; }
        return false;
    }
}

class SomDictionary {
    // Open-addressing hash map from int keys to Object values.
    int[] keys;
    Object[] vals;
    boolean[] used;
    int count;
    SomDictionary() {
        keys = new int[32];
        vals = new Object[32];
        used = new boolean[32];
        count = 0;
    }
    int indexFor(int key) {
        int mask = keys.length - 1;
        int idx = (key * 31) & mask;
        while (used[idx] && keys[idx] != key) idx = (idx + 1) & mask;
        return idx;
    }
    void put(int key, Object value) {
        if (count * 2 >= keys.length) grow();
        int idx = indexFor(key);
        if (!used[idx]) { used[idx] = true; keys[idx] = key; count++; }
        vals[idx] = value;
    }
    Object get(int key) {
        int idx = indexFor(key);
        if (used[idx]) return vals[idx];
        return null;
    }
    boolean containsKey(int key) { return used[indexFor(key)]; }
    int size() { return count; }
    void grow() {
        int[] oldKeys = keys;
        Object[] oldVals = vals;
        boolean[] oldUsed = used;
        keys = new int[oldKeys.length * 2];
        vals = new Object[oldKeys.length * 2];
        used = new boolean[oldKeys.length * 2];
        count = 0;
        for (int i = 0; i < oldKeys.length; i++) {
            if (oldUsed[i]) put(oldKeys[i], oldVals[i]);
        }
    }
}

class SomIntSet {
    IntVector items;
    SomIntSet() { items = new IntVector(); }
    boolean add(int value) {
        if (items.contains(value)) return false;
        items.append(value);
        return true;
    }
    boolean contains(int value) { return items.contains(value); }
    int size() { return items.size(); }
}

class Object { }
"""
