"""The 14 "Are We Fast Yet?" benchmarks, written in MiniJava."""

from .suite import AWFY_NAMES, awfy_suite, awfy_workload

__all__ = ["AWFY_NAMES", "awfy_suite", "awfy_workload"]
