"""The AWFY suite assembled into runnable workloads.

Each workload = som support library + the benchmark's MiniJava source +
runtime ballast (seeded per benchmark, so images differ across benchmarks
as they would with different classpaths) + a harness ``Main`` that boots the
runtime, runs the benchmark once, and prints the checksum.

The paper runs AWFY as FaaS-style run-to-completion programs measured
end-to-end (Sec. 7.1); a single in-process iteration is exactly the
startup-dominated regime being optimized.
"""

from __future__ import annotations

from typing import Dict, List

from ...eval.pipeline import Workload
from ..ballast import generate_ballast
from .complex_benchmarks import CD, DELTABLUE, HAVLAK, JSON, RICHARDS
from .simple_benchmarks import (
    BOUNCE,
    LIST,
    MANDELBROT,
    NBODY,
    PERMUTE,
    QUEENS,
    SIEVE,
    STORAGE,
    TOWERS,
)
from .som import SOM_LIBRARY

#: benchmark name -> (source, benchmark class)
_BENCHMARKS = {
    "Bounce": (BOUNCE, "Bounce"),
    "CD": (CD, "CD"),
    "DeltaBlue": (DELTABLUE, "DeltaBlue"),
    "Havlak": (HAVLAK, "Havlak"),
    "Json": (JSON, "Json"),
    "List": (LIST, "ListBench"),
    "Mandelbrot": (MANDELBROT, "Mandelbrot"),
    "NBody": (NBODY, "NBody"),
    "Permute": (PERMUTE, "Permute"),
    "Queens": (QUEENS, "Queens"),
    "Richards": (RICHARDS, "Richards"),
    "Sieve": (SIEVE, "Sieve"),
    "Storage": (STORAGE, "Storage"),
    "Towers": (TOWERS, "Towers"),
}

AWFY_NAMES: List[str] = list(_BENCHMARKS)


def _harness(name: str, bench_class: str) -> str:
    return f"""
class Main {{
    static int main() {{
        RuntimeSystem.boot();
        {bench_class} bench = new {bench_class}();
        int result = bench.benchmark();
        println("{name}: " + result);
        return result;
    }}
}}
"""


def awfy_workload(
    name: str,
    ballast_subsystems: int = 12,
    ballast_classes: int = 3,
    ballast_methods: int = 8,
) -> Workload:
    """Assemble one AWFY workload by benchmark name."""
    if name not in _BENCHMARKS:
        raise KeyError(f"unknown AWFY benchmark {name!r}; choose from {AWFY_NAMES}")
    source_text, bench_class = _BENCHMARKS[name]
    ballast = generate_ballast(
        seed=1000 + AWFY_NAMES.index(name),
        subsystems=ballast_subsystems,
        classes_per_subsystem=ballast_classes,
        methods_per_class=ballast_methods,
    )
    source = "\n".join([SOM_LIBRARY, source_text, ballast, _harness(name, bench_class)])
    return Workload(
        name=name,
        source=source,
        microservice=False,
        description=f"AWFY {name} (single startup-sized iteration)",
    )


def awfy_suite(**kwargs) -> Dict[str, Workload]:
    """All 14 AWFY workloads, keyed by name."""
    return {name: awfy_workload(name, **kwargs) for name in AWFY_NAMES}
