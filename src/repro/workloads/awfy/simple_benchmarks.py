"""AWFY micro benchmarks with compact kernels (MiniJava sources).

Bounce, List, Mandelbrot, NBody, Permute, Queens, Sieve, Storage, Towers —
ported from the "Are We Fast Yet?" suite [Marr et al., DLS'16], scaled down
to startup-sized inputs (the paper evaluates first-execution behaviour, not
steady state).
"""

BOUNCE = """
class Ball {
    int x; int y; int xVel; int yVel;
    Ball(SomRandom random) {
        x = random.next() % 500;
        y = random.next() % 500;
        xVel = (random.next() % 300) - 150;
        yVel = (random.next() % 300) - 150;
    }
    boolean bounce() {
        int xLimit = 500;
        int yLimit = 500;
        boolean bounced = false;
        x += xVel;
        y += yVel;
        if (x > xLimit) { x = xLimit; xVel = 0 - abs(xVel); bounced = true; }
        if (x < 0) { x = 0; xVel = abs(xVel); bounced = true; }
        if (y > yLimit) { y = yLimit; yVel = 0 - abs(yVel); bounced = true; }
        if (y < 0) { y = 0; yVel = abs(yVel); bounced = true; }
        return bounced;
    }
}
class Bounce {
    int benchmark() {
        SomRandom random = new SomRandom();
        int ballCount = 30;
        int bounces = 0;
        Ball[] balls = new Ball[ballCount];
        for (int i = 0; i < ballCount; i++) balls[i] = new Ball(random);
        for (int i = 0; i < 30; i++) {
            for (int j = 0; j < ballCount; j++) {
                if (balls[j].bounce()) bounces++;
            }
        }
        return bounces;
    }
}
"""

LIST = """
class ListElement {
    int val;
    ListElement next;
    ListElement(int v) { val = v; }
    int length() {
        if (next == null) return 1;
        return 1 + next.length();
    }
}
class ListBench {
    ListElement makeList(int length) {
        if (length == 0) return null;
        ListElement e = new ListElement(length);
        e.next = makeList(length - 1);
        return e;
    }
    boolean isShorterThan(ListElement x, ListElement y) {
        ListElement xTail = x;
        ListElement yTail = y;
        while (yTail != null) {
            if (xTail == null) return true;
            xTail = xTail.next;
            yTail = yTail.next;
        }
        return false;
    }
    ListElement tail(ListElement x, ListElement y, ListElement z) {
        if (isShorterThan(y, x)) {
            return tail(tail(x.next, y, z), tail(y.next, z, x), tail(z.next, x, y));
        }
        return z;
    }
    int benchmark() {
        ListElement result = tail(makeList(9), makeList(6), makeList(4));
        return result.length();
    }
}
"""

MANDELBROT = """
class Mandelbrot {
    int benchmark() { return mandelbrot(32); }
    int mandelbrot(int size) {
        int sum = 0;
        int byteAcc = 0;
        int bitNum = 0;
        int y = 0;
        while (y < size) {
            double ci = (2.0 * y / size) - 1.0;
            int x = 0;
            while (x < size) {
                double zrzr = 0.0;
                double zi = 0.0;
                double zizi = 0.0;
                double cr = (2.0 * x / size) - 1.5;
                int z = 0;
                boolean notDone = true;
                int escape = 0;
                while (notDone && z < 50) {
                    double zr = zrzr - zizi + cr;
                    zi = 2.0 * zr * zi + ci;
                    zrzr = zr * zr;
                    zizi = zi * zi;
                    if (zrzr + zizi > 4.0) { notDone = false; escape = 1; }
                    z++;
                }
                byteAcc = (byteAcc << 1) + escape;
                bitNum++;
                if (bitNum == 8) { sum ^= byteAcc; byteAcc = 0; bitNum = 0; }
                else if (x == size - 1) {
                    byteAcc <<= (8 - bitNum);
                    sum ^= byteAcc;
                    byteAcc = 0;
                    bitNum = 0;
                }
                x++;
            }
            y++;
        }
        return sum;
    }
}
"""

NBODY = """
class Body {
    double x; double y; double z;
    double vx; double vy; double vz;
    double mass;
    Body(double x0, double y0, double z0, double vx0, double vy0, double vz0, double m) {
        x = x0; y = y0; z = z0;
        vx = vx0 * 365.24; vy = vy0 * 365.24; vz = vz0 * 365.24;
        mass = m * 39.47841760435743;
    }
    void offsetMomentum(double px, double py, double pz) {
        vx = 0.0 - (px / 39.47841760435743);
        vy = 0.0 - (py / 39.47841760435743);
        vz = 0.0 - (pz / 39.47841760435743);
    }
}
class NBodySystem {
    Body[] bodies;
    NBodySystem() {
        bodies = new Body[5];
        bodies[0] = new Body(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0);
        bodies[1] = new Body(4.84143144246472090, -1.16032004402742839, -0.103622044471123109,
                             0.00166007664274403694, 0.00769901118419740425, -0.0000690460016972063023,
                             0.000954791938424326609);
        bodies[2] = new Body(8.34336671824457987, 4.12479856412430479, -0.403523417114321381,
                             -0.00276742510726862411, 0.00499852801234917238, 0.0000230417297573763929,
                             0.000285885980666130812);
        bodies[3] = new Body(12.8943695621391310, -15.1111514016986312, -0.223307578892655734,
                             0.00296460137564761618, 0.00237847173959480950, -0.0000296589568540237556,
                             0.0000436624404335156298);
        bodies[4] = new Body(15.3796971148509165, -25.9193146099879641, 0.179258772950371181,
                             0.00268067772490389322, 0.00162824170038242295, -0.0000951592254519715870,
                             0.0000515138902046611451);
        double px = 0.0; double py = 0.0; double pz = 0.0;
        for (int i = 0; i < bodies.length; i++) {
            px += bodies[i].vx * bodies[i].mass;
            py += bodies[i].vy * bodies[i].mass;
            pz += bodies[i].vz * bodies[i].mass;
        }
        bodies[0].offsetMomentum(px, py, pz);
    }
    void advance(double dt) {
        for (int i = 0; i < bodies.length; i++) {
            Body iBody = bodies[i];
            for (int j = i + 1; j < bodies.length; j++) {
                Body jBody = bodies[j];
                double dx = iBody.x - jBody.x;
                double dy = iBody.y - jBody.y;
                double dz = iBody.z - jBody.z;
                double dSquared = dx * dx + dy * dy + dz * dz;
                double distance = sqrt(dSquared);
                double mag = dt / (dSquared * distance);
                iBody.vx -= dx * jBody.mass * mag;
                iBody.vy -= dy * jBody.mass * mag;
                iBody.vz -= dz * jBody.mass * mag;
                jBody.vx += dx * iBody.mass * mag;
                jBody.vy += dy * iBody.mass * mag;
                jBody.vz += dz * iBody.mass * mag;
            }
            iBody.x += dt * iBody.vx;
            iBody.y += dt * iBody.vy;
            iBody.z += dt * iBody.vz;
        }
    }
    double energy() {
        double e = 0.0;
        for (int i = 0; i < bodies.length; i++) {
            Body iBody = bodies[i];
            e += 0.5 * iBody.mass * (iBody.vx * iBody.vx + iBody.vy * iBody.vy + iBody.vz * iBody.vz);
            for (int j = i + 1; j < bodies.length; j++) {
                Body jBody = bodies[j];
                double dx = iBody.x - jBody.x;
                double dy = iBody.y - jBody.y;
                double dz = iBody.z - jBody.z;
                double distance = sqrt(dx * dx + dy * dy + dz * dz);
                e -= (iBody.mass * jBody.mass) / distance;
            }
        }
        return e;
    }
}
class NBody {
    int benchmark() {
        NBodySystem system = new NBodySystem();
        for (int i = 0; i < 25; i++) system.advance(0.01);
        double e = system.energy();
        // scale to a stable integer checksum
        return (int)(e * -1000000.0);
    }
}
"""

PERMUTE = """
class Permute {
    int count;
    int[] v;
    int benchmark() {
        count = 0;
        v = new int[6];
        permute(6);
        return count;
    }
    void permute(int n) {
        count++;
        if (n != 0) {
            int n1 = n - 1;
            permute(n1);
            for (int i = n1; i >= 0; i--) {
                swap(n1, i);
                permute(n1);
                swap(n1, i);
            }
        }
    }
    void swap(int i, int j) {
        int tmp = v[i];
        v[i] = v[j];
        v[j] = tmp;
    }
}
"""

QUEENS = """
class Queens {
    boolean[] freeMaxs;
    boolean[] freeRows;
    boolean[] freeMins;
    int[] queenRows;
    int solutions;
    int benchmark() {
        solutions = 0;
        int result = 0;
        for (int i = 0; i < 5; i++) {
            if (queens()) result++;
        }
        return result * 100 + solutions;
    }
    boolean queens() {
        freeRows = new boolean[8];
        freeMaxs = new boolean[16];
        freeMins = new boolean[16];
        queenRows = new int[8];
        for (int i = 0; i < 8; i++) { freeRows[i] = true; queenRows[i] = -1; }
        for (int i = 0; i < 16; i++) { freeMaxs[i] = true; freeMins[i] = true; }
        boolean ok = placeQueen(0);
        if (ok) solutions++;
        return ok;
    }
    boolean placeQueen(int c) {
        for (int r = 0; r < 8; r++) {
            if (getRowColumn(r, c)) {
                queenRows[r] = c;
                setRowColumn(r, c, false);
                if (c == 7) return true;
                if (placeQueen(c + 1)) return true;
                setRowColumn(r, c, true);
            }
        }
        return false;
    }
    boolean getRowColumn(int r, int c) {
        return freeRows[r] && freeMaxs[c + r] && freeMins[c - r + 7];
    }
    void setRowColumn(int r, int c, boolean v) {
        freeRows[r] = v;
        freeMaxs[c + r] = v;
        freeMins[c - r + 7] = v;
    }
}
"""

SIEVE = """
class Sieve {
    int benchmark() {
        boolean[] flags = new boolean[1000];
        return sieve(flags, 1000);
    }
    int sieve(boolean[] flags, int size) {
        int primeCount = 0;
        for (int i = 0; i < size; i++) flags[i] = true;
        for (int i = 2; i <= size; i++) {
            if (flags[i - 1]) {
                primeCount++;
                for (int k = i + i; k <= size; k += i) flags[k - 1] = false;
            }
        }
        return primeCount;
    }
}
"""

STORAGE = """
class TreeNode {
    Object[] children;
}
class Storage {
    int count;
    int benchmark() {
        SomRandom random = new SomRandom();
        count = 0;
        buildTreeDepth(5, random);
        return count;
    }
    Object buildTreeDepth(int depth, SomRandom random) {
        count++;
        if (depth == 1) {
            return new Object[random.next() % 8 + 1];
        }
        Object[] arr = new Object[4];
        for (int i = 0; i < 4; i++) arr[i] = buildTreeDepth(depth - 1, random);
        return arr;
    }
}
"""

TOWERS = """
class TowersDisk {
    int size;
    TowersDisk next;
    TowersDisk(int s) { size = s; }
}
class Towers {
    TowersDisk[] piles;
    int movesDone;
    int benchmark() {
        piles = new TowersDisk[3];
        buildTowerAt(0, 10);
        movesDone = 0;
        moveDisks(10, 0, 1);
        return movesDone;
    }
    void pushDisk(TowersDisk disk, int pile) {
        TowersDisk top = piles[pile];
        if (top != null && disk.size >= top.size) {
            println("Cannot put a big disk on a smaller one");
            return;
        }
        disk.next = top;
        piles[pile] = disk;
    }
    TowersDisk popDiskFrom(int pile) {
        TowersDisk top = piles[pile];
        if (top == null) {
            println("Attempting to remove a disk from an empty pile");
            return null;
        }
        piles[pile] = top.next;
        top.next = null;
        return top;
    }
    void moveTopDisk(int fromPile, int toPile) {
        pushDisk(popDiskFrom(fromPile), toPile);
        movesDone++;
    }
    void buildTowerAt(int pile, int disks) {
        for (int i = disks; i > 0; i--) pushDisk(new TowersDisk(i), pile);
    }
    void moveDisks(int disks, int fromPile, int toPile) {
        if (disks == 1) { moveTopDisk(fromPile, toPile); return; }
        int otherPile = (3 - fromPile) - toPile;
        moveDisks(disks - 1, fromPile, otherPile);
        moveTopDisk(fromPile, toPile);
        moveDisks(disks - 1, otherPile, toPile);
    }
}
"""
