"""AWFY macro benchmarks (MiniJava sources).

CD, DeltaBlue, Havlak, Json, Richards — structurally faithful, reduced-size
ports of the AWFY macro benchmarks.  They keep the class hierarchies and
algorithmic skeletons of the originals (virtual dispatch, collection usage,
recursive parsing, worklists), scaled to startup-sized inputs.
"""

# Collision detection: aircraft on deterministic trajectories, voxel bucketing
# via SomDictionary, pairwise checks within a voxel.
CD = """
class Aircraft {
    int callsign;
    double px; double py;
    double vx; double vy;
    Aircraft(int id, double x0, double y0, double vx0, double vy0) {
        callsign = id; px = x0; py = y0; vx = vx0; vy = vy0;
    }
    void step(double dt) { px += vx * dt; py += vy * dt; }
}
class CollisionDetector {
    SomDictionary voxels;
    int voxelKey(double x, double y) {
        int ix = (int)(x / 10.0);
        int iy = (int)(y / 10.0);
        return ix * 1000 + iy;
    }
    int detect(Aircraft[] fleet) {
        voxels = new SomDictionary();
        for (int i = 0; i < fleet.length; i++) {
            int key = voxelKey(fleet[i].px, fleet[i].py);
            Vector bucket = (Vector) voxels.get(key);
            if (bucket == null) { bucket = new Vector(); voxels.put(key, bucket); }
            bucket.append(fleet[i]);
        }
        int collisions = 0;
        for (int i = 0; i < fleet.length; i++) {
            int key = voxelKey(fleet[i].px, fleet[i].py);
            Vector bucket = (Vector) voxels.get(key);
            for (int j = 0; j < bucket.size(); j++) {
                Aircraft other = (Aircraft) bucket.at(j);
                if (other.callsign > fleet[i].callsign) {
                    double dx = other.px - fleet[i].px;
                    double dy = other.py - fleet[i].py;
                    if (dx * dx + dy * dy < 16.0) collisions++;
                }
            }
        }
        return collisions;
    }
}
class CD {
    int benchmark() {
        int planes = 20;
        Aircraft[] fleet = new Aircraft[planes];
        for (int i = 0; i < planes; i++) {
            double offset = 1.0 * i;
            double vel = 1.0 + 1.0 * (i % 5);
            if (i % 2 == 0) {
                fleet[i] = new Aircraft(i, offset * 3.0, 0.0, 0.0, vel);
            } else {
                fleet[i] = new Aircraft(i, 0.0, offset * 3.0, vel, 0.0);
            }
        }
        CollisionDetector detector = new CollisionDetector();
        int collisions = 0;
        for (int t = 0; t < 8; t++) {
            for (int i = 0; i < planes; i++) fleet[i].step(1.0);
            collisions += detector.detect(fleet);
        }
        return collisions;
    }
}
"""

# DeltaBlue: one-way constraint solver on a chain of variables, with the
# original Strength / UnaryConstraint / BinaryConstraint hierarchy.
DELTABLUE = """
class Strength {
    int value;
    Strength(int v) { value = v; }
    boolean stronger(Strength other) { return value < other.value; }
    boolean weaker(Strength other) { return value > other.value; }
}
class DBVariable {
    int value;
    Vector constraints;
    AbstractConstraint determinedBy;
    int mark;
    Strength walkStrength;
    boolean stay;
    DBVariable(int v) {
        value = v;
        constraints = new Vector();
        determinedBy = null;
        mark = 0;
        walkStrength = new Strength(8);
        stay = true;
    }
    void addConstraint(AbstractConstraint c) { constraints.append(c); }
    void removeConstraint(AbstractConstraint c) {
        constraints.remove(c);
        if (determinedBy == c) determinedBy = null;
    }
}
class AbstractConstraint {
    Strength strength;
    AbstractConstraint() { strength = new Strength(4); }
    boolean isSatisfied() { return false; }
    void addToGraph() { }
    void removeFromGraph() { }
    void chooseMethod(int mark) { }
    void execute() { }
    DBVariable output() { return null; }
    boolean inputsKnown(int mark) { return true; }
    void markUnsatisfied() { }
    void incrementalAdd(Planner planner) {
        int mark = planner.newMark();
        addToGraph();
        chooseMethod(mark);
        planner.incrementalAdd(this, mark);
    }
}
class UnaryConstraint extends AbstractConstraint {
    DBVariable out;
    boolean satisfied;
    UnaryConstraint(DBVariable v, int strengthValue, Planner planner) {
        out = v;
        strength = new Strength(strengthValue);
        satisfied = false;
        addToGraph();
        incrementalAdd(planner);
    }
    void addToGraph() { out.addConstraint(this); satisfied = false; }
    void removeFromGraph() { out.removeConstraint(this); satisfied = false; }
    boolean isSatisfied() { return satisfied; }
    void chooseMethod(int mark) {
        satisfied = out.mark != mark && strength.stronger(out.walkStrength);
    }
    void markUnsatisfied() { satisfied = false; }
    DBVariable output() { return out; }
    void execute() { }
}
class StayConstraint extends UnaryConstraint {
    StayConstraint(DBVariable v, int s, Planner planner) { super(v, s, planner); }
}
class EditConstraint extends UnaryConstraint {
    EditConstraint(DBVariable v, int s, Planner planner) { super(v, s, planner); }
}
class ScaleConstraint extends AbstractConstraint {
    DBVariable src;
    DBVariable dest;
    int scale;
    boolean satisfied;
    ScaleConstraint(DBVariable a, DBVariable b, int k, int strengthValue, Planner planner) {
        src = a; dest = b; scale = k;
        strength = new Strength(strengthValue);
        satisfied = false;
        addToGraph();
        incrementalAdd(planner);
    }
    void addToGraph() { src.addConstraint(this); dest.addConstraint(this); satisfied = false; }
    void removeFromGraph() { src.removeConstraint(this); dest.removeConstraint(this); satisfied = false; }
    boolean isSatisfied() { return satisfied; }
    void chooseMethod(int mark) {
        satisfied = dest.mark != mark && strength.stronger(dest.walkStrength);
    }
    void markUnsatisfied() { satisfied = false; }
    DBVariable output() { return dest; }
    boolean inputsKnown(int mark) { return src.mark == mark || src.stay || src.determinedBy == null; }
    void execute() { dest.value = src.value * scale; }
}
class Planner {
    int currentMark;
    Planner() { currentMark = 0; }
    int newMark() { currentMark++; return currentMark; }
    void incrementalAdd(AbstractConstraint c, int mark) {
        if (!c.isSatisfied()) return;
        DBVariable out = c.output();
        AbstractConstraint overridden = out.determinedBy;
        if (overridden != null) overridden.markUnsatisfied();
        out.determinedBy = c;
        out.walkStrength = c.strength;
        out.mark = mark;
        c.execute();
        // propagate along the chain
        for (int i = 0; i < out.constraints.size(); i++) {
            AbstractConstraint next = (AbstractConstraint) out.constraints.at(i);
            if (next != c && next.inputsKnown(mark) && next.isSatisfied()) {
                next.execute();
            }
        }
    }
}
class DeltaBlue {
    int benchmark() {
        Planner planner = new Planner();
        int n = 12;
        DBVariable[] chain = new DBVariable[n];
        for (int i = 0; i < n; i++) chain[i] = new DBVariable(i);
        new StayConstraint(chain[n - 1], 6, planner);
        for (int i = 0; i < n - 1; i++) {
            new ScaleConstraint(chain[i], chain[i + 1], 2, 4, planner);
        }
        EditConstraint edit = new EditConstraint(chain[0], 2, planner);
        int total = 0;
        for (int round = 1; round <= 5; round++) {
            chain[0].value = round;
            planner.incrementalAdd(edit, planner.newMark());
            total += chain[n - 1].value;
        }
        for (int i = 0; i < n; i++) total += chain[i].value;
        return total;
    }
}
"""

# Havlak-style loop recognition: DFS numbering, back-edge detection, loop
# membership by backward reachability inside DFS intervals.
HAVLAK = """
class BasicBlock {
    int id;
    Vector inEdges;
    Vector outEdges;
    int dfsNum;
    boolean visited;
    BasicBlock(int name) {
        id = name;
        inEdges = new Vector();
        outEdges = new Vector();
        dfsNum = -1;
        visited = false;
    }
}
class ControlFlowGraph {
    Vector blocks;
    BasicBlock start;
    ControlFlowGraph() { blocks = new Vector(); start = null; }
    BasicBlock createNode(int name) {
        BasicBlock node = new BasicBlock(name);
        blocks.append(node);
        if (start == null) start = node;
        return node;
    }
    void addEdge(BasicBlock from, BasicBlock to) {
        from.outEdges.append(to);
        to.inEdges.append(from);
    }
    int size() { return blocks.size(); }
}
class LoopFinder {
    ControlFlowGraph cfg;
    int counter;
    LoopFinder(ControlFlowGraph graph) { cfg = graph; counter = 0; }
    void dfs(BasicBlock node) {
        node.visited = true;
        node.dfsNum = counter;
        counter++;
        for (int i = 0; i < node.outEdges.size(); i++) {
            BasicBlock target = (BasicBlock) node.outEdges.at(i);
            if (!target.visited) dfs(target);
        }
    }
    int findLoops() {
        for (int i = 0; i < cfg.blocks.size(); i++) {
            BasicBlock b = (BasicBlock) cfg.blocks.at(i);
            b.visited = false;
            b.dfsNum = -1;
        }
        counter = 0;
        dfs(cfg.start);
        int loops = 0;
        for (int i = 0; i < cfg.blocks.size(); i++) {
            BasicBlock b = (BasicBlock) cfg.blocks.at(i);
            for (int j = 0; j < b.outEdges.size(); j++) {
                BasicBlock target = (BasicBlock) b.outEdges.at(j);
                // back edge: target dominates-ish (earlier in DFS) and reaches b
                if (target.dfsNum >= 0 && target.dfsNum <= b.dfsNum) loops++;
            }
        }
        return loops;
    }
}
class Havlak {
    ControlFlowGraph buildGraph(int loopsPerLevel) {
        ControlFlowGraph cfg = new ControlFlowGraph();
        BasicBlock entry = cfg.createNode(0);
        BasicBlock current = entry;
        int name = 1;
        for (int i = 0; i < loopsPerLevel; i++) {
            // diamond with a loop back edge
            BasicBlock header = cfg.createNode(name); name++;
            BasicBlock left = cfg.createNode(name); name++;
            BasicBlock right = cfg.createNode(name); name++;
            BasicBlock join = cfg.createNode(name); name++;
            cfg.addEdge(current, header);
            cfg.addEdge(header, left);
            cfg.addEdge(header, right);
            cfg.addEdge(left, join);
            cfg.addEdge(right, join);
            cfg.addEdge(join, header);
            current = join;
        }
        return cfg;
    }
    int benchmark() {
        ControlFlowGraph cfg = buildGraph(12);
        LoopFinder finder = new LoopFinder(cfg);
        int total = 0;
        for (int i = 0; i < 4; i++) total += finder.findLoops();
        return total * 1000 + cfg.size();
    }
}
"""

# Recursive-descent JSON parser over a fixed document, with the original's
# value-class hierarchy.
JSON = """
class JsonValue {
    boolean isObject() { return false; }
    boolean isArray() { return false; }
    boolean isNumber() { return false; }
    boolean isString() { return false; }
    boolean isLiteral() { return false; }
    int weight() { return 1; }
}
class JsonString extends JsonValue {
    String value;
    JsonString(String v) { value = v; }
    boolean isString() { return true; }
    int weight() { return 1 + value.length(); }
}
class JsonNumber extends JsonValue {
    int value;
    JsonNumber(int v) { value = v; }
    boolean isNumber() { return true; }
    int weight() { return 2; }
}
class JsonLiteral extends JsonValue {
    String name;
    JsonLiteral(String n) { name = n; }
    boolean isLiteral() { return true; }
}
class JsonArray extends JsonValue {
    Vector items;
    JsonArray() { items = new Vector(); }
    boolean isArray() { return true; }
    void add(JsonValue v) { items.append(v); }
    int weight() {
        int total = 1;
        for (int i = 0; i < items.size(); i++) {
            JsonValue v = (JsonValue) items.at(i);
            total += v.weight();
        }
        return total;
    }
}
class JsonObject extends JsonValue {
    Vector names;
    Vector values;
    JsonObject() { names = new Vector(); values = new Vector(); }
    boolean isObject() { return true; }
    void add(String name, JsonValue v) { names.append(name); values.append(v); }
    int weight() {
        int total = 1;
        for (int i = 0; i < values.size(); i++) {
            JsonValue v = (JsonValue) values.at(i);
            String n = (String) names.at(i);
            total += v.weight() + n.length();
        }
        return total;
    }
}
class JsonParser {
    String input;
    int index;
    JsonParser(String text) { input = text; index = 0; }
    int peek() {
        if (index >= input.length()) return -1;
        return input.charAt(index);
    }
    int read() { int c = peek(); index++; return c; }
    void skipWhitespace() {
        while (peek() == ' ' || peek() == '\\n' || peek() == '\\t') index++;
    }
    JsonValue parseValue() {
        skipWhitespace();
        int c = peek();
        if (c == '{') return parseObject();
        if (c == '[') return parseArray();
        if (c == '"') return new JsonString(parseString());
        if (c == 't') { index += 4; return new JsonLiteral("true"); }
        if (c == 'f') { index += 5; return new JsonLiteral("false"); }
        if (c == 'n') { index += 4; return new JsonLiteral("null"); }
        return parseNumber();
    }
    JsonObject parseObject() {
        JsonObject obj = new JsonObject();
        read(); // {
        skipWhitespace();
        if (peek() == '}') { read(); return obj; }
        while (true) {
            skipWhitespace();
            String name = parseString();
            skipWhitespace();
            read(); // :
            obj.add(name, parseValue());
            skipWhitespace();
            if (peek() == ',') { read(); } else { read(); return obj; }
        }
    }
    JsonArray parseArray() {
        JsonArray arr = new JsonArray();
        read(); // [
        skipWhitespace();
        if (peek() == ']') { read(); return arr; }
        while (true) {
            arr.add(parseValue());
            skipWhitespace();
            if (peek() == ',') { read(); } else { read(); return arr; }
        }
    }
    String parseString() {
        read(); // "
        int start = index;
        while (peek() != '"') index++;
        String result = input.substring(start, index);
        read(); // "
        return result;
    }
    JsonValue parseNumber() {
        int start = index;
        if (peek() == '-') index++;
        while (peek() >= '0' && peek() <= '9') index++;
        String digits = input.substring(start, index);
        int value = 0;
        int sign = 1;
        int i = 0;
        if (digits.charAt(0) == '-') { sign = -1; i = 1; }
        while (i < digits.length()) {
            value = value * 10 + (digits.charAt(i) - '0');
            i++;
        }
        return new JsonNumber(value * sign);
    }
}
class Json {
    static final String DOCUMENT = "{\\"head\\": {\\"requestCounter\\": 4}, \\"operations\\": [[\\"destroy\\", \\"w54\\"], [\\"set\\", \\"w2\\", {\\"activeControl\\": \\"w99\\"}], [\\"set\\", \\"w21\\", {\\"customVariant\\": \\"variant_navigation\\"}], [\\"set\\", \\"w28\\", {\\"customText\\": \\"Dynamic fonts\\"}], [\\"call\\", \\"w1\\", \\"measure\\", {\\"strings\\": [\\"text one\\", \\"text two\\"], \\"counts\\": [1, 2, 3, -7]}]]}";
    int benchmark() {
        int total = 0;
        for (int i = 0; i < 3; i++) {
            JsonParser parser = new JsonParser(Json.DOCUMENT);
            JsonValue doc = parser.parseValue();
            total += doc.weight();
        }
        return total;
    }
}
"""

# Richards OS-scheduler simulation: the classic task/packet state machine
# with the original task hierarchy, reduced queue lengths.
RICHARDS = """
class Packet {
    Packet link;
    int identity;
    int kind;
    int datum;
    int[] data;
    Packet(Packet l, int id, int k) {
        link = l;
        identity = id;
        kind = k;
        datum = 0;
        data = new int[4];
    }
}
class TaskControlBlock {
    TaskControlBlock link;
    int identity;
    int priority;
    Packet input;
    boolean packetPending;
    boolean taskWaiting;
    boolean taskHolding;
    Scheduler scheduler;
    TaskControlBlock(TaskControlBlock l, int id, int prio, Packet queue, Scheduler s) {
        link = l;
        identity = id;
        priority = prio;
        input = queue;
        packetPending = queue != null;
        taskWaiting = false;
        taskHolding = false;
        scheduler = s;
    }
    TaskControlBlock runTask() {
        Packet message = null;
        if (isWaitingWithPacket()) {
            message = input;
            input = message.link;
            packetPending = input != null;
            taskWaiting = false;
        }
        return processPacket(message);
    }
    TaskControlBlock processPacket(Packet work) { return scheduler.markWaiting(); }
    boolean isWaitingWithPacket() { return packetPending && taskWaiting && !taskHolding; }
    TaskControlBlock addPacket(Packet packet, TaskControlBlock old) {
        packet.link = null;
        if (input == null) {
            input = packet;
            packetPending = true;
            if (priority > old.priority) return this;
        } else {
            Packet mouse = input;
            while (mouse.link != null) mouse = mouse.link;
            mouse.link = packet;
        }
        return old;
    }
}
class IdleTask extends TaskControlBlock {
    int count;
    int control;
    IdleTask(int id, int prio, int cnt, Scheduler s) {
        super(null, id, prio, null, s);
        count = cnt;
        control = 1;
    }
    TaskControlBlock processPacket(Packet work) {
        count--;
        if (count == 0) return scheduler.holdSelf();
        if ((control & 1) == 0) {
            control = control / 2;
            return scheduler.release(1);
        }
        control = (control / 2) ^ 53256;
        return scheduler.release(2);
    }
}
class WorkerTask extends TaskControlBlock {
    int destination;
    int count;
    WorkerTask(int id, int prio, Packet queue, Scheduler s) {
        super(null, id, prio, queue, s);
        destination = 1;
        count = 0;
    }
    TaskControlBlock processPacket(Packet work) {
        if (work == null) return scheduler.markWaiting();
        if (destination == 1) destination = 2; else destination = 1;
        work.identity = destination;
        work.datum = 0;
        for (int i = 0; i < 4; i++) {
            count++;
            if (count > 26) count = 1;
            work.data[i] = 64 + count;
        }
        return scheduler.queuePacket(work);
    }
}
class HandlerTask extends TaskControlBlock {
    Packet workIn;
    Packet deviceIn;
    HandlerTask(int id, int prio, Packet queue, Scheduler s) {
        super(null, id, prio, queue, s);
        workIn = null;
        deviceIn = null;
    }
    TaskControlBlock processPacket(Packet work) {
        if (work != null) {
            if (work.kind == 1) workIn = appendTo(workIn, work);
            else deviceIn = appendTo(deviceIn, work);
        }
        if (workIn != null) {
            int count = workIn.datum;
            if (count >= 4) {
                Packet rest = workIn.link;
                scheduler.holdCount++;
                workIn = rest;
            } else if (deviceIn != null) {
                Packet device = deviceIn;
                deviceIn = device.link;
                device.datum = workIn.data[count];
                workIn.datum = count + 1;
                return scheduler.queuePacket(device);
            }
        }
        return scheduler.markWaiting();
    }
    Packet appendTo(Packet queue, Packet packet) {
        packet.link = null;
        if (queue == null) return packet;
        Packet mouse = queue;
        while (mouse.link != null) mouse = mouse.link;
        mouse.link = packet;
        return queue;
    }
}
class Scheduler {
    TaskControlBlock taskList;
    TaskControlBlock currentTask;
    TaskControlBlock[] taskTable;
    int queueCount;
    int holdCount;
    Scheduler() {
        taskList = null;
        currentTask = null;
        taskTable = new TaskControlBlock[6];
        queueCount = 0;
        holdCount = 0;
    }
    void addTask(int identity, TaskControlBlock task) {
        task.link = taskList;
        taskList = task;
        taskTable[identity] = task;
    }
    void schedule() {
        currentTask = taskList;
        int guard = 0;
        while (currentTask != null && guard < 5000) {
            guard++;
            TaskControlBlock next;
            if (currentTask.taskHolding || (currentTask.taskWaiting && !currentTask.packetPending)) {
                next = currentTask.link;
            } else {
                next = currentTask.runTask();
            }
            currentTask = next;
        }
    }
    TaskControlBlock markWaiting() {
        currentTask.taskWaiting = true;
        return currentTask.link;
    }
    TaskControlBlock holdSelf() {
        holdCount++;
        currentTask.taskHolding = true;
        return currentTask.link;
    }
    TaskControlBlock release(int identity) {
        TaskControlBlock task = taskTable[identity];
        if (task == null) return null;
        task.taskHolding = false;
        if (task.priority > currentTask.priority) return task;
        return currentTask;
    }
    TaskControlBlock queuePacket(Packet packet) {
        TaskControlBlock task = taskTable[packet.identity];
        if (task == null) return null;
        queueCount++;
        return task.addPacket(packet, currentTask);
    }
}
class Richards {
    int benchmark() {
        Scheduler scheduler = new Scheduler();
        scheduler.addTask(0, new IdleTask(0, 0, 200, scheduler));
        Packet wq = new Packet(null, 1, 1);
        wq = new Packet(wq, 1, 1);
        scheduler.addTask(1, new WorkerTask(1, 1000, wq, scheduler));
        Packet hq = new Packet(null, 2, 2);
        hq = new Packet(hq, 2, 2);
        hq = new Packet(hq, 2, 2);
        scheduler.addTask(2, new HandlerTask(2, 2000, hq, scheduler));
        scheduler.addTask(3, new HandlerTask(3, 3000, null, scheduler));
        scheduler.schedule();
        return scheduler.queueCount * 1000 + scheduler.holdCount;
    }
}
"""
