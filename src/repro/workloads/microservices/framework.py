"""Microservice-framework simulacrum generator.

The paper evaluates a *hello-world* workload on micronaut, quarkus, and
spring, because it is the framework startup (not user code) being measured
(Sec. 7.1).  This generator emits a MiniJava "framework" with the moving
parts that dominate real startups:

* a property/config subsystem parsed from an embedded resource,
* a logger with level tables,
* a DI-style bean registry that instantiates generated component beans
  (controllers/services/repositories) in dependency order,
* a router mapping paths to controllers, a JSON codec for the response,
* background threads (scheduler heartbeat, metrics), and
* an HTTP-ish accept loop that produces the first response (``respond``)
  and then keeps serving until the harness SIGKILLs it.

The three frameworks differ in bean counts, config size, eager-vs-lazy
initialization mix, and thread counts — enough for distinct layouts and
distinct profiles, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..ballast import generate_ballast

_KINDS = ("Controller", "Service", "Repository")


@dataclass(frozen=True)
class FrameworkSpec:
    """Shape of one framework simulacrum."""

    name: str
    beans: int = 12
    config_entries: int = 18
    eager_fraction: float = 0.75  # beans initialized during boot
    threads: int = 2
    resource_bytes: int = 6144
    ballast_seed: int = 42
    ballast_subsystems: int = 14


def generate_framework(spec: FrameworkSpec) -> str:
    """Full MiniJava source for one framework + hello-world app."""
    parts = [
        _gen_logger(spec),
        _gen_config(spec),
        _gen_json_codec(),
        _gen_beans(spec),
        _gen_registry(spec),
        _gen_router(spec),
        _gen_background(spec),
        _gen_server(spec),
        generate_ballast(
            seed=spec.ballast_seed,
            subsystems=spec.ballast_subsystems,
            classes_per_subsystem=3,
            methods_per_class=7,
        ),
        _gen_main(spec),
    ]
    return "\n".join(parts)


def _gen_logger(spec: FrameworkSpec) -> str:
    return f"""
class Log {{
    static String[] levels = new String[5];
    static int threshold = 2;
    static int emitted = 0;
    static {{
        levels[0] = "TRACE"; levels[1] = "DEBUG"; levels[2] = "INFO";
        levels[3] = "WARN"; levels[4] = "ERROR";
    }}
    static void log(int level, String message) {{
        if (level >= threshold) {{
            Log.emitted = Log.emitted + 1;
        }}
    }}
    static void info(String message) {{ log(2, message); }}
    static void debug(String message) {{ log(1, message); }}
}}
"""


def _gen_config(spec: FrameworkSpec) -> str:
    pairs = []
    for index in range(spec.config_entries):
        pairs.append(f"{spec.name}.prop{index}=value-{index * 7 % 91}")
    blob = "\\n".join(pairs)
    return f"""
class Config {{
    static String raw = "{blob}";
    static String[] keys = new String[{spec.config_entries}];
    static String[] values = new String[{spec.config_entries}];
    static int count = 0;
    static void load() {{
        int start = 0;
        int idx = 0;
        while (start < raw.length() && idx < {spec.config_entries}) {{
            int eq = start;
            while (eq < raw.length() && raw.charAt(eq) != '=') eq++;
            int end = eq;
            while (end < raw.length() && raw.charAt(end) != '\\n') end++;
            keys[idx] = raw.substring(start, eq);
            values[idx] = raw.substring(eq + 1, end);
            idx++;
            start = end + 1;
        }}
        Config.count = idx;
        Log.info("config loaded");
    }}
    static String get(String key) {{
        for (int i = 0; i < count; i++) {{
            if (keys[i].equals(key)) return values[i];
        }}
        return null;
    }}
}}
"""


def _gen_json_codec() -> str:
    return """
class JsonWriter {
    String buffer;
    JsonWriter() { buffer = ""; }
    JsonWriter beginObject() { buffer = buffer + "{"; return this; }
    JsonWriter endObject() { buffer = buffer + "}"; return this; }
    JsonWriter field(String name, String value) {
        if (buffer.length() > 1) buffer = buffer + ",";
        buffer = buffer + "\\"" + name + "\\":\\"" + value + "\\"";
        return this;
    }
    String done() { return buffer; }
}
"""


def _gen_beans(spec: FrameworkSpec) -> str:
    parts: List[str] = ["""
class Bean {
    String beanName;
    boolean initialized;
    Bean(String n) { beanName = n; initialized = false; }
    void init() { initialized = true; }
    int handle(int request) { return request; }
}
"""]
    for index in range(spec.beans):
        kind = _KINDS[index % len(_KINDS)]
        cls = f"{kind}{index}"
        # Beans are deliberately self-similar (real frameworks stamp out
        # near-identical component metadata): same (size, weight) classes
        # produce structurally identical state arrays, the collision case
        # of the structural-hash strategy.
        weight = 3 + index % 3
        size = 8 + (index % 3) * 8
        parts.append(f"""
class {cls} extends Bean {{
    int[] state;
    int[] meta;
    String[] tags;
    {cls}() {{
        super("{cls.lower()}");
        state = new int[{size}];
        meta = new int[{size}];
        tags = new String[4];
    }}
    void init() {{
        for (int i = 0; i < state.length; i++) state[i] = (i * {weight}) % 53;
        for (int i = 0; i < meta.length; i++) meta[i] = (i + {weight}) * 3 % 31;
        tags[0] = beanName + ":singleton";
        tags[1] = beanName + ":ready";
        tags[2] = "scope-app";
        tags[3] = "kind-{kind.lower()}";
        initialized = true;
        Log.debug(beanName);
    }}
    int handle(int request) {{
        int acc = request;
        for (int i = 0; i < {weight}; i++) acc += state[i % state.length];
        acc += meta[acc % meta.length];
        return acc;
    }}
}}
""")
    return "\n".join(parts)


def _gen_registry(spec: FrameworkSpec) -> str:
    eager_count = int(spec.beans * spec.eager_fraction)
    creates = []
    for index in range(spec.beans):
        kind = _KINDS[index % len(_KINDS)]
        creates.append(f"        register(new {kind}{index}());")
    eager = [f"        initBean({i});" for i in range(eager_count)]
    return f"""
class BeanRegistry {{
    static Bean[] beans = new Bean[{spec.beans}];
    static int registered = 0;
    static void register(Bean bean) {{
        beans[registered] = bean;
        registered++;
    }}
    static void initBean(int idx) {{
        Bean bean = beans[idx];
        if (!bean.initialized) bean.init();
    }}
    static Bean lookup(int idx) {{
        Bean bean = beans[idx % registered];
        if (!bean.initialized) bean.init();
        return bean;
    }}
    static void bootstrap() {{
{chr(10).join(creates)}
{chr(10).join(eager)}
        Log.info("registry ready");
    }}
}}
"""


def _gen_router(spec: FrameworkSpec) -> str:
    return f"""
class Router {{
    static String[] paths = new String[4];
    static int[] targets = new int[4];
    static void mount() {{
        paths[0] = "/"; targets[0] = 0;
        paths[1] = "/hello"; targets[1] = 0;
        paths[2] = "/health"; targets[2] = 1;
        paths[3] = "/metrics"; targets[3] = 2;
        Log.info("routes mounted");
    }}
    static int route(String path) {{
        for (int i = 0; i < paths.length; i++) {{
            if (paths[i].equals(path)) return targets[i];
        }}
        return 0;
    }}
}}
"""


def _gen_background(spec: FrameworkSpec) -> str:
    spawns = []
    for index in range(spec.threads):
        spawns.append(f'        spawn("BackgroundWorker", "loop{index}");')
    loops = []
    for index in range(spec.threads):
        loops.append(f"""
    static void loop{index}() {{
        for (int i = 0; i < 200; i++) {{
            BackgroundWorker.ticks = BackgroundWorker.ticks + 1;
            yieldThread();
        }}
    }}""")
    return f"""
class BackgroundWorker {{
    static int ticks = 0;
{''.join(loops)}
    static void startAll() {{
{chr(10).join(spawns)}
    }}
}}
"""


def _gen_server(spec: FrameworkSpec) -> str:
    return f"""
class Server {{
    static int served = 0;
    static String handleRequest(String path) {{
        int target = Router.route(path);
        Bean bean = BeanRegistry.lookup(target);
        int payload = bean.handle(served);
        JsonWriter writer = new JsonWriter();
        writer.beginObject();
        writer.field("message", "Hello, World!");
        writer.field("framework", "{spec.name}");
        writer.field("payload", "" + payload);
        writer.endObject();
        Server.served = Server.served + 1;
        return writer.done();
    }}
    static void acceptLoop() {{
        String first = handleRequest("/hello");
        respond(first);
        // keep serving until the harness kills the process
        for (int i = 0; i < 100000; i++) {{
            handleRequest("/hello");
            yieldThread();
        }}
    }}
}}
"""


def _gen_main(spec: FrameworkSpec) -> str:
    return f"""
class AppResources {{
    // Registered during build-time initialization: ends up in the image
    // heap with inclusion reason "Resource".
    static Object banner = resource("{spec.name}-banner.txt", {spec.resource_bytes // 8});
    static Object appJarIndex = resource("{spec.name}-app-index.bin", {spec.resource_bytes});
}}
class Main {{
    static int main() {{
        RuntimeSystem.boot();
        if (AppResources.banner == null) return -1;
        Log.info("starting {spec.name}");
        Config.load();
        BeanRegistry.bootstrap();
        Router.mount();
        BackgroundWorker.startAll();
        Server.acceptLoop();
        return Server.served;
    }}
}}
"""
