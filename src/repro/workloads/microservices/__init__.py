"""Hello-world microservice workloads (micronaut / quarkus / spring)."""

from .suite import MICROSERVICE_NAMES, microservice_suite, microservice_workload

__all__ = ["MICROSERVICE_NAMES", "microservice_suite", "microservice_workload"]
