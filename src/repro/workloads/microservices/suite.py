"""The three microservice workloads of the evaluation (Sec. 7.1).

Hello-world services in the style of micronaut, quarkus, and spring.  The
specs encode the frameworks' folk characteristics rather than their code:
spring boots the most beans eagerly with the largest configuration; quarkus
does the most work at build time (fewer, leaner beans at runtime);
micronaut sits in between.  All three are multi-threaded and measured by
time-to-first-response, then SIGKILLed.
"""

from __future__ import annotations

from typing import Dict, List

from ...eval.pipeline import Workload
from .framework import FrameworkSpec, generate_framework

MICRONAUT = FrameworkSpec(
    name="micronaut",
    beans=24,
    config_entries=16,
    eager_fraction=0.5,
    threads=2,
    resource_bytes=6144,
    ballast_seed=2101,
    ballast_subsystems=14,
)

QUARKUS = FrameworkSpec(
    name="quarkus",
    beans=14,
    config_entries=12,
    eager_fraction=0.4,
    threads=2,
    resource_bytes=4096,
    ballast_seed=2202,
    ballast_subsystems=12,
)

SPRING = FrameworkSpec(
    name="spring",
    beans=32,
    config_entries=24,
    eager_fraction=0.8,
    threads=3,
    resource_bytes=8192,
    ballast_seed=2303,
    ballast_subsystems=16,
)

MICROSERVICE_SPECS = {spec.name: spec for spec in (MICRONAUT, QUARKUS, SPRING)}
MICROSERVICE_NAMES: List[str] = list(MICROSERVICE_SPECS)


def microservice_workload(name: str) -> Workload:
    """Assemble one microservice workload by framework name."""
    spec = MICROSERVICE_SPECS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown framework {name!r}; choose from {MICROSERVICE_NAMES}"
        )
    return Workload(
        name=name,
        source=generate_framework(spec),
        microservice=True,
        description=f"{name} hello-world startup (time to first response)",
    )


def microservice_suite() -> Dict[str, Workload]:
    """All three microservice workloads, keyed by framework name."""
    return {name: microservice_workload(name) for name in MICROSERVICE_NAMES}
