"""Runtime-library ballast generator.

A real Native-Image binary is dominated by runtime/JDK code and metadata
that the conservative points-to analysis pulls in but a run barely touches:
the paper measures that AWFY workloads access only ~4% of the heap-snapshot
objects, and Fig. 6 shows executed code scattered across a large ``.text``.

This module generates that ballast as MiniJava source: families of
"runtime subsystem" classes with many small methods and static data tables.
Everything is *reachable* — a guarded dispatcher calls into every subsystem
behind a statically unknown flag — but at run time only a thin slice
executes.  The generator is deterministic in its seed.
"""

from __future__ import annotations

import random
from typing import List

#: Subsystem name pools, riffing on what a Java runtime drags in.
_SUBSYSTEMS = [
    "CharsetCodec", "LocaleData", "TimeZoneDb", "SecurityPolicy", "JarIndex",
    "ReflectCache", "ProxyFactory", "AnnotationStore", "ModuleLayer",
    "ResourcePool", "RegexEngine", "Collator", "Normalizer", "CryptoProvider",
    "SslContext", "HttpCodec", "UriParser", "MimeTable", "ZipMeta",
    "Logging", "Preferences", "BeanIntrospector", "Serialization",
    "NumberFormatData", "CalendarData", "CurrencyData",
]

_METHOD_VERBS = ["lookup", "encode", "decode", "resolve", "validate",
                 "normalize", "index", "merge", "scan", "fold"]


def generate_ballast(
    seed: int = 7,
    subsystems: int = 10,
    classes_per_subsystem: int = 3,
    methods_per_class: int = 8,
    table_entries: int = 24,
    touched_subsystems: int = 2,
) -> str:
    """Generate ballast source plus a ``RuntimeSystem.boot()`` entry point.

    ``boot()`` runs a few methods of ``touched_subsystems`` subsystems (the
    warm slice) and guards calls into everything else behind
    ``RuntimeSystem.exhaustive`` (statically unknown, false at run time).
    """
    rng = random.Random(seed)
    names = _pick_names(rng, subsystems)
    parts: List[str] = []
    boot_warm: List[str] = []
    boot_cold: List[str] = []

    for sub_index, base in enumerate(names):
        for cls_index in range(classes_per_subsystem):
            cls_name = f"{base}{cls_index}" if cls_index else base
            parts.append(
                _gen_class(rng, cls_name, methods_per_class, table_entries)
            )
            call = f"{cls_name}.{_METHOD_VERBS[0]}0({sub_index + cls_index});"
            if sub_index < touched_subsystems:
                boot_warm.append(call)
            else:
                boot_cold.append(call)

    parts.append(_MIX_UTIL)
    parts.append(_gen_dispatcher(boot_warm, boot_cold))
    return "\n".join(parts)


#: A tiny, hot utility inlined into many cold subsystem CUs.  This is the
#: paper's Sec. 4 ambiguity in the wild: a method-ordering profile ranks a
#: cold CU early just because its inlined copy of `mix` executed early.
_MIX_UTIL = """
class MixUtil {
    static int mix(int x) { return ((x * 31) + 7) & 1048575; }
}
"""


def _pick_names(rng: random.Random, count: int) -> List[str]:
    pool = list(_SUBSYSTEMS)
    rng.shuffle(pool)
    names = []
    index = 0
    while len(names) < count:
        base = pool[index % len(pool)]
        suffix = "" if index < len(pool) else str(index // len(pool))
        names.append(base + suffix)
        index += 1
    return names


def _gen_class(rng: random.Random, name: str, methods: int, entries: int) -> str:
    lines = [f"class {name} {{"]
    # Static data tables: string and int tables initialized in <clinit>,
    # mirroring runtime metadata that lands in the heap snapshot.
    lines.append(f"    static String[] names = new String[{entries}];")
    lines.append(f"    static int[] table = new int[{entries}];")
    lines.append("    static {")
    lines.append(f"        for (int i = 0; i < {entries}; i++) {{")
    lines.append(f'            names[i] = "{name.lower()}-entry-" + i;')
    # Half the subsystems share table contents (runtime metadata really is
    # this repetitive) — the structural-hash collision case.
    mult = rng.choice([7, 13, 31]) if rng.random() < 0.5 else rng.randrange(3, 97, 2)
    lines.append(f"            table[i] = (i * {mult}) % 251;")
    lines.append("        }")
    lines.append("    }")
    for index in range(methods):
        verb = _METHOD_VERBS[index % len(_METHOD_VERBS)]
        body = _gen_method_body(rng, index, entries)
        lines.append(f"    static int {verb}{index}(int key) {{")
        if index + 1 < methods:
            # Chain to the next method behind a cold guard: the whole class
            # stays reachable while only the entry method executes.
            next_verb = _METHOD_VERBS[(index + 1) % len(_METHOD_VERBS)]
            lines.append(
                f"        if (key < -1073741824) return {next_verb}{index + 1}(key + 1);"
            )
        lines.extend(f"        {line}" for line in body)
        lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def _gen_method_body(rng: random.Random, index: int, entries: int) -> List[str]:
    """A small, varied method body touching the class's static tables."""
    shape = rng.randrange(4)
    if shape == 0:
        # A small fraction of bodies call the hot MixUtil helper; enough to
        # reproduce the method-ordering ambiguity without drowning it.
        mix = rng.random() < 0.45
        first = (
            f"int acc = MixUtil.mix(table[key % {entries}]);"
            if mix
            else f"int acc = table[key % {entries}];"
        )
        return [
            first,
            f"for (int i = 0; i < {rng.randrange(3, 9)}; i++) acc += table[(key + i) % {entries}];",
            "return acc;",
        ]
    if shape == 1:
        return [
            f"String label = names[key % {entries}];",
            "int acc = label.length();",
            f"if (acc > {rng.randrange(4, 20)}) acc -= key % 7;",
            "return acc;",
        ]
    if shape == 2:
        return [
            f"int low = key % {entries};",
            f"int high = (key * {rng.randrange(3, 31)}) % {entries};",
            "if (low > high) { int tmp = low; low = high; high = tmp; }",
            "int acc = 0;",
            "for (int i = low; i <= high; i++) acc ^= table[i];",
            "return acc;",
        ]
    return [
        f"int acc = {rng.randrange(1, 1000)};",
        "int cursor = key;",
        f"while (cursor > 0) {{ acc += table[cursor % {entries}]; cursor /= 2; }}",
        "return acc;",
    ]


def _gen_dispatcher(warm_calls: List[str], cold_calls: List[str]) -> str:
    lines = ["class RuntimeSystem {"]
    lines.append("    static boolean exhaustive = false;")
    lines.append("    static int bootResult = 0;")
    lines.append("    static void boot() {")
    lines.append("        int acc = MixUtil.mix(17);")
    for call in warm_calls:
        lines.append(f"        acc += {call[:-1]};")
    lines.append("        if (exhaustive) {")
    for call in cold_calls:
        lines.append(f"            acc += {call[:-1]};")
    lines.append("        }")
    lines.append("        bootResult = acc;")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines)
