"""Workloads: AWFY benchmarks, microservice simulacra, runtime ballast."""

from .awfy.suite import AWFY_NAMES, awfy_suite, awfy_workload
from .ballast import generate_ballast
from .microservices.suite import (
    MICROSERVICE_NAMES,
    microservice_suite,
    microservice_workload,
)

__all__ = [
    "AWFY_NAMES",
    "awfy_suite",
    "awfy_workload",
    "generate_ballast",
    "MICROSERVICE_NAMES",
    "microservice_suite",
    "microservice_workload",
]
