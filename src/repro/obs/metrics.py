"""Process-wide metrics registry: counters, gauges, histograms.

The pipeline is instrumented at every stage (compile, trace, post-process,
build, order, verify, measure, plus cache and scheduler events); this
module is the sink those instruments write to.  Design constraints:

* **Deterministic snapshots.**  A :class:`MetricsSnapshot` is plain,
  picklable data whose :meth:`~MetricsSnapshot.as_dict` is key-sorted, so
  two snapshots can be compared byte-for-byte.  Counters under the
  ``sweep.`` namespace are derived *only* from canonical task results and
  must therefore agree between serial and parallel runs of the same
  matrix; :meth:`MetricsSnapshot.deterministic` extracts exactly that
  plane.  Operational counters (``cache.*``, ``phase.*``, ``exec.*``,
  ``sched.*``) legitimately depend on scheduling (which worker compiled,
  who won a cache race) and are excluded from it.

* **Mergeable across processes.**  Worker processes each accumulate into
  their own process-wide registry; the scheduler captures a per-task
  *delta* snapshot (:meth:`MetricsSnapshot.diff`), ships it back in the
  ``TaskResult``, and merges it into the parent registry — counter merge
  is addition, histogram merge is bucket-wise addition, gauge merge takes
  the maximum, so merging is associative and commutative and the merged
  totals are independent of task order and worker count for the
  deterministic plane.

* **Cheap.**  Recording a counter is a dict add under a lock; histograms
  bucket by binary exponent (``math.frexp``) so they need no
  configuration and merge exactly.

* **Percentiles.**  Every histogram additionally feeds a deterministic
  :class:`~repro.util.quantiles.QuantileSketch`, so p50/p95/p99 are
  exact (below the sketch cap) or bounded to 1% relative error — and
  because sketch merge is associative bucket-wise addition, the merged
  percentiles are byte-identical whether the observations were recorded
  serially or sharded across workers and folded back.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..util.quantiles import QuantileSketch

#: counter-name prefix of the deterministic plane (canonical-result-derived)
DETERMINISTIC_PREFIX = "sweep."


def _bucket_of(value: float) -> int:
    """Histogram bucket key: the binary exponent of ``value``.

    Bucket ``e`` holds values in ``[2^(e-1), 2^e)``; zero lands in bucket
    0 via ``frexp``.  Exponent bucketing needs no preconfigured bounds and
    two histograms always share the same bucket grid, so merges are exact.
    """
    return math.frexp(abs(value))[1]


@dataclass
class HistogramSnapshot:
    """Frozen view of one histogram (picklable, mergeable)."""

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    #: binary-exponent bucket -> observation count
    buckets: Dict[int, int] = field(default_factory=dict)
    #: deterministic quantile sketch (p50/p95/p99; merge-order-invariant)
    sketch: QuantileSketch = field(default_factory=QuantileSketch)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        bucket = _bucket_of(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.sketch.observe(value)

    def quantile(self, q: float) -> Optional[float]:
        """Sketch-backed quantile (exact or within 1% relative error)."""
        return self.sketch.quantile(q)

    def merge(self, other: "HistogramSnapshot") -> None:
        self.count += other.count
        self.total += other.total
        for source in (other.min,):
            if source is not None:
                self.min = source if self.min is None else min(self.min, source)
        for source in (other.max,):
            if source is not None:
                self.max = source if self.max is None else max(self.max, source)
        for bucket, n in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + n
        self.sketch.merge(other.sketch)

    def diff(self, earlier: "HistogramSnapshot") -> "HistogramSnapshot":
        """What accrued since ``earlier`` (same-histogram snapshots only).

        Counters, buckets, and the quantile sketch are all monotone, so
        the delta is plain subtraction; min/max report current values.
        """
        part = HistogramSnapshot(
            count=self.count - earlier.count,
            total=self.total - earlier.total,
            min=self.min, max=self.max,
            sketch=self.sketch.diff(earlier.sketch),
        )
        for bucket, n in self.buckets.items():
            d = n - earlier.buckets.get(bucket, 0)
            if d:
                part.buckets[bucket] = d
        return part

    def copy(self) -> "HistogramSnapshot":
        return HistogramSnapshot(count=self.count, total=self.total,
                                 min=self.min, max=self.max,
                                 buckets=dict(self.buckets),
                                 sketch=self.sketch.copy())

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
            **self.sketch.quantiles(),
        }


@dataclass
class MetricsSnapshot:
    """Plain-data view of a registry at one instant."""

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSnapshot] = field(default_factory=dict)

    def copy(self) -> "MetricsSnapshot":
        return MetricsSnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms={k: v.copy() for k, v in self.histograms.items()},
        )

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold ``other`` into this snapshot (in place; returns self).

        Counters add, histograms add bucket-wise, gauges keep the maximum
        — all associative and commutative, so any merge order of the same
        deltas yields the same totals.
        """
        for name, n in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n
        for name, value in other.gauges.items():
            current = self.gauges.get(name)
            self.gauges[name] = value if current is None else max(current, value)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = hist.copy()
            else:
                mine.merge(hist)
        return self

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """What accrued since ``earlier`` (same-registry snapshots only).

        Counters and histogram buckets are monotonic, so the delta is a
        plain subtraction; gauges report their current value.  Entries
        with a zero delta are dropped so deltas stay small on the wire.
        """
        delta = MetricsSnapshot()
        for name, n in self.counters.items():
            d = n - earlier.counters.get(name, 0)
            if d:
                delta.counters[name] = d
        delta.gauges = dict(self.gauges)
        for name, hist in self.histograms.items():
            prior = earlier.histograms.get(name)
            if prior is None:
                delta.histograms[name] = hist.copy()
                continue
            if hist.count == prior.count:
                continue
            delta.histograms[name] = hist.diff(prior)
        return delta

    def deterministic(self) -> Dict[str, int]:
        """The scheduling-independent counter plane (``sweep.*``), sorted.

        Serial and parallel runs of the same matrix must agree on this
        dict exactly; the determinism tests compare it byte-for-byte.
        """
        return {name: n for name, n in sorted(self.counters.items())
                if name.startswith(DETERMINISTIC_PREFIX)}

    def as_dict(self) -> Dict[str, Any]:
        """Key-sorted plain-dict view (stable JSON serialization)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {name: hist.as_dict()
                           for name, hist in sorted(self.histograms.items())},
        }


class MetricsRegistry:
    """Mutable, thread-safe accumulation point for one process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._state = MetricsSnapshot()

    def counter(self, name: str, n: int = 1) -> int:
        """Add ``n`` to a counter; returns the new value."""
        with self._lock:
            value = self._state.counters.get(name, 0) + n
            self._state.counters[name] = value
            return value

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to its latest value (merge keeps the maximum)."""
        with self._lock:
            self._state.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into a histogram."""
        with self._lock:
            hist = self._state.histograms.get(name)
            if hist is None:
                hist = self._state.histograms[name] = HistogramSnapshot()
            hist.observe(value)

    def snapshot(self) -> MetricsSnapshot:
        """A detached copy of the current state (safe to pickle/compare)."""
        with self._lock:
            return self._state.copy()

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a (worker-process) snapshot into this registry."""
        with self._lock:
            self._state.merge(snapshot)

    def reset(self) -> None:
        """Drop all recorded metrics (test isolation)."""
        with self._lock:
            self._state = MetricsSnapshot()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrument records into."""
    return _REGISTRY


def metrics() -> MetricsRegistry:
    """Alias of :func:`get_registry` for terse call sites."""
    return _REGISTRY
