"""Correlated JSONL event log with causal ids.

The span tracer answers "how long did things take"; this log answers
"what *happened*, in what order, and during which unit of work".  Every
notable decision in the pipeline — degradation notes, chaos injections,
PGO epoch actions (refresh/rollback/quarantine), phase completions —
records one structured event carrying whatever causal ids are in scope
(``run`` / ``phase`` / ``task``), so a post-hoc reader can join the
stream against history entries, traces, and metrics by id instead of by
timestamp guesswork.

Mechanics mirror :class:`~repro.obs.spans.SpanTracer` deliberately:

* a process-wide singleton (:func:`get_event_log`) every call site
  appends to;
* worker processes accumulate into their own log; the scheduler drains
  each task's events (:meth:`EventLog.mark` / :meth:`events_since`)
  into the ``TaskResult`` and :meth:`absorb`-s them into the parent, so
  one exported stream covers the whole sweep;
* a hard buffer cap with a drop counter, never unbounded growth.

Causal ids are supplied by the :meth:`EventLog.context` context manager
— nested scopes layer their ids, so an event emitted inside
``context(run=...)`` → ``context(task=...)`` carries both.  The stack is
thread-local: concurrent threads do not see each other's scopes.

Export is JSONL, one event per line (:meth:`EventLog.export`), the
format ``repro report`` and the PGO timeline tests consume.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

#: hard cap on buffered events; overflow is counted, never grows unbounded
DEFAULT_MAX_EVENTS = 100_000


class EventLog:
    """Append-only in-process event buffer with causal-id scoping."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._local = threading.local()
        self._seq = 0
        self.max_events = max_events
        self.dropped = 0

    # -- causal scoping ------------------------------------------------------

    def _stack(self) -> List[Dict[str, Any]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def context(self, **ids: Any) -> Iterator[None]:
        """Attach causal ids (``run=...``, ``phase=...``, ``task=...``)
        to every event emitted inside the block; scopes nest."""
        stack = self._stack()
        stack.append(dict(ids))
        try:
            yield
        finally:
            stack.pop()

    def current_ids(self) -> Dict[str, Any]:
        """The merged causal ids of the active scopes (inner wins)."""
        merged: Dict[str, Any] = {}
        for frame in self._stack():
            merged.update(frame)
        return merged

    # -- recording -----------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> Optional[Dict[str, Any]]:
        """Record one event; returns it (or ``None`` if dropped at cap).

        The event is ``{"seq", "ts", "kind", <causal ids>, <fields>}``;
        explicit fields override scoped ids of the same name, and ``seq``
        is a per-log monotone sequence so readers can reconstruct exact
        order even when wall-clock timestamps collide.
        """
        event: Dict[str, Any] = {"kind": kind, "pid": os.getpid()}
        event.update(self.current_ids())
        event.update(fields)
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped += 1
                return None
            event["seq"] = self._seq
            event["ts"] = time.time()
            self._seq += 1
            self._events.append(event)
        return event

    # -- shipping (worker -> parent) -----------------------------------------

    def mark(self) -> int:
        """Position marker for :meth:`events_since` (per-task draining)."""
        with self._lock:
            return len(self._events)

    def events_since(self, mark: int) -> List[Dict[str, Any]]:
        """Events recorded after ``mark`` (detached copies)."""
        with self._lock:
            return [dict(event) for event in self._events[mark:]]

    def absorb(self, events: List[Dict[str, Any]]) -> None:
        """Merge events shipped from another process's log.

        Events are re-sequenced into the parent's ``seq`` space (their
        original sequence survives as ``worker_seq``) so the absorbed
        stream still has one total order.
        """
        with self._lock:
            for shipped in events:
                if len(self._events) >= self.max_events:
                    self.dropped += 1
                    continue
                event = dict(shipped)
                if "seq" in event:
                    event["worker_seq"] = event["seq"]
                event["seq"] = self._seq
                self._seq += 1
                self._events.append(event)

    # -- reading / export ----------------------------------------------------

    @property
    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(event) for event in self._events]

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        """Events of one kind, in emission order."""
        return [event for event in self.events if event.get("kind") == kind]

    def to_jsonl(self) -> str:
        """One key-sorted JSON object per line (trailing newline included)."""
        lines = [json.dumps(event, sort_keys=True, default=str)
                 for event in self.events]
        return "\n".join(lines) + ("\n" if lines else "")

    def export(self, path: Union[Path, str]) -> Path:
        """Write the JSONL event stream; returns the written path."""
        target = Path(path)
        target.write_text(self.to_jsonl())
        return target

    def reset(self) -> None:
        with self._lock:
            self._events = []
            self._seq = 0
            self.dropped = 0


_EVENT_LOG = EventLog()


def get_event_log() -> EventLog:
    """The process-wide event log every call site records into."""
    return _EVENT_LOG


def events() -> EventLog:
    """Alias of :func:`get_event_log` for terse call sites."""
    return _EVENT_LOG


__all__ = [
    "DEFAULT_MAX_EVENTS",
    "EventLog",
    "events",
    "get_event_log",
]
