"""Export-side helpers: trace/OpenMetrics validation and stats rendering.

``validate_trace`` is the schema check the obs-smoke CI job runs over
``repro trace`` output — it enforces the subset of the Chrome trace-event
format the tracer emits, so a malformed export fails CI instead of failing
silently in the trace viewer.  ``format_stats`` renders a
:class:`~repro.obs.metrics.MetricsSnapshot` as the human summary behind
``repro stats``.

``to_openmetrics`` renders a snapshot in the OpenMetrics text exposition
format (the Prometheus wire format): counters as ``<name>_total``,
gauges verbatim, histograms as summaries with sketch-backed
``quantile``-labelled samples plus ``_sum``/``_count`` — so the merged
registry of a whole sweep can be scraped or diffed by standard tooling.
``validate_openmetrics`` is its CI-side format check, the same role
``validate_trace`` plays for traces.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List

from .metrics import MetricsSnapshot
from ..util.quantiles import REPORTED_QUANTILES

#: event phases the tracer emits (complete spans and instants); metadata
#: events ("M") are tolerated for hand-merged traces
_ALLOWED_PHASES = {"X", "i", "M"}


def validate_trace(payload: Any) -> List[str]:
    """Validate a Chrome trace-event payload; returns problems (empty = ok)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{where}: missing 'name'")
        ph = event.get("ph")
        if ph not in _ALLOWED_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad 'ts' {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad 'dur' {dur!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: bad {key!r}")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: 'args' must be an object")
        if not isinstance(event.get("cat", ""), str):
            problems.append(f"{where}: 'cat' must be a string")
    return problems


def format_stats(snapshot: MetricsSnapshot) -> str:
    """Human-readable summary of one metrics snapshot."""
    lines: List[str] = []
    if snapshot.counters:
        lines.append("counters:")
        for name, value in sorted(snapshot.counters.items()):
            lines.append(f"  {name:<40} {value}")
    if snapshot.gauges:
        lines.append("gauges:")
        for name, value in sorted(snapshot.gauges.items()):
            lines.append(f"  {name:<40} {value:g}")
    if snapshot.histograms:
        lines.append("histograms:")
        for name, hist in sorted(snapshot.histograms.items()):
            lines.append(
                f"  {name:<40} n={hist.count} mean={hist.mean:.6g} "
                f"min={hist.min:.6g} max={hist.max:.6g}"
                if hist.count else f"  {name:<40} n=0"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def stats_dict(snapshot: MetricsSnapshot) -> Dict[str, Any]:
    """Machine-readable (``repro stats --json``) view of a snapshot."""
    payload = snapshot.as_dict()
    payload["deterministic"] = snapshot.deterministic()
    return payload


#: legal OpenMetrics metric-name characters (anything else becomes ``_``)
_OM_NAME = re.compile(r"[^a-zA-Z0-9_:]")

#: one OpenMetrics sample line: name, optional {labels}, value
_OM_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)$")


def _om_name(name: str) -> str:
    """Repo metric name -> OpenMetrics metric name (``repro_`` prefixed)."""
    return "repro_" + _OM_NAME.sub("_", name).strip("_")


def _om_value(value: float) -> str:
    """Float formatting per the exposition format (repr keeps precision)."""
    if value != value:  # pragma: no cover - we never record NaN
        return "NaN"
    return repr(float(value)) if isinstance(value, float) else str(value)


def to_openmetrics(snapshot: MetricsSnapshot) -> str:
    """OpenMetrics text exposition of one (merged) metrics snapshot.

    Counters become ``<name>_total`` counter families, gauges stay
    gauges, and histograms export as *summaries*: the sketch-backed
    p50/p95/p99 as ``quantile``-labelled samples plus ``_sum`` and
    ``_count``.  Output is name-sorted and ends with the mandatory
    ``# EOF`` terminator, so equal snapshots render byte-identically.
    """
    lines: List[str] = []
    for name, value in sorted(snapshot.counters.items()):
        om = _om_name(name)
        lines.append(f"# TYPE {om} counter")
        lines.append(f"{om}_total {value}")
    for name, value in sorted(snapshot.gauges.items()):
        om = _om_name(name)
        lines.append(f"# TYPE {om} gauge")
        lines.append(f"{om} {_om_value(value)}")
    for name, hist in sorted(snapshot.histograms.items()):
        om = _om_name(name)
        lines.append(f"# TYPE {om} summary")
        for q in REPORTED_QUANTILES:
            quantile = hist.quantile(q)
            if quantile is None:
                continue
            lines.append(f'{om}{{quantile="{q}"}} {_om_value(quantile)}')
        lines.append(f"{om}_sum {_om_value(hist.total)}")
        lines.append(f"{om}_count {hist.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def validate_openmetrics(text: str) -> List[str]:
    """Validate an OpenMetrics exposition; returns problems (empty = ok).

    Checks the invariants CI relies on: a single trailing ``# EOF``,
    every sample parseable as ``name[{labels}] value`` with a float
    value, every sample preceded by a ``# TYPE`` declaration for its
    family, and counter samples carrying the ``_total`` suffix.
    """
    problems: List[str] = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        problems.append("missing '# EOF' terminator")
    families: Dict[str, str] = {}
    for number, line in enumerate(lines, start=1):
        if not line:
            problems.append(f"line {number}: empty line")
            continue
        if line == "# EOF":
            if number != len(lines):
                problems.append(f"line {number}: '# EOF' before end of text")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "summary", "histogram"):
                problems.append(f"line {number}: bad TYPE line {line!r}")
            else:
                families[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT comments are legal, we just don't emit them
        match = _OM_SAMPLE.match(line)
        if not match:
            problems.append(f"line {number}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        family = next((f for f in (name, name.rsplit("_", 1)[0])
                       if f in families), None)
        if family is None:
            problems.append(f"line {number}: sample {name!r} has no TYPE")
        elif families[family] == "counter" and not name.endswith("_total"):
            problems.append(
                f"line {number}: counter sample {name!r} missing '_total'")
        try:
            float(match.group("value"))
        except ValueError:
            problems.append(
                f"line {number}: bad value {match.group('value')!r}")
    return problems
