"""Export-side helpers: trace-event schema validation and stats rendering.

``validate_trace`` is the schema check the obs-smoke CI job runs over
``repro trace`` output — it enforces the subset of the Chrome trace-event
format the tracer emits, so a malformed export fails CI instead of failing
silently in the trace viewer.  ``format_stats`` renders a
:class:`~repro.obs.metrics.MetricsSnapshot` as the human summary behind
``repro stats``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .metrics import MetricsSnapshot

#: event phases the tracer emits (complete spans and instants); metadata
#: events ("M") are tolerated for hand-merged traces
_ALLOWED_PHASES = {"X", "i", "M"}


def validate_trace(payload: Any) -> List[str]:
    """Validate a Chrome trace-event payload; returns problems (empty = ok)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{where}: missing 'name'")
        ph = event.get("ph")
        if ph not in _ALLOWED_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad 'ts' {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad 'dur' {dur!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: bad {key!r}")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: 'args' must be an object")
        if not isinstance(event.get("cat", ""), str):
            problems.append(f"{where}: 'cat' must be a string")
    return problems


def format_stats(snapshot: MetricsSnapshot) -> str:
    """Human-readable summary of one metrics snapshot."""
    lines: List[str] = []
    if snapshot.counters:
        lines.append("counters:")
        for name, value in sorted(snapshot.counters.items()):
            lines.append(f"  {name:<40} {value}")
    if snapshot.gauges:
        lines.append("gauges:")
        for name, value in sorted(snapshot.gauges.items()):
            lines.append(f"  {name:<40} {value:g}")
    if snapshot.histograms:
        lines.append("histograms:")
        for name, hist in sorted(snapshot.histograms.items()):
            lines.append(
                f"  {name:<40} n={hist.count} mean={hist.mean:.6g} "
                f"min={hist.min:.6g} max={hist.max:.6g}"
                if hist.count else f"  {name:<40} n=0"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def stats_dict(snapshot: MetricsSnapshot) -> Dict[str, Any]:
    """Machine-readable (``repro stats --json``) view of a snapshot."""
    payload = snapshot.as_dict()
    payload["deterministic"] = snapshot.deterministic()
    return payload
