"""Append-only bench history: the repo's performance trajectory.

Every gate before this PR compared against a single frozen snapshot
(``BENCH_pipeline.json``), so a slow drift spread over several PRs was
invisible.  :class:`BenchHistory` is the longitudinal store behind
``repro bench`` / ``repro history`` / ``repro report``: one JSONL file
(default :data:`DEFAULT_HISTORY`) with one schema-versioned entry per
successful bench run — run id, toolchain fingerprint, matrix config
hash, per-phase wall clocks, per-cell fault counts, and quantile
summaries of the run's phase-duration histograms.

Design points:

* **Append-only JSONL.**  One entry per line; ``append`` is an
  ``open("a")`` + ``fsync`` so a crash can at worst truncate the final
  line.  The lenient reader skips corrupt lines (counted in
  :attr:`BenchHistory.skipped`) instead of losing the whole trajectory —
  the same salvage philosophy as the PR-1 trace format.
* **Schema-versioned with migration.**  Every entry carries ``schema``;
  :func:`migrate_entry` upgrades old entries on read, and ``compact``
  rewrites the file with every surviving entry at the current schema.
* **Matrix-hash comparability.**  Entries are only comparable when they
  benchmarked the same matrix (same workloads × strategies × iterations
  × base seed); :func:`matrix_hash` fingerprints that, and the trend
  gate filters on it so a ``--quick`` run never gates against full-
  matrix history.

The trend math over these series lives in
:func:`repro.eval.bench.check_trend`; the rendering in
:mod:`repro.obs.report`.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

#: current entry schema (bump + add a migration step when fields change)
HISTORY_SCHEMA = 2

#: default history file beside ``BENCH_pipeline.json``
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: fields every current-schema entry must carry to be usable
_REQUIRED_FIELDS = ("schema", "run_id", "timestamp", "toolchain",
                    "matrix", "phases", "cell_faults")


def matrix_hash(config: Dict[str, Any]) -> str:
    """Fingerprint of a bench payload's ``config`` block.

    Two entries are trend-comparable iff their hashes agree: same
    workloads, strategies, iterations, and base seed.  Worker count and
    cache directory are deliberately excluded — they change wall clocks,
    which is exactly what the trend gate is supposed to notice, not a
    reason to partition the history.
    """
    material = json.dumps(
        {
            "workloads": list(config.get("workloads", [])),
            "strategies": list(config.get("strategies", [])),
            "iterations": config.get("iterations", 1),
            "base_seed": config.get("base_seed", 1),
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode()).hexdigest()[:12]


def toolchain_fingerprint(toolchain_version: str) -> Dict[str, str]:
    """What produced an entry: toolchain + interpreter + platform."""
    return {
        "version": toolchain_version,
        "python": platform.python_version(),
        "platform": platform.system().lower(),
    }


def make_entry(
    payload: Dict[str, Any],
    metrics_snapshot: Optional[Any] = None,
    timestamp: Optional[float] = None,
    run_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Build a history entry from one ``repro bench`` payload.

    ``metrics_snapshot`` (a :class:`~repro.obs.metrics.MetricsSnapshot`)
    contributes p50/p95/p99 quantile summaries of every ``phase.*``
    duration histogram the run recorded.  ``timestamp``/``run_id`` are
    injectable for deterministic tests; by default the id is a content
    hash over the canonical results plus the timestamp, so two runs of
    the same matrix still get distinct ids.
    """
    timestamp = time.time() if timestamp is None else timestamp
    config = payload.get("config", {})
    if run_id is None:
        material = json.dumps(payload.get("results", []), sort_keys=True)
        run_id = hashlib.sha256(
            f"{material}\x1f{timestamp!r}".encode()).hexdigest()[:12]
    phases: Dict[str, Dict[str, Any]] = {}
    for name, phase in sorted(payload.get("phases", {}).items()):
        phases[name] = {
            "wall_s": phase.get("wall_s", 0.0),
            "tasks": phase.get("tasks", 0),
            "cache_hits": phase.get("cache_hits", 0),
            "cache_misses": phase.get("cache_misses", 0),
        }
    cell_faults: Dict[str, float] = {}
    for result in payload.get("results", []):
        cell = f"{result.get('workload')}/{result.get('strategy')}"
        cell_faults[cell] = float(sum(
            m.get("faults", 0.0) for m in result.get("optimized", [])))
    entry: Dict[str, Any] = {
        "schema": HISTORY_SCHEMA,
        "run_id": run_id,
        "timestamp": timestamp,
        "toolchain": toolchain_fingerprint(payload.get("toolchain", "")),
        "matrix": {
            "hash": matrix_hash(config),
            "cells": config.get("cells", 0),
            "workloads": list(config.get("workloads", [])),
            "strategies": list(config.get("strategies", [])),
            "iterations": config.get("iterations", 1),
            "base_seed": config.get("base_seed", 1),
        },
        "phases": phases,
        "cell_faults": dict(sorted(cell_faults.items())),
        "ok": bool(payload.get("ok")),
        "deterministic": bool(payload.get("deterministic")),
    }
    for key in ("speedup_parallel", "speedup_warm"):
        if key in payload:
            entry[key] = payload[key]
    pgo = payload.get("pgo")
    if pgo:
        entry["pgo"] = {
            "epochs": pgo.get("epochs", 0),
            "refreshes": pgo.get("refreshes", 0),
            "rollbacks": pgo.get("rollbacks", 0),
            "quarantined": list(pgo.get("quarantined", [])),
            "unguarded_regressions": pgo.get("unguarded_regressions", 0),
        }
    if metrics_snapshot is not None:
        quantiles: Dict[str, Dict[str, Any]] = {}
        for name, hist in sorted(metrics_snapshot.histograms.items()):
            if not name.startswith("phase."):
                continue
            quantiles[name] = {"count": hist.count,
                               **hist.sketch.quantiles()}
        if quantiles:
            entry["metrics"] = quantiles
    return entry


def migrate_entry(entry: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Upgrade an entry to :data:`HISTORY_SCHEMA`; ``None`` = unusable.

    Unknown *newer* schemas are rejected (a rolled-back checkout must
    not misread entries it does not understand); missing required fields
    after migration also reject the entry.
    """
    schema = entry.get("schema")
    if schema == 1:
        entry = _migrate_v1(entry)
        schema = entry.get("schema")
    if schema != HISTORY_SCHEMA:
        return None
    if any(field not in entry for field in _REQUIRED_FIELDS):
        return None
    return entry


def _migrate_v1(entry: Dict[str, Any]) -> Dict[str, Any]:
    """v1 -> v2: flat phase walls became per-phase dicts, the bare
    toolchain string became a fingerprint dict, and the matrix hash moved
    under ``matrix.hash``."""
    upgraded = dict(entry)
    upgraded["schema"] = 2
    toolchain = entry.get("toolchain", "")
    if isinstance(toolchain, str):
        upgraded["toolchain"] = toolchain_fingerprint(toolchain)
    phases = entry.get("phases", {})
    if phases and all(isinstance(v, (int, float)) for v in phases.values()):
        upgraded["phases"] = {
            name: {"wall_s": float(wall), "tasks": 0,
                   "cache_hits": 0, "cache_misses": 0}
            for name, wall in phases.items()
        }
    if "matrix" not in upgraded:
        config = entry.get("config", {})
        upgraded["matrix"] = {
            "hash": entry.get("config_hash") or matrix_hash(config),
            "cells": config.get("cells", 0),
            "workloads": list(config.get("workloads", [])),
            "strategies": list(config.get("strategies", [])),
            "iterations": config.get("iterations", 1),
            "base_seed": config.get("base_seed", 1),
        }
        upgraded.pop("config", None)
        upgraded.pop("config_hash", None)
    upgraded.setdefault("cell_faults", {})
    return upgraded


class BenchHistory:
    """One JSONL history file: append, read (leniently), prune, compact."""

    def __init__(self, path: Union[Path, str] = DEFAULT_HISTORY) -> None:
        self.path = Path(path)
        #: corrupt or unusable lines the last read skipped
        self.skipped = 0

    def __len__(self) -> int:
        return len(self.entries())

    # -- writing -------------------------------------------------------------

    def append(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        """Append one entry (stamped with the current schema); fsynced."""
        entry = dict(entry)
        entry.setdefault("schema", HISTORY_SCHEMA)
        missing = [field for field in _REQUIRED_FIELDS if field not in entry]
        if missing:
            raise ValueError(
                f"history entry missing required field(s): {missing}")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return entry

    def _rewrite(self, entries: List[Dict[str, Any]]) -> None:
        """Atomic whole-file rewrite (tmp + rename, fsynced)."""
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    # -- reading -------------------------------------------------------------

    def entries(self, matrix_hash: Optional[str] = None,
                ) -> List[Dict[str, Any]]:
        """All usable entries, oldest first, migrated to the current schema.

        Corrupt lines and entries no migration can rescue are skipped
        (counted in :attr:`skipped`); ``matrix_hash`` filters to one
        comparable series.
        """
        self.skipped = 0
        out: List[Dict[str, Any]] = []
        if not self.path.exists():
            return out
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                except ValueError:
                    self.skipped += 1
                    continue
                if not isinstance(raw, dict):
                    self.skipped += 1
                    continue
                entry = migrate_entry(raw)
                if entry is None:
                    self.skipped += 1
                    continue
                if (matrix_hash is not None
                        and entry["matrix"].get("hash") != matrix_hash):
                    continue
                out.append(entry)
        return out

    def tail(self, n: int, matrix_hash: Optional[str] = None,
             ) -> List[Dict[str, Any]]:
        """The last ``n`` comparable entries, oldest first."""
        entries = self.entries(matrix_hash=matrix_hash)
        return entries[-n:] if n > 0 else []

    # -- maintenance ---------------------------------------------------------

    def prune(self, keep: Optional[int] = None,
              max_age_s: Optional[float] = None,
              now: Optional[float] = None) -> int:
        """Drop old entries; returns how many were removed.

        ``keep`` retains only the newest N entries; ``max_age_s`` drops
        entries older than that many seconds (against ``now``, injectable
        for tests).  Corrupt lines are dropped too (the rewrite only
        carries usable entries).
        """
        entries = self.entries()
        dropped_corrupt = self.skipped
        survivors = entries
        if max_age_s is not None:
            now = time.time() if now is None else now
            survivors = [e for e in survivors
                         if now - e.get("timestamp", 0.0) <= max_age_s]
        if keep is not None and keep >= 0 and len(survivors) > keep:
            survivors = survivors[len(survivors) - keep:]
        removed = len(entries) - len(survivors) + dropped_corrupt
        if removed:
            self._rewrite(survivors)
        return removed

    def compact(self) -> Tuple[int, int]:
        """Rewrite every usable entry at the current schema.

        Returns ``(kept, dropped)`` — dropped counts corrupt lines and
        entries no migration could rescue.  Idempotent.
        """
        entries = self.entries()
        dropped = self.skipped
        self._rewrite(entries)
        return len(entries), dropped

    # -- rendering -----------------------------------------------------------

    def describe(self) -> str:
        """Terminal one-liner-per-entry listing (``repro history list``)."""
        entries = self.entries()
        if not entries:
            return f"{self.path}: empty history"
        lines = [f"{self.path}: {len(entries)} entr(ies)"
                 + (f", {self.skipped} skipped" if self.skipped else "")]
        for entry in entries:
            stamp = time.strftime("%Y-%m-%d %H:%M:%S",
                                  time.gmtime(entry.get("timestamp", 0.0)))
            phases = entry.get("phases", {})
            walls = " ".join(
                f"{name}={phase.get('wall_s', 0.0):.2f}s"
                for name, phase in sorted(phases.items()))
            faults = sum(entry.get("cell_faults", {}).values())
            lines.append(
                f"  {entry['run_id']}  {stamp}Z  "
                f"matrix {entry['matrix'].get('hash', '?')} "
                f"({entry['matrix'].get('cells', '?')} cells)  "
                f"faults {faults:.0f}  {walls}"
            )
        return "\n".join(lines)


__all__ = [
    "BenchHistory",
    "DEFAULT_HISTORY",
    "HISTORY_SCHEMA",
    "make_entry",
    "matrix_hash",
    "migrate_entry",
    "toolchain_fingerprint",
]
