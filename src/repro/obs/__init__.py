"""Pipeline observability: metrics registry, phase spans, trace export.

The measurement loop the paper's evaluation depends on (per-section page
faults, Sec. 7.1) needs the pipeline itself to be observable: this package
provides the process-wide :class:`MetricsRegistry` (counters, gauges,
histograms with deterministic snapshot/merge for multiprocess runs) and
the :class:`SpanTracer` whose events export as Chrome trace-event JSON.

Instrumented call sites live in their own modules (pipeline phases in
:mod:`repro.eval.pipeline` and :mod:`repro.image.builder`, cache events in
:mod:`repro.cache.store`, scheduler tasks in :mod:`repro.eval.scheduler`,
executor runs in :mod:`repro.runtime.executor`, degradation/quarantine
events in :mod:`repro.robustness.degradation` and
:mod:`repro.validation.quarantine`); this package deliberately imports
nothing from them, so any module may instrument without cycles.

Startup attribution lives in :mod:`repro.obs.attrib`: a fault-observer
hook (off by default) records the per-run first-touch fault stream, and
:func:`attribute` joins it against the binary's section maps to blame
every fault on the CUs/heap objects resident on the faulted page.  The
differential explainer on top of it is :mod:`repro.eval.explain`.

CLI entry points: ``repro stats`` (merged metrics summary), ``repro
trace`` (Chrome trace export), and ``repro why`` (attribution diff).
"""

from .attrib import (
    FaultEvent,
    FaultObserver,
    SectionAttribution,
    StartupAttributionReport,
    UnitBlame,
    attribute,
    attribute_run,
    binary_tenancies,
)
from .events import EventLog, events, get_event_log
from .export import (
    format_stats,
    stats_dict,
    to_openmetrics,
    validate_openmetrics,
    validate_trace,
)
from .history import BenchHistory, HISTORY_SCHEMA, make_entry, matrix_hash
from .metrics import (
    DETERMINISTIC_PREFIX,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    metrics,
)
from .spans import SpanTracer, get_tracer, phase, tracer

__all__ = [
    "BenchHistory",
    "DETERMINISTIC_PREFIX",
    "EventLog",
    "FaultEvent",
    "FaultObserver",
    "HISTORY_SCHEMA",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SectionAttribution",
    "SpanTracer",
    "StartupAttributionReport",
    "UnitBlame",
    "attribute",
    "attribute_run",
    "binary_tenancies",
    "events",
    "format_stats",
    "get_event_log",
    "get_registry",
    "get_tracer",
    "make_entry",
    "matrix_hash",
    "metrics",
    "phase",
    "stats_dict",
    "to_openmetrics",
    "tracer",
    "validate_openmetrics",
    "validate_trace",
]
