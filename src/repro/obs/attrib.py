"""Startup attribution: blame every first-touch fault on what lives there.

The pipeline's aggregate fault counts (Sec. 7.1's per-section split) say
*how much* cold startup paid, never *why*.  This module turns the paging
simulator's fault stream into a diagnosis, the lens Meta's function-layout
work and Newell & Pupyrev's reordering work use to debug layouts:

* a :class:`FaultObserver` (plugged into
  :class:`~repro.runtime.paging.PageCache` via its ``observer`` hook, off
  by default) records each first-touch fault as a typed
  :class:`FaultEvent` ``(logical_time, section, page, offset, cost)``;
* :func:`attribute` joins those events against the binary's section maps
  and blames every fault on the compilation unit(s) / heap object(s)
  resident on the faulted page, producing a
  :class:`StartupAttributionReport` with per-unit fault shares, page
  co-tenancy, the first-touch timeline, and front-density-over-time.

A fault on a page shared by *k* units is split into *k* equal blame shares
(computed exactly, with :class:`~fractions.Fraction`), so per-unit shares
always sum to the section's fault count.  Pages owned by nothing —
alignment gaps, the native-library blob — are blamed on the synthetic
units :data:`PADDING_UNIT` / :data:`NATIVE_BLOB_UNIT` so no fault ever
goes unaccounted.

Layering: this module only needs duck-typed access to the built binary
(``binary.text.placed`` / ``binary.heap.ordered``) and imports nothing
from the pipeline at runtime, so every layer may use it without cycles.
The differential explainer on top of it lives in
:mod:`repro.eval.explain` (surfaced as ``repro why``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..util.pagemath import page_count, pages_spanned

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime dependency
    from ..image.binary import NativeImageBinary
    from ..runtime.paging import IoDevice

#: synthetic tenant of the statically linked native-library pages of ``.text``
NATIVE_BLOB_UNIT = "<native blob>"
#: synthetic tenant of pages no unit occupies (alignment gaps)
PADDING_UNIT = "<padding>"

#: the fraction of a section counted as its "front" by the density curves
FRONT_FRACTION = 0.25


@dataclass(frozen=True)
class FaultEvent:
    """One first-touch major fault, in the order the run charged it.

    ``logical_time`` is the 0-based global fault index of the run (counted
    across all sections, matching the executor's time model); ``offset``
    is the byte offset of the access that pulled the page in, clamped to
    the page start for multi-page touches; ``cost`` is the device's
    per-event price of this fault (:meth:`IoDevice.fault_cost_at`).
    """

    logical_time: int
    section: str
    page: int
    offset: int
    cost: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "t": self.logical_time,
            "section": self.section,
            "page": self.page,
            "offset": self.offset,
            "cost": self.cost,
        }


class FaultObserver:
    """Records one execution's fault stream (the ``PageCache`` hook).

    Off by default everywhere: an execution only carries an observer when
    :attr:`~repro.runtime.executor.ExecutionConfig.fault_observer` asks
    for one, so the zero-observer fast path stays a single ``is None``
    check per fault.
    """

    def __init__(self, device: Optional["IoDevice"] = None) -> None:
        self.events: List[FaultEvent] = []
        self._device = device

    def on_fault(self, section: str, page: int, offset: int) -> None:
        index = len(self.events)
        cost = self._device.fault_cost_at(index) if self._device else 0.0
        self.events.append(FaultEvent(
            logical_time=index, section=section, page=page,
            offset=offset, cost=cost,
        ))

    @property
    def total_cost(self) -> float:
        """Sum of per-event costs (== the device's aggregate fault cost)."""
        return math.fsum(event.cost for event in self.events)


# -- section tenancy ----------------------------------------------------------


@dataclass
class SectionTenancy:
    """Who occupies which page of one section (the layout-side join key)."""

    section: str
    total_pages: int
    #: page -> unit labels resident on it, in layout order
    tenants: Dict[int, Tuple[str, ...]]
    #: unit label -> every page it occupies (layout span, not just faulted)
    unit_pages: Dict[str, Tuple[int, ...]]
    #: pages before this index are reorderable (.text: the native blob and
    #: everything after it is not); equals ``total_pages`` for ``.svm_heap``
    reorderable_pages: int = 0

    def tenants_of(self, page: int) -> Tuple[str, ...]:
        return self.tenants.get(page, (PADDING_UNIT,))


def _add_tenant(tenants: Dict[int, List[str]],
                unit_pages: Dict[str, List[int]],
                unit: str, pages: range) -> None:
    for page in pages:
        tenants.setdefault(page, []).append(unit)
    unit_pages.setdefault(unit, []).extend(pages)


def text_tenancy(binary: "NativeImageBinary") -> SectionTenancy:
    """Page tenancy of ``.text``: placed CUs plus the native blob."""
    from ..image.sections import TEXT_SECTION

    tenants: Dict[int, List[str]] = {}
    unit_pages: Dict[str, List[int]] = {}
    for placed in binary.text.placed:
        _add_tenant(tenants, unit_pages, placed.cu.name,
                    pages_spanned(placed.offset, placed.cu.size))
    if binary.text.native_blob_size > 0:
        _add_tenant(tenants, unit_pages, NATIVE_BLOB_UNIT,
                    pages_spanned(binary.text.native_blob_offset,
                                  binary.text.native_blob_size))
    return SectionTenancy(
        section=TEXT_SECTION,
        total_pages=page_count(binary.text.size),
        tenants={page: tuple(units) for page, units in tenants.items()},
        unit_pages={unit: tuple(sorted(set(pages)))
                    for unit, pages in unit_pages.items()},
        reorderable_pages=page_count(binary.text.native_blob_offset),
    )


def heap_object_label(obj: Any) -> str:
    """Stable-ish label of one heap object: type plus traversal index.

    Traversal indexes are assigned by the (deterministic, seed-fixed)
    snapshotter, so two builds of the same source at the same seed agree;
    across mismatched builds they drift exactly the way the paper's
    incremental IDs do (Sec. 5.1) — good enough for a diagnosis lens.
    """
    return f"{obj.type_name}#{obj.index}"


def heap_tenancy(binary: "NativeImageBinary") -> SectionTenancy:
    """Page tenancy of ``.svm_heap``: every snapshotted object."""
    from ..image.sections import HEAP_SECTION

    tenants: Dict[int, List[str]] = {}
    unit_pages: Dict[str, List[int]] = {}
    for obj in binary.heap.ordered:
        _add_tenant(tenants, unit_pages, heap_object_label(obj),
                    pages_spanned(obj.address, max(obj.size, 1)))
    total = max(page_count(binary.heap.size), 1)
    return SectionTenancy(
        section=HEAP_SECTION,
        total_pages=total,
        tenants={page: tuple(units) for page, units in tenants.items()},
        unit_pages={unit: tuple(sorted(set(pages)))
                    for unit, pages in unit_pages.items()},
        reorderable_pages=total,
    )


def binary_tenancies(binary: "NativeImageBinary") -> Dict[str, SectionTenancy]:
    """Both sections' tenancy maps, keyed by section name."""
    text = text_tenancy(binary)
    heap = heap_tenancy(binary)
    return {text.section: text, heap.section: heap}


# -- attribution --------------------------------------------------------------


@dataclass
class UnitBlame:
    """One unit's share of a section's startup faults."""

    unit: str
    #: exact share-weighted fault count (co-tenant faults split equally);
    #: per-section shares sum to *exactly* the section's fault count
    share: Fraction
    #: share-weighted I/O cost in seconds
    cost: float
    #: logical time of the first fault blamed on this unit
    first_touch: Optional[int]
    #: faulted pages this unit was blamed on
    pages: Tuple[int, ...]

    @property
    def faults(self) -> float:
        """The share as a float, for display and ranking."""
        return float(self.share)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "unit": self.unit,
            "faults": self.faults,
            "cost": self.cost,
            "first_touch": self.first_touch,
            "pages": list(self.pages),
        }


@dataclass
class TimelineEntry:
    """One fault of the first-touch timeline, with its blamed units."""

    event: FaultEvent
    units: Tuple[str, ...]

    def as_dict(self) -> Dict[str, Any]:
        payload = self.event.as_dict()
        payload["units"] = list(self.units)
        return payload


@dataclass
class SectionAttribution:
    """Everything the fault stream says about one section."""

    section: str
    fault_count: int
    total_cost: float
    #: blamed units, heaviest first (ties by name)
    units: List[UnitBlame] = field(default_factory=list)
    #: faulted page -> its (layout-order) tenants
    page_tenants: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    #: layout span of every unit in the section (moved-detection join key)
    unit_pages: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    reorderable_pages: int = 0

    @property
    def front_quarter_pages(self) -> int:
        """Pages in the section's reorderable front quarter (>= 1)."""
        return max(int(self.reorderable_pages * FRONT_FRACTION), 1)

    def blame_of(self, unit: str) -> Optional[UnitBlame]:
        for blame in self.units:
            if blame.unit == unit:
                return blame
        return None

    def cotenancy(self) -> Dict[str, Tuple[str, ...]]:
        """Who shares a *faulted* page with whom (symmetric by construction)."""
        neighbours: Dict[str, set] = {}
        for tenants in self.page_tenants.values():
            for unit in tenants:
                neighbours.setdefault(unit, set()).update(
                    other for other in tenants if other != unit
                )
        return {unit: tuple(sorted(others))
                for unit, others in sorted(neighbours.items())}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "section": self.section,
            "fault_count": self.fault_count,
            "total_cost": self.total_cost,
            "reorderable_pages": self.reorderable_pages,
            "front_quarter_pages": self.front_quarter_pages,
            "units": [blame.as_dict() for blame in self.units],
            "cotenancy": {unit: list(others)
                          for unit, others in self.cotenancy().items()},
        }


@dataclass
class StartupAttributionReport:
    """The full diagnosis of one cold run's fault stream."""

    label: str
    sections: Dict[str, SectionAttribution]
    #: all faults in logical-time order, each with its blamed units
    timeline: List[TimelineEntry]
    #: per section: share of its faults so far that landed in the front
    #: quarter of the reorderable pages, sampled after each section fault
    front_density: Dict[str, List[float]]

    @property
    def total_faults(self) -> int:
        return sum(section.fault_count for section in self.sections.values())

    @property
    def total_cost(self) -> float:
        return math.fsum(section.total_cost for section in self.sections.values())

    def section(self, name: str) -> SectionAttribution:
        return self.sections[name]

    def as_dict(self) -> Dict[str, Any]:
        """Deterministic, JSON-ready view (key-sorted where it matters)."""
        return {
            "label": self.label,
            "total_faults": self.total_faults,
            "total_cost": self.total_cost,
            "sections": {name: self.sections[name].as_dict()
                         for name in sorted(self.sections)},
            "timeline": [entry.as_dict() for entry in self.timeline],
            "front_density": {name: list(curve)
                              for name, curve in sorted(self.front_density.items())},
        }


def attribute(
    binary: "NativeImageBinary",
    events: List[FaultEvent],
    label: str = "",
) -> StartupAttributionReport:
    """Join one run's fault stream against ``binary``'s section maps.

    Inputs: the built binary the run executed and the
    :class:`FaultEvent` list its observer recorded
    (:attr:`RunMetrics.fault_events`).  Returns the
    :class:`StartupAttributionReport`; raises :class:`ValueError` when
    ``events`` is ``None`` — the run was executed without
    ``fault_observer`` enabled, so there is nothing to attribute.
    """
    if events is None:
        raise ValueError(
            "run carries no fault events; execute with "
            "ExecutionConfig(fault_observer=True) to record them"
        )
    tenancies = binary_tenancies(binary)

    shares: Dict[Tuple[str, str], Fraction] = {}
    costs: Dict[Tuple[str, str], float] = {}
    first_touch: Dict[Tuple[str, str], int] = {}
    blamed_pages: Dict[Tuple[str, str], set] = {}
    counts: Dict[str, int] = {}
    section_cost: Dict[str, List[float]] = {}
    page_tenants: Dict[str, Dict[int, Tuple[str, ...]]] = {}
    timeline: List[TimelineEntry] = []
    front_density: Dict[str, List[float]] = {}
    front_hits: Dict[str, int] = {}

    for event in events:
        tenancy = tenancies.get(event.section)
        if tenancy is None:
            tenants = (PADDING_UNIT,)
            front_pages = 1
        else:
            tenants = tenancy.tenants_of(event.page)
            front_pages = max(
                int(tenancy.reorderable_pages * FRONT_FRACTION), 1
            )
        share = Fraction(1, len(tenants))
        cost_share = event.cost / len(tenants)
        for unit in tenants:
            key = (event.section, unit)
            shares[key] = shares.get(key, Fraction(0)) + share
            costs[key] = costs.get(key, 0.0) + cost_share
            first_touch.setdefault(key, event.logical_time)
            blamed_pages.setdefault(key, set()).add(event.page)
        counts[event.section] = counts.get(event.section, 0) + 1
        section_cost.setdefault(event.section, []).append(event.cost)
        page_tenants.setdefault(event.section, {})[event.page] = tenants
        timeline.append(TimelineEntry(event=event, units=tenants))
        if event.page < front_pages:
            front_hits[event.section] = front_hits.get(event.section, 0) + 1
        front_density.setdefault(event.section, []).append(
            front_hits.get(event.section, 0) / counts[event.section]
        )

    sections: Dict[str, SectionAttribution] = {}
    for name, tenancy in tenancies.items():
        section_units = [
            UnitBlame(
                unit=unit,
                share=shares[(sec, unit)],
                cost=costs[(sec, unit)],
                first_touch=first_touch.get((sec, unit)),
                pages=tuple(sorted(blamed_pages[(sec, unit)])),
            )
            for (sec, unit) in shares
            if sec == name
        ]
        section_units.sort(key=lambda blame: (-blame.share, blame.unit))
        sections[name] = SectionAttribution(
            section=name,
            fault_count=counts.get(name, 0),
            total_cost=math.fsum(section_cost.get(name, ())),
            units=section_units,
            page_tenants=dict(sorted(page_tenants.get(name, {}).items())),
            unit_pages=tenancy.unit_pages,
            reorderable_pages=tenancy.reorderable_pages,
        )
    return StartupAttributionReport(
        label=label,
        sections=sections,
        timeline=timeline,
        front_density=front_density,
    )


def attribute_run(
    binary: "NativeImageBinary",
    metrics: Any,
    label: str = "",
) -> StartupAttributionReport:
    """Attribute a finished run: joins ``metrics.fault_events`` to ``binary``."""
    return attribute(binary, getattr(metrics, "fault_events", None), label=label)
