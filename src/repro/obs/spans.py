"""Span tracer with Chrome trace-event export.

Every pipeline phase (compile, trace, post-process, build, order, verify,
measure), every scheduler task, and notable point events (cache evictions,
degradation decisions, quarantine convictions) record into the
process-wide tracer.  Export is the Chrome trace-event JSON format
(``chrome://tracing`` / Perfetto): complete events (``ph: "X"``) for
spans, instant events (``ph: "i"``) for point events.

Worker processes keep their own tracer; the scheduler drains each task's
events (:meth:`SpanTracer.events_since`) into the ``TaskResult`` and
absorbs them into the parent tracer, so one exported trace shows the whole
sweep with per-process ``pid`` lanes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from .metrics import metrics

#: hard cap on buffered events; overflow is counted, never grows unbounded
DEFAULT_MAX_EVENTS = 100_000


class SpanTracer:
    """Records spans/instants as ready-to-export trace-event dicts."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._epoch = time.perf_counter()
        self.max_events = max_events
        self.dropped = 0

    # -- recording ---------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def _emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped += 1
                dropped = True
            else:
                self._events.append(event)
                dropped = False
        if dropped:
            # Outside the tracer lock: the registry has its own.  The
            # counter makes silent span loss visible in ``repro stats``
            # and merges across workers like any other metric.
            metrics().counter("trace.dropped_events")

    @contextmanager
    def span(self, name: str, cat: str = "pipeline",
             **args: Any) -> Iterator[None]:
        """Measure a block as one complete ("X") trace event."""
        start = self._now_us()
        try:
            yield
        finally:
            self._emit({
                "name": name, "cat": cat, "ph": "X",
                "ts": start, "dur": self._now_us() - start,
                "pid": os.getpid(), "tid": threading.get_ident() & 0xFFFF,
                "args": args,
            })

    def instant(self, name: str, cat: str = "event", **args: Any) -> None:
        """Record a point event ("i", process scope)."""
        self._emit({
            "name": name, "cat": cat, "ph": "i", "s": "p",
            "ts": self._now_us(),
            "pid": os.getpid(), "tid": threading.get_ident() & 0xFFFF,
            "args": args,
        })

    # -- shipping (worker -> parent) ---------------------------------------

    def mark(self) -> int:
        """Position marker for :meth:`events_since` (per-task draining)."""
        with self._lock:
            return len(self._events)

    def events_since(self, mark: int) -> List[Dict[str, Any]]:
        """Events recorded after ``mark`` (detached copies)."""
        with self._lock:
            return [dict(event) for event in self._events[mark:]]

    def absorb(self, events: List[Dict[str, Any]]) -> None:
        """Merge events shipped from another process's tracer.

        Timestamps stay in the sender's own perf-counter timeline; the
        distinct ``pid`` keeps its lane separate in the trace viewer.
        """
        for event in events:
            self._emit(dict(event))

    # -- export ------------------------------------------------------------

    @property
    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON payload (``traceEvents`` object form)."""
        return {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_events": self.dropped},
        }

    def export(self, path: "Path | str") -> Path:
        """Write the Chrome trace JSON; returns the written path."""
        target = Path(path)
        target.write_text(json.dumps(self.to_chrome(), sort_keys=True) + "\n")
        return target

    def reset(self) -> None:
        with self._lock:
            self._events = []
            self.dropped = 0
            self._epoch = time.perf_counter()


_TRACER = SpanTracer()


def get_tracer() -> SpanTracer:
    """The process-wide tracer every instrument records into."""
    return _TRACER


def tracer() -> SpanTracer:
    """Alias of :func:`get_tracer` for terse call sites."""
    return _TRACER


@contextmanager
def phase(name: str, cat: str = "pipeline", **args: Any) -> Iterator[None]:
    """Instrument one pipeline phase: a span + a counter + a duration.

    Records ``phase.<name>`` (operational counter — *not* part of the
    deterministic plane; whether a phase actually ran depends on cache
    state and scheduling), observes ``phase.<name>.seconds``, and emits
    a ``phase`` event into the correlated event log with the phase name
    as a causal id for anything emitted inside the block.
    """
    from .events import get_event_log

    registry = metrics()
    log = get_event_log()
    start = time.perf_counter()
    with log.context(phase=name):
        with get_tracer().span(name, cat=cat, **args):
            yield
        wall = time.perf_counter() - start
        registry.counter(f"phase.{name}")
        registry.observe(f"phase.{name}.seconds", wall)
        log.emit("phase", name=name, wall_s=wall)
