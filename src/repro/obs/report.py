"""``repro report``: history trends as HTML dashboard + terminal summary.

Renders a :class:`~repro.obs.history.BenchHistory` trajectory with zero
dependencies: the HTML is one self-contained file (inline CSS, inline
SVG sparklines, no scripts, no external references) that can be attached
to a CI run or opened from a checkout; the terminal summary is the same
data as fixed-width text.

Per-series content:

* one sparkline per bench phase (serial/cold/warm/chaos wall clocks);
* one sparkline per matrix cell's fault total (workload/strategy);
* the PGO epoch timeline (refreshes, rollbacks, quarantines per run);
* regression annotations — a point is flagged when it breaches the same
  rolling median + robust-sigma band the trend gate
  (:func:`repro.eval.bench.check_trend`) uses, so the dashboard and the
  gate never disagree about what counts as a regression.
"""

from __future__ import annotations

import html
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..util.stats import MAD_SIGMA, mad, median

#: sparkline geometry (viewBox units; scales losslessly in the browser)
SPARK_W = 240
SPARK_H = 48
SPARK_PAD = 4

#: minimum history before a point can be flagged as regressed (mirrors
#: the trend gate's abstention threshold)
_MIN_PRIOR = 3

_CSS = """\
body { font: 14px/1.5 -apple-system, 'Segoe UI', sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.meta { color: #666; }
table.series { border-collapse: collapse; width: 100%; }
table.series td, table.series th { padding: .3rem .6rem; text-align: left;
       border-bottom: 1px solid #e5e5ef; vertical-align: middle; }
td.num { font-variant-numeric: tabular-nums; text-align: right; }
.spark { display: block; }
.spark polyline { fill: none; stroke: #3b6ecc; stroke-width: 1.5; }
.spark .pt { fill: #3b6ecc; }
.spark .regressed { fill: #cc3b3b; }
.badge { display: inline-block; border-radius: .6rem; padding: 0 .5rem;
       font-size: .8rem; color: #fff; }
.badge.refresh { background: #2d8a4e; }
.badge.rollback { background: #cc3b3b; }
.badge.retain { background: #8888a0; }
.regressed-label { color: #cc3b3b; font-weight: 600; }
"""


def _scale(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Map a series into sparkline viewBox coordinates."""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = max(len(values) - 1, 1)
    points = []
    for index, value in enumerate(values):
        x = SPARK_PAD + index * (SPARK_W - 2 * SPARK_PAD) / n
        y = (SPARK_H - SPARK_PAD
             - (value - lo) * (SPARK_H - 2 * SPARK_PAD) / span)
        points.append((round(x, 1), round(y, 1)))
    return points


def regression_flags(series: Sequence[float],
                     step_sigmas: float = 4.0,
                     rel_floor: float = 0.10) -> List[bool]:
    """Which points breach the trend gate's band against their *prior* runs.

    Point ``i`` is flagged when it exceeds the rolling median of points
    ``[0, i)`` by more than ``step_sigmas`` robust sigmas (MAD-scaled,
    floored at ``rel_floor`` of the median) — the same step band
    :func:`repro.eval.bench.check_trend` enforces, evaluated at every
    position so the dashboard shows *where* the trajectory went wrong.
    """
    flags = [False] * len(series)
    for index in range(_MIN_PRIOR, len(series)):
        prior = list(series[:index])
        center = median(prior)
        sigma = max(mad(prior) * MAD_SIGMA, rel_floor * abs(center), 1e-12)
        flags[index] = series[index] > center + step_sigmas * sigma
    return flags


def _sparkline(series: Sequence[float], flags: Sequence[bool]) -> str:
    """Inline SVG sparkline with regression markers."""
    if not series:
        return "<svg class='spark'></svg>"
    points = _scale(series)
    polyline = " ".join(f"{x},{y}" for x, y in points)
    dots = []
    for (x, y), flagged in zip(points, flags):
        cls = "pt regressed" if flagged else "pt"
        r = 3 if flagged else 1.5
        dots.append(f"<circle class='{cls}' cx='{x}' cy='{y}' r='{r}'/>")
    return (
        f"<svg class='spark' width='{SPARK_W}' height='{SPARK_H}' "
        f"viewBox='0 0 {SPARK_W} {SPARK_H}' role='img'>"
        f"<polyline points='{polyline}'/>" + "".join(dots) + "</svg>"
    )


def _series(entries: Sequence[Dict[str, Any]]) -> Dict[str, List[float]]:
    """Phase wall-clock series keyed by phase name (missing runs skipped)."""
    names = sorted({name for entry in entries
                    for name in entry.get("phases", {})})
    return {
        name: [float(entry["phases"][name]["wall_s"]) for entry in entries
               if name in entry.get("phases", {})]
        for name in names
    }


def _cell_series(entries: Sequence[Dict[str, Any]]) -> Dict[str, List[float]]:
    """Per-cell fault series keyed by ``workload/strategy``."""
    cells = sorted({cell for entry in entries
                    for cell in entry.get("cell_faults", {})})
    return {
        cell: [float(entry["cell_faults"][cell]) for entry in entries
               if cell in entry.get("cell_faults", {})]
        for cell in cells
    }


def _fmt_stamp(timestamp: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M", time.gmtime(timestamp)) + "Z"


def _series_rows(series: Dict[str, List[float]], unit: str,
                 kind: str) -> List[str]:
    rows = []
    for name, values in series.items():
        flags = regression_flags(values)
        latest = values[-1]
        label = html.escape(name)
        regressed = (" <span class='regressed-label'>regressed</span>"
                     if flags[-1] else "")
        slug = html.escape(
            kind + "-" + name.replace("/", "-").replace(" ", "-"))
        rows.append(
            f"<tr id='{slug}'><td>{label}{regressed}</td>"
            f"<td>{_sparkline(values, flags)}</td>"
            f"<td class='num'>{latest:.2f}{unit}</td>"
            f"<td class='num'>{median(values):.2f}{unit}</td>"
            f"<td class='num'>{len(values)}</td></tr>"
        )
    return rows


def _pgo_timeline(entries: Sequence[Dict[str, Any]]) -> str:
    """One badge row per run summarizing its PGO epochs."""
    rows = []
    for entry in entries:
        pgo = entry.get("pgo")
        if not pgo:
            continue
        badges = []
        if pgo.get("refreshes"):
            badges.append(f"<span class='badge refresh'>"
                          f"{pgo['refreshes']} refresh</span>")
        if pgo.get("rollbacks"):
            badges.append(f"<span class='badge rollback'>"
                          f"{pgo['rollbacks']} rollback</span>")
        if not badges:
            badges.append("<span class='badge retain'>retained</span>")
        quarantined = ", ".join(
            html.escape(q) for q in pgo.get("quarantined", []))
        rows.append(
            f"<tr><td>{html.escape(entry['run_id'])}</td>"
            f"<td>{_fmt_stamp(entry.get('timestamp', 0.0))}</td>"
            f"<td class='num'>{pgo.get('epochs', 0)}</td>"
            f"<td>{' '.join(badges)}</td>"
            f"<td>{quarantined or '—'}</td></tr>"
        )
    if not rows:
        return "<p class='meta'>no PGO phase in this history</p>"
    return (
        "<table class='series'><tr><th>run</th><th>when</th>"
        "<th>epochs</th><th>actions</th><th>quarantined</th></tr>"
        + "".join(rows) + "</table>"
    )


def render_html(entries: Sequence[Dict[str, Any]],
                title: str = "repro bench history") -> str:
    """The self-contained HTML dashboard for a history trajectory."""
    phase_series = _series(entries)
    cell_series = _cell_series(entries)
    hashes = sorted({entry.get("matrix", {}).get("hash", "?")
                     for entry in entries})
    if entries:
        first = _fmt_stamp(entries[0].get("timestamp", 0.0))
        last = _fmt_stamp(entries[-1].get("timestamp", 0.0))
        span = f"{first} → {last}"
    else:
        span = "empty"
    header = (
        f"<p class='meta'>{len(entries)} run(s), {span}; "
        f"matrix hash(es): {html.escape(', '.join(hashes) or 'none')}</p>"
    )
    table_head = ("<tr><th>series</th><th>trend</th><th>latest</th>"
                  "<th>median</th><th>runs</th></tr>")
    parts = [
        "<!DOCTYPE html>",
        "<html lang='en'><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        header,
        "<h2 id='phases'>Phase wall clocks</h2>",
        "<table class='series'>" + table_head
        + "".join(_series_rows(phase_series, "s", "phase")) + "</table>",
        "<h2 id='cells'>Per-cell faults (workload/strategy)</h2>",
        "<table class='series'>" + table_head
        + "".join(_series_rows(cell_series, "", "cell")) + "</table>",
        "<h2 id='pgo'>PGO epoch timeline</h2>",
        _pgo_timeline(entries),
        "</body></html>",
    ]
    return "\n".join(parts) + "\n"


def render_summary(entries: Sequence[Dict[str, Any]],
                   width: int = 24) -> str:
    """Terminal rendering of the same trajectory (unicode sparkbars)."""
    if not entries:
        return "history: no entries yet (run `repro bench` to seed it)"
    lines = [f"bench history: {len(entries)} run(s), latest "
             f"{_fmt_stamp(entries[-1].get('timestamp', 0.0))} "
             f"({entries[-1].get('run_id', '?')})"]
    bars = "▁▂▃▄▅▆▇█"
    for label, series_map, unit in (
            ("phase", _series(entries), "s"),
            ("cell", _cell_series(entries), " faults")):
        for name, values in series_map.items():
            tail = values[-width:]
            lo, hi = min(tail), max(tail)
            span = (hi - lo) or 1.0
            spark = "".join(
                bars[min(int((v - lo) / span * (len(bars) - 1)),
                         len(bars) - 1)] for v in tail)
            flags = regression_flags(values)
            mark = "  << regressed" if flags[-1] else ""
            lines.append(
                f"  {label} {name:<28} {spark:<{width}} "
                f"latest {values[-1]:.2f}{unit}, "
                f"median {median(values):.2f}{unit}{mark}"
            )
    pgo_runs = [e for e in entries if e.get("pgo")]
    if pgo_runs:
        refreshes = sum(e["pgo"].get("refreshes", 0) for e in pgo_runs)
        rollbacks = sum(e["pgo"].get("rollbacks", 0) for e in pgo_runs)
        lines.append(
            f"  pgo timeline: {len(pgo_runs)} run(s), "
            f"{refreshes} refresh(es), {rollbacks} rollback(s)"
        )
    return "\n".join(lines)


__all__ = ["regression_flags", "render_html", "render_summary"]
