"""Quarantine registry: ordering profiles proven to produce bad layouts.

When the verification oracle convicts a (workload, strategy) combination —
a structural invariant breach or a behavioral divergence — the combination
is quarantined: subsequent optimized builds of that workload skip the
ordering and keep the default layout until the profile is regenerated.
This is the rung *below* the degradation ladder's match-rate floor: the
floor catches profiles that look wrong, quarantine catches profiles that
were proven wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class QuarantineEntry:
    """One convicted (workload, strategy) combination."""

    workload: str
    strategy: str
    reason: str
    #: layout fingerprint of the convicted binary (0 = not applicable)
    layout_digest: int = 0

    def describe(self) -> str:
        digest = (f" (layout {self.layout_digest:#018x})"
                  if self.layout_digest else "")
        return f"[{self.workload} / {self.strategy}]{digest}: {self.reason}"


@dataclass
class QuarantineRegistry:
    """All quarantined combinations of one pipeline (or toolchain)."""

    entries: Dict[Tuple[str, str], QuarantineEntry] = field(default_factory=dict)

    def quarantine(self, workload: str, strategy: str, reason: str,
                   layout_digest: int = 0) -> QuarantineEntry:
        entry = QuarantineEntry(workload=workload, strategy=strategy,
                                reason=reason, layout_digest=layout_digest)
        if (workload, strategy) not in self.entries:
            from ..obs import get_tracer, metrics
            metrics().counter("validation.quarantines")
            get_tracer().instant("quarantine", cat="validation",
                                 workload=workload, strategy=strategy,
                                 reason=reason)
        self.entries[(workload, strategy)] = entry
        return entry

    def is_quarantined(self, workload: str, strategy: str) -> bool:
        return (workload, strategy) in self.entries

    def entry_for(self, workload: str,
                  strategy: str) -> Optional[QuarantineEntry]:
        return self.entries.get((workload, strategy))

    def release(self, workload: str, strategy: str) -> bool:
        """Lift a quarantine (e.g. after the profile was regenerated)."""
        return self.entries.pop((workload, strategy), None) is not None

    def __len__(self) -> int:
        return len(self.entries)

    def describe(self) -> str:
        if not self.entries:
            return "quarantine: empty"
        lines = [f"quarantine: {len(self.entries)} entr" +
                 ("y" if len(self.entries) == 1 else "ies")]
        for entry in self.entries.values():
            lines.append(f"  {entry.describe()}")
        return "\n".join(lines)
