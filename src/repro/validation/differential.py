"""Differential execution oracle: baseline vs. optimized behavior.

Reordering is a pure layout transformation — the baseline and optimized
binaries of one workload must produce *identical observable behavior*:
same result, same printed output, same per-method call counts.  Page-fault
counts and instruction totals legitimately differ (PGO folding removes
static reads; that is the point), so they are recorded but never compared.
Any divergence in the observables is a layout/build bug, never a perf
artifact, and fails verification.

Run-to-completion (AWFY) workloads compare the full observable record.
Microservice workloads are SIGKILLed after the first response, and thread
interleaving past the response point shifts with instruction counts; they
compare the first-response payload and the *main thread's* call counts at
the response — the portion of behavior that is deterministic up to the
measurement point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..image.binary import NativeImageBinary
from ..runtime.executor import ExecutionConfig, RunMetrics
from .watchdog import WatchdogBudget, WatchdogReport, run_with_watchdog

#: divergence kinds
D_RESULT = "result"
D_OUTPUT = "output"
D_CALL_COUNTS = "call-counts"
D_RESPONSE = "response"
D_RUN_FAILED = "run-failed"


class CallCountRecorder:
    """A tracer-shaped observer that only counts method entries.

    Satisfies the executor's tracer surface (``on_*``, ``kill``,
    ``terminate``, ``event_counts``) without probes or trace files, so the
    observed run stays a *regular* run — the oracle compares production
    behavior, not instrumented behavior.
    """

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.main_counts: Dict[str, int] = {}
        self.first_response: Optional[Any] = None
        self.counts_at_response: Optional[Dict[str, int]] = None

    # -- executor tracer surface ----------------------------------------

    def on_method_enter(self, frame, thread) -> None:
        signature = frame.method.signature
        self.counts[signature] = self.counts.get(signature, 0) + 1
        if thread.name == "main":
            self.main_counts[signature] = self.main_counts.get(signature, 0) + 1

    def on_method_exit(self, frame, thread) -> None:
        pass

    def on_cu_entry(self, cu_name, thread) -> None:
        pass

    def on_object_access(self, obj, op, thread) -> None:
        pass

    def on_block(self, frame, leader_pc, thread) -> None:
        pass

    def leaders_for(self, method):
        return None

    def on_respond(self, value) -> None:
        if self.first_response is None:
            self.first_response = value
            self.counts_at_response = dict(self.main_counts)

    def kill(self, interp) -> None:
        pass

    def terminate(self, interp) -> None:
        pass

    def event_counts(self) -> Dict[str, int]:
        return {}  # no probes -> no overhead in the time model


@dataclass(frozen=True)
class Divergence:
    """One observable difference between the baseline and optimized runs."""

    kind: str
    detail: str

    def describe(self) -> str:
        return f"{self.kind}: {self.detail}"


@dataclass
class DifferentialReport:
    """Everything one baseline-vs-optimized comparison produced."""

    workload: str = ""
    strategy: str = ""
    microservice: bool = False
    baseline_ops: int = 0
    optimized_ops: int = 0
    compared_signatures: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    baseline_watchdog: Optional[WatchdogReport] = None
    optimized_watchdog: Optional[WatchdogReport] = None

    @property
    def matches(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        head = (f"differential oracle [{self.workload}"
                + (f" / {self.strategy}" if self.strategy else "") + "]: ")
        body = (f"{self.compared_signatures} signatures compared, "
                f"ops {self.baseline_ops} vs {self.optimized_ops}")
        if self.matches:
            return head + "behavior identical (" + body + ")"
        lines = [head + f"{len(self.divergences)} divergence(s) (" + body + ")"]
        for divergence in self.divergences:
            lines.append(f"  - {divergence.describe()}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.summary()


def run_differential(
    baseline: NativeImageBinary,
    optimized: NativeImageBinary,
    config: Optional[ExecutionConfig] = None,
    workload: str = "",
    strategy: str = "",
    microservice: bool = False,
    watchdog: Optional[WatchdogBudget] = None,
) -> DifferentialReport:
    """Run both binaries on the same workload and compare observables."""
    report = DifferentialReport(workload=workload, strategy=strategy,
                                microservice=microservice)

    base_recorder = CallCountRecorder()
    opt_recorder = CallCountRecorder()
    base_run = run_with_watchdog(baseline, config, watchdog,
                                 tracer=base_recorder)
    opt_run = run_with_watchdog(optimized, config, watchdog,
                                tracer=opt_recorder)
    report.baseline_watchdog = base_run
    report.optimized_watchdog = opt_run

    if not base_run.completed or not opt_run.completed:
        for label, run in (("baseline", base_run), ("optimized", opt_run)):
            if not run.completed:
                report.divergences.append(Divergence(
                    D_RUN_FAILED, f"{label} run did not complete: "
                    f"{run.describe()}"))
        return report

    base_metrics: RunMetrics = base_run.metrics
    opt_metrics: RunMetrics = opt_run.metrics
    report.baseline_ops = base_metrics.ops
    report.optimized_ops = opt_metrics.ops

    if microservice:
        _compare_response(report, base_recorder, opt_recorder)
    else:
        _compare_complete(report, base_metrics, opt_metrics,
                          base_recorder, opt_recorder)
    return report


def _compare_complete(report: DifferentialReport,
                      base_metrics: RunMetrics, opt_metrics: RunMetrics,
                      base_recorder: CallCountRecorder,
                      opt_recorder: CallCountRecorder) -> None:
    if base_metrics.result != opt_metrics.result:
        report.divergences.append(Divergence(
            D_RESULT, f"main result {base_metrics.result!r} vs "
            f"{opt_metrics.result!r}"))
    if base_metrics.output != opt_metrics.output:
        detail = _first_output_difference(base_metrics.output,
                                          opt_metrics.output)
        report.divergences.append(Divergence(D_OUTPUT, detail))
    report.compared_signatures = _compare_counts(
        report, base_recorder.counts, opt_recorder.counts)


def _compare_response(report: DifferentialReport,
                      base_recorder: CallCountRecorder,
                      opt_recorder: CallCountRecorder) -> None:
    if base_recorder.first_response != opt_recorder.first_response:
        report.divergences.append(Divergence(
            D_RESPONSE, f"first response "
            f"{_clip(base_recorder.first_response)} vs "
            f"{_clip(opt_recorder.first_response)}"))
    base_counts = base_recorder.counts_at_response
    opt_counts = opt_recorder.counts_at_response
    if base_counts is None or opt_counts is None:
        if (base_counts is None) != (opt_counts is None):
            missing = "baseline" if base_counts is None else "optimized"
            report.divergences.append(Divergence(
                D_RESPONSE, f"{missing} run never responded"))
        return
    report.compared_signatures = _compare_counts(report, base_counts,
                                                 opt_counts)


def _compare_counts(report: DifferentialReport,
                    base_counts: Dict[str, int],
                    opt_counts: Dict[str, int]) -> int:
    signatures = sorted(set(base_counts) | set(opt_counts))
    for signature in signatures:
        base = base_counts.get(signature, 0)
        opt = opt_counts.get(signature, 0)
        if base != opt:
            report.divergences.append(Divergence(
                D_CALL_COUNTS,
                f"{signature} called {base} times in baseline, "
                f"{opt} in optimized"))
    return len(signatures)


def _first_output_difference(base: List[str], opt: List[str]) -> str:
    for index, (left, right) in enumerate(zip(base, opt)):
        if left != right:
            return (f"line {index}: {_clip(left)} vs {_clip(right)}")
    return (f"output length {len(base)} vs {len(opt)} "
            f"(first {min(len(base), len(opt))} lines equal)")


def _clip(value: Any, limit: int = 60) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."
