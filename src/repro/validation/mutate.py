"""Seeded layout mutations: controlled damage for the invariant checker.

The :class:`LayoutMutator` is the layout-level sibling of
:class:`repro.robustness.faults.FaultInjector`: a plain-data, seed-labelled
:class:`LayoutMutationPlan` describes *what* goes wrong with a finished
binary's sections, and the mutator applies it in place.  All randomness is
confined to :meth:`LayoutMutationPlan.random`, so every mutation — and
therefore every violation the checker must catch — is exactly reproducible
from a seed.  The mutation classes map one-to-one onto the checker's
violation codes (see the table in each kind's docstring line below).

``snapshot_layout``/``restore_layout`` bracket a mutation so the fuzz tool
can reuse one expensive build across hundreds of cases.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..image.binary import NativeImageBinary
from ..image.heap import HeapObject
from .invariants import (
    V_CU_DUPLICATE,
    V_CU_MISALIGNED,
    V_CU_MISSING,
    V_CU_OVERLAP,
    V_HEAP_SIZE,
    V_MEMBER_BOUNDS,
    V_OBJ_DUPLICATE,
    V_OBJ_MISALIGNED,
    V_OBJ_MISSING,
    V_OBJ_OVERLAP,
    V_REF_UNRESOLVED,
    V_TEXT_SIZE,
)

MUTATE_SWAP_CU_OFFSETS = "swap_cu_offsets"      # -> overlap (sizes differ)
MUTATE_DROP_CU = "drop_cu"                      # -> missing CU
MUTATE_DUPLICATE_CU = "duplicate_cu"            # -> duplicate CU
MUTATE_MISALIGN_CU = "misalign_cu"              # -> misaligned CU
MUTATE_GROW_MEMBER = "grow_member"              # -> member out of bounds
MUTATE_SHRINK_TEXT = "shrink_text"              # -> .text size mismatch
MUTATE_DROP_OBJECT = "drop_object"              # -> missing object
MUTATE_DUPLICATE_OBJECT = "duplicate_object"    # -> duplicate object
MUTATE_MISALIGN_OBJECT = "misalign_object"      # -> misaligned object
MUTATE_OVERLAP_OBJECTS = "overlap_objects"      # -> object overlap
MUTATE_SHRINK_HEAP = "shrink_heap"              # -> .svm_heap size mismatch
MUTATE_BREAK_REF = "break_ref"                  # -> unresolved reference

ALL_MUTATION_KINDS = (
    MUTATE_SWAP_CU_OFFSETS, MUTATE_DROP_CU, MUTATE_DUPLICATE_CU,
    MUTATE_MISALIGN_CU, MUTATE_GROW_MEMBER, MUTATE_SHRINK_TEXT,
    MUTATE_DROP_OBJECT, MUTATE_DUPLICATE_OBJECT, MUTATE_MISALIGN_OBJECT,
    MUTATE_OVERLAP_OBJECTS, MUTATE_SHRINK_HEAP, MUTATE_BREAK_REF,
)

#: violation codes a mutation of each kind must produce at least one of
EXPECTED_VIOLATIONS: Dict[str, Tuple[str, ...]] = {
    MUTATE_SWAP_CU_OFFSETS: (V_CU_OVERLAP,),
    MUTATE_DROP_CU: (V_CU_MISSING,),
    MUTATE_DUPLICATE_CU: (V_CU_DUPLICATE,),
    MUTATE_MISALIGN_CU: (V_CU_MISALIGNED,),
    MUTATE_GROW_MEMBER: (V_MEMBER_BOUNDS,),
    MUTATE_SHRINK_TEXT: (V_TEXT_SIZE,),
    MUTATE_DROP_OBJECT: (V_OBJ_MISSING,),
    MUTATE_DUPLICATE_OBJECT: (V_OBJ_DUPLICATE,),
    MUTATE_MISALIGN_OBJECT: (V_OBJ_MISALIGNED,),
    MUTATE_OVERLAP_OBJECTS: (V_OBJ_OVERLAP,),
    MUTATE_SHRINK_HEAP: (V_HEAP_SIZE,),
    MUTATE_BREAK_REF: (V_REF_UNRESOLVED,),
}


@dataclass(frozen=True)
class LayoutMutation:
    """One planned mutation; ``pick`` seeds the target selection."""

    kind: str
    pick: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ALL_MUTATION_KINDS:
            raise ValueError(f"unknown mutation kind {self.kind!r}")

    def describe(self) -> str:
        return f"{self.kind}(pick={self.pick})"


@dataclass(frozen=True)
class LayoutMutationPlan:
    """An immutable, seed-labelled list of layout mutations."""

    mutations: Tuple[LayoutMutation, ...] = ()
    seed: Optional[int] = None

    @classmethod
    def of(cls, *mutations: LayoutMutation) -> "LayoutMutationPlan":
        return cls(mutations=tuple(mutations))

    @classmethod
    def single(cls, kind: str, pick: int = 0) -> "LayoutMutationPlan":
        return cls(mutations=(LayoutMutation(kind, pick),))

    @classmethod
    def random(cls, seed: int, n_mutations: int = 1,
               kinds: Optional[Sequence[str]] = None) -> "LayoutMutationPlan":
        """A reproducible plan: same seed, same mutations, forever."""
        rng = random.Random(seed)
        kinds = tuple(kinds or ALL_MUTATION_KINDS)
        mutations = tuple(
            LayoutMutation(rng.choice(kinds), pick=rng.randint(0, 1 << 30))
            for _ in range(max(1, n_mutations))
        )
        return cls(mutations=mutations, seed=seed)

    def expected_codes(self) -> Tuple[str, ...]:
        """Union of violation codes this plan's kinds must trigger."""
        codes: List[str] = []
        for mutation in self.mutations:
            codes.extend(EXPECTED_VIOLATIONS[mutation.kind])
        return tuple(dict.fromkeys(codes))

    def describe(self) -> str:
        label = "" if self.seed is None else f" (seed {self.seed})"
        if not self.mutations:
            return f"no mutations{label}"
        return "; ".join(m.describe() for m in self.mutations) + label


class LayoutMutator:
    """Applies a :class:`LayoutMutationPlan` to a built binary, in place."""

    def __init__(self, plan: LayoutMutationPlan) -> None:
        self.plan = plan
        #: human-readable log of mutations that actually landed
        self.applied: List[str] = []

    def mutate(self, binary: NativeImageBinary) -> List[str]:
        """Damage ``binary``'s sections per the plan; returns the log."""
        for mutation in self.plan.mutations:
            detail = self._apply(binary, mutation)
            self.applied.append(f"{mutation.describe()}: {detail}")
        return self.applied

    def _apply(self, binary: NativeImageBinary, mutation: LayoutMutation) -> str:
        placed = binary.text.placed
        ordered = binary.heap.ordered
        pick = mutation.pick
        kind = mutation.kind

        if kind == MUTATE_SWAP_CU_OFFSETS:
            pair = _pick_swap_pair(placed, pick)
            if pair is None:
                return "skipped: no CU pair with differing footprints"
            first, second = pair
            first.offset, second.offset = second.offset, first.offset
            return (f"swapped offsets of {first.cu.name} and "
                    f"{second.cu.name}")
        if kind == MUTATE_DROP_CU:
            victim = placed.pop(pick % len(placed))
            return f"dropped {victim.cu.name}"
        if kind == MUTATE_DUPLICATE_CU:
            victim = placed[pick % len(placed)]
            placed.append(victim)
            return f"duplicated {victim.cu.name}"
        if kind == MUTATE_MISALIGN_CU:
            victim = placed[pick % len(placed)]
            victim.offset += 1 + pick % 7  # off any 16-byte boundary
            return f"nudged {victim.cu.name} to offset {victim.offset}"
        if kind == MUTATE_GROW_MEMBER:
            # A non-last member, since the last member's range defines
            # ``cu.size`` and moving it would shift the bound itself.
            multi = [p.cu for p in placed if len(p.cu.members) > 1]
            if multi:
                cu = multi[pick % len(multi)]
                member = cu.members[pick % (len(cu.members) - 1)]
                member.offset = cu.size  # pushes the range past the CU end
            else:
                cu = placed[pick % len(placed)].cu
                member = cu.members[0]
                member.offset = -1 - member.size  # negative range
            return f"pushed {member.signature} in {cu.name} out of bounds"
        if kind == MUTATE_SHRINK_TEXT:
            delta = 1 + pick % 4096
            binary.text.size -= delta
            return f"shrank .text by {delta} bytes"
        if kind == MUTATE_DROP_OBJECT:
            victim = ordered.pop(pick % len(ordered))
            return f"dropped object #{victim.index}"
        if kind == MUTATE_DUPLICATE_OBJECT:
            victim = ordered[pick % len(ordered)]
            ordered.append(victim)
            return f"duplicated object #{victim.index}"
        if kind == MUTATE_MISALIGN_OBJECT:
            victim = ordered[pick % len(ordered)]
            victim.address += 1 + pick % 7  # off any 8-byte boundary
            return f"nudged object #{victim.index} to {victim.address}"
        if kind == MUTATE_OVERLAP_OBJECTS:
            if len(ordered) < 2:
                return "skipped: fewer than two objects"
            index = pick % (len(ordered) - 1)
            left, right = ordered[index], ordered[index + 1]
            right.address = left.address  # two objects at one address
            return (f"collapsed object #{right.index} onto object "
                    f"#{left.index}")
        if kind == MUTATE_SHRINK_HEAP:
            delta = 1 + pick % 4096
            binary.heap.size -= delta
            return f"shrank .svm_heap by {delta} bytes"
        if kind == MUTATE_BREAK_REF:
            phantom = HeapObject(value="phantom", index=-1,
                                 type_name="String", size=32)
            if binary.literal_objects:
                sid = sorted(binary.literal_objects)[
                    pick % len(binary.literal_objects)]
                binary.literal_objects[sid] = phantom
                return f"pointed literal[{sid}] at a phantom object"
            victim = ordered[pick % len(ordered)]
            victim.parent = phantom
            return f"pointed object #{victim.index}'s parent at a phantom"
        raise AssertionError(f"unhandled mutation kind {kind!r}")


def _pick_swap_pair(placed, pick: int):
    """A (bigger, smaller) CU pair whose offset swap must break the layout.

    Swapping equal-footprint CUs yields a *valid* layout, and moving a
    bigger CU into the last slot may hide in the native blob's page
    padding; so the bigger CU must land in a slot that has a CU after it.
    Returns ``None`` when no such pair exists (degenerate layouts).
    """
    from ..image.sections import CU_ALIGN

    def footprint(entry) -> int:
        return (entry.cu.size + CU_ALIGN - 1) // CU_ALIGN * CU_ALIGN

    by_offset = sorted(placed, key=lambda p: p.offset)
    n = len(by_offset)
    for step in range(n):
        smaller = by_offset[(pick + step) % n]
        if smaller is by_offset[-1]:
            continue  # bigger CU would land in the last slot
        for bigger in by_offset:
            if footprint(bigger) > footprint(smaller):
                return bigger, smaller
    return None


# -- snapshot/restore (fuzz-tool support) ------------------------------------


def snapshot_layout(binary: NativeImageBinary) -> dict:
    """Capture everything a mutation may touch, for later restore."""
    return {
        "placed": list(binary.text.placed),
        "offsets": [p.offset for p in binary.text.placed],
        "members": [
            (member, member.offset, member.size)
            for p in binary.text.placed for member in p.cu.members
        ],
        "text_size": binary.text.size,
        "ordered": list(binary.heap.ordered),
        "addresses": [o.address for o in binary.heap.ordered],
        "heap_size": binary.heap.size,
        "literals": dict(binary.literal_objects),
        "parents": [(o, o.parent) for o in binary.heap.ordered],
    }


def restore_layout(binary: NativeImageBinary, saved: dict) -> None:
    """Undo any plan's damage recorded by :func:`snapshot_layout`."""
    binary.text.placed[:] = saved["placed"]
    for placed, offset in zip(saved["placed"], saved["offsets"]):
        placed.offset = offset
    for member, offset, size in saved["members"]:
        member.offset = offset
        member.size = size
    binary.text.size = saved["text_size"]
    binary.heap.ordered[:] = saved["ordered"]
    for obj, address in zip(saved["ordered"], saved["addresses"]):
        obj.address = address
    binary.heap.size = saved["heap_size"]
    binary.literal_objects.clear()
    binary.literal_objects.update(saved["literals"])
    for obj, parent in saved["parents"]:
        obj.parent = parent
