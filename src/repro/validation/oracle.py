"""The full layout-verification oracle and its pipeline-facing policy.

:class:`VerificationPolicy` is what callers hand to
:class:`repro.eval.pipeline.WorkloadPipeline` to arm verification:
structural checks after every optimized build (with quarantine-and-rollback
on a breach), optional watchdog budgets around workload runs, and — for the
oracle proper — differential execution.  :func:`verify_strategy` composes
all three pillars for one (workload, strategy) pair and returns a
:class:`VerificationOutcome`; ``repro verify`` and
:meth:`repro.api.NativeImageToolchain.verify` are thin wrappers around it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from .differential import DifferentialReport, run_differential
from .invariants import LayoutVerificationReport, verify_layout
from .mutate import LayoutMutator
from .watchdog import WatchdogBudget

if TYPE_CHECKING:  # pipeline imports this module; keep the cycle type-only
    from ..eval.pipeline import StrategySpec, WorkloadPipeline
    from ..robustness.degradation import DegradationReport


@dataclass(frozen=True)
class VerificationPolicy:
    """Knobs of the verification layer, as armed on a pipeline."""

    #: structurally verify every optimized build; violations quarantine the
    #: (workload, strategy) pair and roll the build back to default layout
    verify_structure: bool = True
    #: quarantine convicted combinations (False = report + rollback only)
    quarantine: bool = True
    #: watchdog budgets applied to pipeline workload runs (None = unbounded)
    watchdog: Optional[WatchdogBudget] = None
    #: test/CLI hook: damages optimized layouts right after the build so
    #: the quarantine-and-rollback path can be demonstrated end to end
    mutator: Optional[LayoutMutator] = None


@dataclass
class VerificationOutcome:
    """Everything the oracle established for one (workload, strategy)."""

    workload: str
    strategy: str
    #: structural report of the final optimized binary (post-rollback if
    #: a violation forced one)
    structural: Optional[LayoutVerificationReport] = None
    #: structural report of the convicted binary, when rollback happened
    convicted: Optional[LayoutVerificationReport] = None
    baseline_structural: Optional[LayoutVerificationReport] = None
    differential: Optional[DifferentialReport] = None
    degradation: Optional["DegradationReport"] = None
    quarantined: bool = False
    rolled_back: bool = False
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff every pillar that ran came back clean."""
        if self.quarantined or self.rolled_back:
            return False
        for report in (self.structural, self.baseline_structural):
            if report is not None and not report.ok:
                return False
        if self.differential is not None and not self.differential.matches:
            return False
        return True

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [f"verification [{self.workload} / {self.strategy}]: {verdict}"]
        if self.baseline_structural is not None:
            lines.append("  baseline " + self.baseline_structural.summary())
        if self.convicted is not None:
            lines.append("  convicted " + _indent(self.convicted.summary()))
        if self.structural is not None:
            lines.append("  optimized " + _indent(self.structural.summary()))
        if self.differential is not None:
            lines.append("  " + _indent(self.differential.summary()))
        if self.quarantined:
            lines.append("  ordering profile quarantined; "
                         "optimized build rolled back to default layout")
        for note in self.notes:
            lines.append(f"  - {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.summary()


def _indent(text: str) -> str:
    lines = text.splitlines()
    return "\n    ".join(lines)


def verify_strategy(
    pipeline: "WorkloadPipeline",
    strategy: "StrategySpec",
    seed: int = 0,
    differential: bool = True,
    watchdog: Optional[WatchdogBudget] = None,
) -> VerificationOutcome:
    """Run the full oracle for one strategy on one workload.

    Profiles once, builds baseline and optimized binaries, checks the
    structural invariants of both, and (by default) runs the differential
    execution oracle under the given watchdog budgets.  The pipeline's own
    verification rung — if armed via :class:`VerificationPolicy` — fires
    inside ``build_optimized``, so an injected violation shows up here as
    ``quarantined``/``rolled_back`` with the convicting report attached.
    """
    workload = pipeline.workload
    outcome = VerificationOutcome(workload=workload.name, strategy=strategy.name)

    baseline = pipeline.build_baseline(seed=seed)
    outcome.baseline_structural = verify_layout(baseline)

    profiling = pipeline.profile(seed=seed)
    optimized = pipeline.build_optimized(profiling.profiles, strategy, seed=seed)
    outcome.degradation = pipeline.last_degradation_report

    # The pipeline's verification rung may already have convicted the
    # ordering and rolled back; mirror its verdict.
    if outcome.degradation is not None:
        outcome.quarantined = getattr(outcome.degradation, "quarantined", False)
        outcome.rolled_back = getattr(outcome.degradation, "layout_fallback",
                                      False)
        convicted = getattr(outcome.degradation, "verification", None)
        if convicted is not None and not convicted.ok:
            outcome.convicted = convicted

    # The pipeline records the final build's report when its rung is armed.
    final_report = getattr(pipeline, "last_verification_report", None)
    outcome.structural = (final_report if final_report is not None
                          else verify_layout(optimized))

    if differential:
        outcome.differential = run_differential(
            baseline, optimized, pipeline.exec_config,
            workload=workload.name, strategy=strategy.name,
            microservice=workload.microservice, watchdog=watchdog,
        )
    return outcome
