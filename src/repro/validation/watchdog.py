"""Watchdog-bounded execution of built binaries.

A pathological layout cannot change program semantics in this simulator,
but a buggy one can — and a buggy *workload* (or a mutated layout driving
the paging model into a corner) can spin long past any useful measurement.
The watchdog brackets a run with two budgets:

* a **step budget** — an instruction ceiling enforced inside the
  interpreter (``max_ops``), trapped here as the typed
  :class:`~repro.vm.values.OpsBudgetError`;
* a **deadline** — a wall-clock ceiling enforced by running the binary on
  a daemon worker thread and joining with a timeout, exactly how real
  benchmark harnesses detect hung subjects.

Either trip produces a :class:`WatchdogReport` instead of wedging the
pipeline; the caller decides whether a trip is a layout bug (differential
oracle: the optimized run must not time out when the baseline did not) or
an environment problem.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Tuple

from ..image.binary import NativeImageBinary
from ..runtime.executor import ExecutionConfig, RunMetrics, run_binary
from ..vm.values import OpsBudgetError

#: outcome states of a watchdog-bounded run
OUTCOME_COMPLETED = "completed"
OUTCOME_OPS_EXCEEDED = "ops-budget-exceeded"
OUTCOME_DEADLINE_EXCEEDED = "deadline-exceeded"
OUTCOME_CRASHED = "crashed"


@dataclass(frozen=True)
class WatchdogBudget:
    """Step and wall-clock ceilings for one run."""

    #: instruction ceiling (clamps the interpreter's ``max_ops``); None =
    #: keep the executor's own ceiling
    max_ops: Optional[int] = None
    #: wall-clock ceiling in seconds; None = no deadline thread
    deadline_s: Optional[float] = None

    def describe(self) -> str:
        parts = []
        if self.max_ops is not None:
            parts.append(f"max {self.max_ops} ops")
        if self.deadline_s is not None:
            parts.append(f"{self.deadline_s:g}s deadline")
        return ", ".join(parts) or "unbounded"


@dataclass
class WatchdogReport:
    """How one bounded run ended."""

    outcome: str = OUTCOME_COMPLETED
    elapsed_s: float = 0.0
    budget: WatchdogBudget = field(default_factory=WatchdogBudget)
    metrics: Optional[RunMetrics] = None
    error: str = ""

    @property
    def completed(self) -> bool:
        return self.outcome == OUTCOME_COMPLETED

    @property
    def timed_out(self) -> bool:
        return self.outcome in (OUTCOME_OPS_EXCEEDED, OUTCOME_DEADLINE_EXCEEDED)

    def describe(self) -> str:
        text = (f"watchdog [{self.budget.describe()}]: {self.outcome} "
                f"after {self.elapsed_s:.3f}s")
        if self.error:
            text += f" ({self.error})"
        return text

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def call_with_deadline(fn, deadline_s: float) -> Tuple[bool, str]:
    """Run ``fn()`` on a daemon thread, abandoning it past ``deadline_s``.

    The generic form of the deadline half of :func:`run_with_watchdog`,
    reused by the sweep scheduler's hung-task guard: returns ``(True,
    error)`` when the call finished (``error`` is the formatted exception
    if it raised, else ``""``), or ``(False, detail)`` when the deadline
    tripped and the still-running call was abandoned — the same way a
    real watchdog would SIGKILL a wedged subject.
    """
    box: dict = {}

    def target() -> None:
        try:
            fn()
        except Exception as exc:  # noqa: BLE001 - report, never wedge
            box["error"] = f"{type(exc).__name__}: {exc}"

    worker = threading.Thread(target=target, daemon=True,
                              name="repro-deadline-call")
    worker.start()
    worker.join(deadline_s)
    if worker.is_alive():
        return False, (f"still executing after {deadline_s:g}s; abandoned")
    return True, box.get("error", "")


def run_with_watchdog(
    binary: NativeImageBinary,
    config: Optional[ExecutionConfig] = None,
    budget: Optional[WatchdogBudget] = None,
    run_index: int = 0,
    tracer: Optional[Any] = None,
) -> WatchdogReport:
    """One cold run of ``binary`` under the given budgets.

    Never raises for budget trips or workload crashes — the report says
    what happened.  A deadline trip abandons the worker thread (daemon), as
    a real watchdog would SIGKILL the subject.
    """
    budget = budget or WatchdogBudget()
    if config is None:
        config = ExecutionConfig()
    if budget.max_ops is not None:
        config = replace(config, max_ops=min(config.max_ops, budget.max_ops))
    report = WatchdogReport(budget=budget)
    box: dict = {}

    def target() -> None:
        try:
            box["metrics"] = run_binary(binary, config, tracer=tracer,
                                        run_index=run_index)
        except OpsBudgetError as exc:
            box["ops_exceeded"] = str(exc)
        except Exception as exc:  # noqa: BLE001 - report, never wedge
            box["error"] = f"{type(exc).__name__}: {exc}"

    start = time.monotonic()
    if budget.deadline_s is None:
        target()
    else:
        worker = threading.Thread(target=target, daemon=True,
                                  name="repro-watchdog-run")
        worker.start()
        worker.join(budget.deadline_s)
        if worker.is_alive():
            report.outcome = OUTCOME_DEADLINE_EXCEEDED
            report.error = (f"run still executing after "
                            f"{budget.deadline_s:g}s; abandoned")
            report.elapsed_s = time.monotonic() - start
            return report
    report.elapsed_s = time.monotonic() - start

    if "ops_exceeded" in box:
        report.outcome = OUTCOME_OPS_EXCEEDED
        report.error = box["ops_exceeded"]
    elif "error" in box:
        report.outcome = OUTCOME_CRASHED
        report.error = box["error"]
    else:
        report.metrics = box.get("metrics")
    return report
