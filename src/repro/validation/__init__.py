"""Layout verification: invariants, differential execution, watchdogs.

The paper's premise (Sec. 3) is that reordering ``.text``/``.svm_heap`` is
semantics-preserving; this package is the machinery that *proves* it for
every build instead of assuming it:

* :mod:`repro.validation.invariants` — structural checks over the laid-out
  sections (placement, alignment, overlap, bounds, permutation-invariant
  sizes, reference resolvability) producing a typed
  :class:`LayoutVerificationReport`;
* :mod:`repro.validation.differential` — the execution oracle: baseline and
  optimized binaries must behave identically; any divergence is a layout
  bug, never a perf artifact;
* :mod:`repro.validation.watchdog` — step/deadline budgets around workload
  runs so a pathological layout or hung benchmark is reported, not wedged;
* :mod:`repro.validation.mutate` — seeded layout mutations that the checker
  must catch (test matrix, CI fuzz, CLI demo);
* :mod:`repro.validation.quarantine` + :mod:`repro.validation.oracle` —
  conviction plumbing: a failed verification quarantines the ordering
  profile and rolls the build back to the default layout, surfacing through
  :class:`repro.robustness.degradation.DegradationReport` and the
  ``repro verify`` CLI subcommand.
"""

from .differential import (
    CallCountRecorder,
    DifferentialReport,
    Divergence,
    run_differential,
)
from .invariants import (
    ALL_VIOLATION_CODES,
    LayoutVerificationError,
    LayoutVerificationReport,
    LayoutViolation,
    verify_layout,
)
from .mutate import (
    ALL_MUTATION_KINDS,
    EXPECTED_VIOLATIONS,
    LayoutMutation,
    LayoutMutationPlan,
    LayoutMutator,
    restore_layout,
    snapshot_layout,
)
from .oracle import VerificationOutcome, VerificationPolicy, verify_strategy
from .quarantine import QuarantineEntry, QuarantineRegistry
from .watchdog import (
    WatchdogBudget,
    WatchdogReport,
    call_with_deadline,
    run_with_watchdog,
)

__all__ = [
    "CallCountRecorder", "DifferentialReport", "Divergence", "run_differential",
    "ALL_VIOLATION_CODES", "LayoutVerificationError",
    "LayoutVerificationReport", "LayoutViolation", "verify_layout",
    "ALL_MUTATION_KINDS", "EXPECTED_VIOLATIONS", "LayoutMutation",
    "LayoutMutationPlan", "LayoutMutator", "restore_layout", "snapshot_layout",
    "VerificationOutcome", "VerificationPolicy", "verify_strategy",
    "QuarantineEntry", "QuarantineRegistry",
    "WatchdogBudget", "WatchdogReport", "call_with_deadline",
    "run_with_watchdog",
]
