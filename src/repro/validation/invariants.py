"""Structural invariant checks over laid-out binaries.

The reordering strategies are only allowed to *permute* sections — never to
grow, shrink, drop, duplicate, or overlap anything (paper Sec. 3 treats the
transformation as semantics-preserving by construction; Hoag et al. and
Newell & Pupyrev treat layout validity as a precondition for trusting any
measured gain).  :func:`verify_layout` re-derives every one of those
guarantees from the finished :class:`~repro.image.binary.NativeImageBinary`
and reports each breach as a typed :class:`LayoutViolation`:

``.text`` invariants
    every CU placed exactly once; placements aligned to ``CU_ALIGN``; no
    two CU byte ranges overlap; every member range inside its CU's bounds;
    CUs below the native blob; section size equal to what *any* permutation
    of these CUs must produce.

``.svm_heap`` invariants
    every snapshot object placed exactly once; addresses assigned, aligned
    to ``OBJ_ALIGN``, non-overlapping; section size permutation-invariant;
    every heap reference resolvable — string-literal and fold-constant
    table entries point at placed snapshot objects, parents are snapshot
    members, and non-string values link back to their own entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..image.binary import NativeImageBinary
from ..image.sections import (
    CU_ALIGN,
    HEAP_SECTION,
    OBJ_ALIGN,
    TEXT_SECTION,
    expected_heap_size,
    expected_text_size,
)

# Violation codes, one per seeded-mutation class in the test matrix.
V_CU_MISSING = "text.cu.missing"
V_CU_DUPLICATE = "text.cu.duplicate"
V_CU_OVERLAP = "text.cu.overlap"
V_CU_MISALIGNED = "text.cu.misaligned"
V_CU_BLOB_CLASH = "text.cu.blob-clash"
V_MEMBER_BOUNDS = "text.member.out-of-bounds"
V_TEXT_SIZE = "text.size.mismatch"
V_OBJ_MISSING = "heap.object.missing"
V_OBJ_DUPLICATE = "heap.object.duplicate"
V_OBJ_OVERLAP = "heap.object.overlap"
V_OBJ_MISALIGNED = "heap.object.misaligned"
V_OBJ_UNPLACED = "heap.object.unplaced"
V_HEAP_SIZE = "heap.size.mismatch"
V_REF_UNRESOLVED = "heap.ref.unresolved"

ALL_VIOLATION_CODES = (
    V_CU_MISSING, V_CU_DUPLICATE, V_CU_OVERLAP, V_CU_MISALIGNED,
    V_CU_BLOB_CLASH, V_MEMBER_BOUNDS, V_TEXT_SIZE,
    V_OBJ_MISSING, V_OBJ_DUPLICATE, V_OBJ_OVERLAP, V_OBJ_MISALIGNED,
    V_OBJ_UNPLACED, V_HEAP_SIZE, V_REF_UNRESOLVED,
)


@dataclass(frozen=True)
class LayoutViolation:
    """One broken invariant."""

    code: str
    section: str  # TEXT_SECTION or HEAP_SECTION
    subject: str  # CU name, object label, or table key
    detail: str

    def describe(self) -> str:
        return f"{self.code} [{self.section}] {self.subject}: {self.detail}"


@dataclass
class LayoutVerificationReport:
    """The outcome of one :func:`verify_layout` pass."""

    mode: str = ""
    code_ordering: Optional[str] = None
    heap_ordering: Optional[str] = None
    layout_digest: int = 0
    checks_run: int = 0
    violations: List[LayoutViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def codes(self) -> Dict[str, int]:
        """Violation counts keyed by code."""
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return counts

    def has(self, code: str) -> bool:
        return any(v.code == code for v in self.violations)

    def summary(self) -> str:
        ordering = (f"code={self.code_ordering or 'default'}, "
                    f"heap={self.heap_ordering or 'default'}")
        head = (f"layout verification [{self.mode}; {ordering}; "
                f"digest {self.layout_digest:#018x}]: "
                f"{self.checks_run} checks, ")
        if self.ok:
            return head + "all invariants hold"
        lines = [head + f"{len(self.violations)} violation(s)"]
        for violation in self.violations:
            lines.append(f"  - {violation.describe()}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.summary()


class LayoutVerificationError(Exception):
    """Raised when a layout that must be valid (e.g. a rollback build) is not."""

    def __init__(self, report: LayoutVerificationReport) -> None:
        super().__init__(report.summary())
        self.report = report


def verify_layout(binary: NativeImageBinary) -> LayoutVerificationReport:
    """Check every structural layout invariant of ``binary``."""
    report = LayoutVerificationReport(
        mode=binary.mode,
        code_ordering=binary.code_ordering,
        heap_ordering=binary.heap_ordering,
        layout_digest=binary.layout_digest(),
    )
    _check_text(binary, report)
    _check_heap(binary, report)
    _check_references(binary, report)
    return report


# -- .text ------------------------------------------------------------------


def _check_text(binary: NativeImageBinary, report: LayoutVerificationReport) -> None:
    text = binary.text
    built = [cu.name for cu in binary.cus]
    placed_names = [placed.cu.name for placed in text.placed]

    # Placed exactly once: no CU dropped, none placed twice.
    placed_counts: Dict[str, int] = {}
    for name in placed_names:
        placed_counts[name] = placed_counts.get(name, 0) + 1
    report.checks_run += 1
    for name in built:
        if name not in placed_counts:
            report.violations.append(LayoutViolation(
                V_CU_MISSING, TEXT_SECTION, name,
                "compilation unit missing from the .text placement"))
    report.checks_run += 1
    for name, count in placed_counts.items():
        if count > 1:
            report.violations.append(LayoutViolation(
                V_CU_DUPLICATE, TEXT_SECTION, name,
                f"placed {count} times"))
        if name not in set(built):
            report.violations.append(LayoutViolation(
                V_CU_DUPLICATE, TEXT_SECTION, name,
                "placed CU does not belong to this build"))

    # Alignment and member bounds.
    for placed in text.placed:
        report.checks_run += 1
        if placed.offset < 0 or placed.offset % CU_ALIGN != 0:
            report.violations.append(LayoutViolation(
                V_CU_MISALIGNED, TEXT_SECTION, placed.cu.name,
                f"offset {placed.offset} not {CU_ALIGN}-byte aligned"))
        for member in placed.cu.members:
            report.checks_run += 1
            if member.offset < 0 or member.size < 0 \
                    or member.offset + member.size > placed.cu.size:
                report.violations.append(LayoutViolation(
                    V_MEMBER_BOUNDS, TEXT_SECTION,
                    f"{placed.cu.name}::{member.signature}",
                    f"member range [{member.offset}, "
                    f"{member.offset + member.size}) outside CU size "
                    f"{placed.cu.size}"))

    # Overlaps (CU vs CU, and CU vs native blob).
    spans = sorted(text.placed, key=lambda p: p.offset)
    for left, right in zip(spans, spans[1:]):
        report.checks_run += 1
        if left.end > right.offset:
            report.violations.append(LayoutViolation(
                V_CU_OVERLAP, TEXT_SECTION,
                f"{left.cu.name} / {right.cu.name}",
                f"[{left.offset}, {left.end}) overlaps "
                f"[{right.offset}, {right.end})"))
    if text.native_blob_size > 0:
        for placed in spans:
            report.checks_run += 1
            if placed.end > text.native_blob_offset:
                report.violations.append(LayoutViolation(
                    V_CU_BLOB_CLASH, TEXT_SECTION, placed.cu.name,
                    f"CU end {placed.end} reaches into the native blob at "
                    f"{text.native_blob_offset}"))

    # Permutation-invariant section size.
    report.checks_run += 1
    expected = expected_text_size(binary.cus, text.native_blob_size)
    if text.size != expected:
        report.violations.append(LayoutViolation(
            V_TEXT_SIZE, TEXT_SECTION, ".text",
            f"section size {text.size} != expected {expected} "
            "(a permutation cannot change the size)"))


# -- .svm_heap --------------------------------------------------------------


def _check_heap(binary: NativeImageBinary, report: LayoutVerificationReport) -> None:
    heap = binary.heap
    snapshot_indices = {obj.index for obj in binary.snapshot}

    placed_counts: Dict[int, int] = {}
    for obj in heap.ordered:
        placed_counts[obj.index] = placed_counts.get(obj.index, 0) + 1

    report.checks_run += 1
    for index in sorted(snapshot_indices - placed_counts.keys()):
        report.violations.append(LayoutViolation(
            V_OBJ_MISSING, HEAP_SECTION, f"object #{index}",
            "snapshot object missing from the .svm_heap placement"))
    report.checks_run += 1
    for index, count in placed_counts.items():
        if count > 1:
            report.violations.append(LayoutViolation(
                V_OBJ_DUPLICATE, HEAP_SECTION, f"object #{index}",
                f"placed {count} times"))
        if index not in snapshot_indices:
            report.violations.append(LayoutViolation(
                V_OBJ_DUPLICATE, HEAP_SECTION, f"object #{index}",
                "placed object does not belong to this snapshot"))

    for obj in heap.ordered:
        report.checks_run += 1
        if obj.address < 0:
            report.violations.append(LayoutViolation(
                V_OBJ_UNPLACED, HEAP_SECTION, f"object #{obj.index}",
                "no address assigned"))
        elif obj.address % OBJ_ALIGN != 0:
            report.violations.append(LayoutViolation(
                V_OBJ_MISALIGNED, HEAP_SECTION, f"object #{obj.index}",
                f"address {obj.address} not {OBJ_ALIGN}-byte aligned"))

    spans = sorted((o for o in heap.ordered if o.address >= 0),
                   key=lambda o: o.address)
    for left, right in zip(spans, spans[1:]):
        report.checks_run += 1
        if left.address + left.size > right.address:
            report.violations.append(LayoutViolation(
                V_OBJ_OVERLAP, HEAP_SECTION,
                f"object #{left.index} / object #{right.index}",
                f"[{left.address}, {left.address + left.size}) overlaps "
                f"[{right.address}, {right.address + right.size})"))

    report.checks_run += 1
    expected = expected_heap_size(list(binary.snapshot))
    if heap.size != expected:
        report.violations.append(LayoutViolation(
            V_HEAP_SIZE, HEAP_SECTION, ".svm_heap",
            f"section size {heap.size} != expected {expected} "
            "(a permutation cannot change the size)"))


# -- reference resolvability -------------------------------------------------


def _check_references(binary: NativeImageBinary,
                      report: LayoutVerificationReport) -> None:
    heap = binary.heap
    placed = {id(obj) for obj in heap.ordered}
    snapshot_entries = {id(obj) for obj in binary.snapshot}

    def check_entry(label: str, entry) -> None:
        report.checks_run += 1
        if id(entry) not in placed:
            report.violations.append(LayoutViolation(
                V_REF_UNRESOLVED, HEAP_SECTION, label,
                "table entry points at an object absent from the layout"))
        elif entry.address < 0 or entry.address + entry.size > heap.size:
            report.violations.append(LayoutViolation(
                V_REF_UNRESOLVED, HEAP_SECTION, label,
                f"table entry resolves outside the section "
                f"([{entry.address}, {entry.address + entry.size}) vs size "
                f"{heap.size})"))

    for sid, entry in binary.literal_objects.items():
        check_entry(f"literal[{sid}]", entry)
    for token, entry in binary.fold_objects.items():
        check_entry(f"fold[{token}]", entry)

    for obj in heap.ordered:
        if obj.parent is not None:
            report.checks_run += 1
            if id(obj.parent) not in snapshot_entries:
                report.violations.append(LayoutViolation(
                    V_REF_UNRESOLVED, HEAP_SECTION, f"object #{obj.index}",
                    "parent link points outside the snapshot"))
        if not isinstance(obj.value, str):
            report.checks_run += 1
            back = getattr(obj.value, "image_ref", None)
            if back is not obj:
                report.violations.append(LayoutViolation(
                    V_REF_UNRESOLVED, HEAP_SECTION, f"object #{obj.index}",
                    "value does not link back to its snapshot entry "
                    "(page-touch accounting would miss it)"))
