"""Lexer for MiniJava, the Java-like source language of the reproduction.

MiniJava stands in for Java in the simulated Native-Image toolchain: AWFY
benchmarks and the microservice startup workloads are written in it.  The
lexer produces a flat token stream consumed by :mod:`repro.minijava.parser`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .errors import LexError

KEYWORDS = frozenset(
    {
        "class",
        "extends",
        "static",
        "final",
        "void",
        "int",
        "double",
        "boolean",
        "String",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
        "new",
        "null",
        "true",
        "false",
        "this",
        "super",
        "instanceof",
    }
)

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ".",
    "?",
    ":",
]

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\", "0": "\0", "'": "'"}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``kind`` is one of ``ident``, ``keyword``, ``int``, ``double``,
    ``string``, ``char``, ``op``, or ``eof``; ``text`` is the raw spelling
    (decoded for string/char literals).
    """

    kind: str
    text: str
    line: int
    col: int

    def is_op(self, text: str) -> bool:
        return self.kind == "op" and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == "keyword" and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.text!r}, {self.line}:{self.col})"


class Lexer:
    """Tokenizes MiniJava source text."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> List[Token]:
        """Return the full token list, terminated by a single EOF token."""
        return list(self._tokens())

    def _tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self._pos >= len(self._source):
                yield Token("eof", "", self._line, self._col)
                return
            yield self._next_token()

    def _skip_trivia(self) -> None:
        src = self._source
        while self._pos < len(src):
            ch = src[self._pos]
            if ch in " \t\r":
                self._advance(1)
            elif ch == "\n":
                self._pos += 1
                self._line += 1
                self._col = 1
            elif ch == "/" and src.startswith("//", self._pos):
                end = src.find("\n", self._pos)
                self._advance((end if end != -1 else len(src)) - self._pos)
            elif ch == "/" and src.startswith("/*", self._pos):
                end = src.find("*/", self._pos + 2)
                if end == -1:
                    raise LexError("unterminated block comment", self._line, self._col)
                block = src[self._pos : end + 2]
                newlines = block.count("\n")
                if newlines:
                    self._line += newlines
                    self._col = len(block) - block.rfind("\n")
                else:
                    self._col += len(block)
                self._pos = end + 2
            else:
                return

    def _next_token(self) -> Token:
        src = self._source
        ch = src[self._pos]
        line, col = self._line, self._col
        if ch.isalpha() or ch == "_":
            return self._lex_word(line, col)
        if ch.isdigit():
            return self._lex_number(line, col)
        if ch == '"':
            return self._lex_string(line, col)
        if ch == "'":
            return self._lex_char(line, col)
        for op in _OPERATORS:
            if src.startswith(op, self._pos):
                self._advance(len(op))
                return Token("op", op, line, col)
        raise LexError(f"unexpected character {ch!r}", line, col)

    def _lex_word(self, line: int, col: int) -> Token:
        src = self._source
        start = self._pos
        while self._pos < len(src) and (src[self._pos].isalnum() or src[self._pos] == "_"):
            self._pos += 1
        text = src[start : self._pos]
        self._col += len(text)
        kind = "keyword" if text in KEYWORDS else "ident"
        return Token(kind, text, line, col)

    def _lex_number(self, line: int, col: int) -> Token:
        src = self._source
        start = self._pos
        if src.startswith("0x", self._pos) or src.startswith("0X", self._pos):
            self._pos += 2
            while self._pos < len(src) and src[self._pos] in "0123456789abcdefABCDEF":
                self._pos += 1
            text = src[start : self._pos]
            self._col += len(text)
            return Token("int", str(int(text, 16)), line, col)
        while self._pos < len(src) and src[self._pos].isdigit():
            self._pos += 1
        is_double = False
        if (
            self._pos + 1 < len(src)
            and src[self._pos] == "."
            and src[self._pos + 1].isdigit()
        ):
            is_double = True
            self._pos += 1
            while self._pos < len(src) and src[self._pos].isdigit():
                self._pos += 1
        if self._pos < len(src) and src[self._pos] in "eE":
            peek = self._pos + 1
            if peek < len(src) and src[peek] in "+-":
                peek += 1
            if peek < len(src) and src[peek].isdigit():
                is_double = True
                self._pos = peek
                while self._pos < len(src) and src[self._pos].isdigit():
                    self._pos += 1
        text = src[start : self._pos]
        self._col += len(text)
        return Token("double" if is_double else "int", text, line, col)

    def _lex_string(self, line: int, col: int) -> Token:
        src = self._source
        pos = self._pos + 1
        chars: List[str] = []
        while True:
            if pos >= len(src) or src[pos] == "\n":
                raise LexError("unterminated string literal", line, col)
            ch = src[pos]
            if ch == '"':
                pos += 1
                break
            if ch == "\\":
                esc = src[pos + 1 : pos + 2]
                if esc not in _ESCAPES:
                    raise LexError(f"bad escape \\{esc}", line, col)
                chars.append(_ESCAPES[esc])
                pos += 2
            else:
                chars.append(ch)
                pos += 1
        self._col += pos - self._pos
        self._pos = pos
        return Token("string", "".join(chars), line, col)

    def _lex_char(self, line: int, col: int) -> Token:
        src = self._source
        pos = self._pos + 1
        if pos >= len(src):
            raise LexError("unterminated char literal", line, col)
        if src[pos] == "\\":
            esc = src[pos + 1 : pos + 2]
            if esc not in _ESCAPES:
                raise LexError(f"bad escape \\{esc}", line, col)
            value = _ESCAPES[esc]
            pos += 2
        else:
            value = src[pos]
            pos += 1
        if pos >= len(src) or src[pos] != "'":
            raise LexError("unterminated char literal", line, col)
        pos += 1
        self._col += pos - self._pos
        self._pos = pos
        # Char literals are integers in MiniJava (their code point).
        return Token("char", value, line, col)

    def _advance(self, n: int) -> None:
        self._pos += n
        self._col += n


def tokenize(source: str) -> List[Token]:
    """Tokenize MiniJava ``source`` text."""
    return Lexer(source).tokenize()
