"""Recursive-descent parser for MiniJava.

The grammar is a compact Java subset sufficient for the AWFY benchmarks and
the microservice startup workloads: classes with single inheritance,
static/instance fields and methods, constructors, static initializer blocks,
arrays, strings, the usual operators (incl. compound assignment and
``++``/``--``), ``if``/``while``/``for``, casts, and ``instanceof``.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as ast
from .errors import ParseError
from .lexer import Token, tokenize

_PRIMITIVE_TYPES = ("int", "double", "boolean", "String", "void")

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")

# Binary operator precedence tiers, weakest first.
_BINARY_TIERS = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    """Parses a token stream into a :class:`~repro.minijava.ast_nodes.CompilationUnitAst`."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _accept_op(self, text: str) -> bool:
        if self._peek().is_op(text):
            self._next()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self._peek().is_keyword(text):
            self._next()
            return True
        return False

    def _expect_op(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_op(text):
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.line, tok.col)
        return self._next()

    def _expect_keyword(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_keyword(text):
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.line, tok.col)
        return self._next()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind != "ident":
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.line, tok.col)
        return self._next()

    # -- program structure -------------------------------------------------

    def parse_program(self) -> ast.CompilationUnitAst:
        classes = []
        while not self._peek().kind == "eof":
            classes.append(self._parse_class())
        return ast.CompilationUnitAst(classes)

    def _parse_class(self) -> ast.ClassDecl:
        start = self._expect_keyword("class")
        name = self._expect_ident().text
        superclass: Optional[str] = None
        if self._accept_keyword("extends"):
            superclass = self._expect_ident().text
        self._expect_op("{")
        decl = ast.ClassDecl(name=name, superclass=superclass, line=start.line)
        while not self._peek().is_op("}"):
            self._parse_member(decl)
        self._expect_op("}")
        return decl

    def _parse_member(self, decl: ast.ClassDecl) -> None:
        is_static = False
        is_final = False
        while True:
            if self._peek().is_keyword("static"):
                # "static {" introduces a static initializer block.
                if self._peek(1).is_op("{"):
                    tok = self._next()
                    body = self._parse_block()
                    decl.static_inits.append(ast.StaticInit(body=body, line=tok.line))
                    return
                self._next()
                is_static = True
            elif self._peek().is_keyword("final"):
                self._next()
                is_final = True
            else:
                break

        # Constructor: "<ClassName> (".
        if (
            self._peek().kind == "ident"
            and self._peek().text == decl.name
            and self._peek(1).is_op("(")
        ):
            tok = self._next()
            params = self._parse_params()
            body = self._parse_block()
            decl.methods.append(
                ast.MethodDecl(
                    name="<init>",
                    params=params,
                    return_type=ast.TypeRef("void"),
                    body=body,
                    is_static=False,
                    is_ctor=True,
                    line=tok.line,
                )
            )
            return

        member_type = self._parse_type(allow_void=True)
        name_tok = self._expect_ident()
        if self._peek().is_op("("):
            params = self._parse_params()
            body = self._parse_block()
            decl.methods.append(
                ast.MethodDecl(
                    name=name_tok.text,
                    params=params,
                    return_type=member_type,
                    body=body,
                    is_static=is_static,
                    line=name_tok.line,
                )
            )
            return
        # Field declaration (possibly a comma-separated list).
        if member_type.name == "void":
            raise ParseError("field cannot have type void", name_tok.line, name_tok.col)
        while True:
            init = self._parse_expr() if self._accept_op("=") else None
            decl.fields.append(
                ast.FieldDecl(
                    name=name_tok.text,
                    type=member_type,
                    is_static=is_static,
                    is_final=is_final,
                    init=init,
                    line=name_tok.line,
                )
            )
            if self._accept_op(","):
                name_tok = self._expect_ident()
                continue
            self._expect_op(";")
            return

    def _parse_params(self) -> List[ast.Param]:
        self._expect_op("(")
        params: List[ast.Param] = []
        if not self._peek().is_op(")"):
            while True:
                ptype = self._parse_type()
                pname = self._expect_ident()
                params.append(ast.Param(type=ptype, name=pname.text, line=pname.line))
                if not self._accept_op(","):
                    break
        self._expect_op(")")
        return params

    def _parse_type(self, allow_void: bool = False) -> ast.TypeRef:
        tok = self._peek()
        if tok.kind == "keyword" and tok.text in _PRIMITIVE_TYPES:
            self._next()
            name = tok.text
        elif tok.kind == "ident":
            self._next()
            name = tok.text
        else:
            raise ParseError(f"expected type, found {tok.text!r}", tok.line, tok.col)
        if name == "void" and not allow_void:
            raise ParseError("void not allowed here", tok.line, tok.col)
        dims = 0
        while self._peek().is_op("[") and self._peek(1).is_op("]"):
            self._next()
            self._next()
            dims += 1
        if name == "void" and dims:
            raise ParseError("void array type", tok.line, tok.col)
        return ast.TypeRef(name, dims)

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self._expect_op("{")
        stmts: List[ast.Stmt] = []
        while not self._peek().is_op("}"):
            stmts.append(self._parse_stmt())
        self._expect_op("}")
        return ast.Block(stmts=stmts, line=start.line)

    def _starts_var_decl(self) -> bool:
        """Lookahead: does the current position start a local variable declaration?"""
        tok = self._peek()
        if tok.kind == "keyword" and tok.text in ("int", "double", "boolean", "String"):
            return True
        if tok.kind != "ident":
            return False
        # "Foo x" or "Foo[] x" or "Foo[][] x ..."
        offset = 1
        while self._peek(offset).is_op("[") and self._peek(offset + 1).is_op("]"):
            offset += 2
        return self._peek(offset).kind == "ident"

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.is_op("{"):
            return self._parse_block()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("return"):
            self._next()
            value = None if self._peek().is_op(";") else self._parse_expr()
            self._expect_op(";")
            return ast.Return(value=value, line=tok.line)
        if tok.is_keyword("break"):
            self._next()
            self._expect_op(";")
            return ast.Break(line=tok.line)
        if tok.is_keyword("continue"):
            self._next()
            self._expect_op(";")
            return ast.Continue(line=tok.line)
        if tok.is_op(";"):
            self._next()
            return ast.Block(stmts=[], line=tok.line)
        if self._starts_var_decl():
            decl = self._parse_var_decl()
            self._expect_op(";")
            return decl
        expr = self._parse_expr()
        self._expect_op(";")
        return ast.ExprStmt(expr=expr, line=tok.line)

    def _parse_var_decl(self) -> ast.Stmt:
        vtype = self._parse_type()
        stmts: List[ast.Stmt] = []
        while True:
            name = self._expect_ident()
            init = self._parse_expr() if self._accept_op("=") else None
            stmts.append(ast.VarDecl(type=vtype, name=name.text, init=init, line=name.line))
            if not self._accept_op(","):
                break
        if len(stmts) == 1:
            return stmts[0]
        return ast.Block(stmts=stmts, line=stmts[0].line)

    def _parse_if(self) -> ast.Stmt:
        tok = self._expect_keyword("if")
        self._expect_op("(")
        cond = self._parse_expr()
        self._expect_op(")")
        then = self._parse_stmt()
        otherwise = self._parse_stmt() if self._accept_keyword("else") else None
        return ast.If(cond=cond, then=then, otherwise=otherwise, line=tok.line)

    def _parse_while(self) -> ast.Stmt:
        tok = self._expect_keyword("while")
        self._expect_op("(")
        cond = self._parse_expr()
        self._expect_op(")")
        body = self._parse_stmt()
        return ast.While(cond=cond, body=body, line=tok.line)

    def _parse_for(self) -> ast.Stmt:
        tok = self._expect_keyword("for")
        self._expect_op("(")
        init: Optional[ast.Stmt] = None
        if not self._peek().is_op(";"):
            if self._starts_var_decl():
                init = self._parse_var_decl()
            else:
                init = ast.ExprStmt(expr=self._parse_expr(), line=self._peek().line)
        self._expect_op(";")
        cond = None if self._peek().is_op(";") else self._parse_expr()
        self._expect_op(";")
        update: List[ast.Expr] = []
        if not self._peek().is_op(")"):
            update.append(self._parse_expr())
            while self._accept_op(","):
                update.append(self._parse_expr())
        self._expect_op(")")
        body = self._parse_stmt()
        return ast.For(init=init, cond=cond, update=update, body=body, line=tok.line)

    # -- expressions ---------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_ternary()
        tok = self._peek()
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            if not isinstance(left, (ast.Name, ast.FieldAccess, ast.IndexExpr)):
                raise ParseError("invalid assignment target", tok.line, tok.col)
            self._next()
            value = self._parse_assignment()
            return ast.Assign(target=left, op=tok.text, value=value, line=tok.line)
        return left

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._peek().is_op("?"):
            tok = self._next()
            then = self._parse_expr()
            self._expect_op(":")
            otherwise = self._parse_expr()
            return ast.Conditional(cond=cond, then=then, otherwise=otherwise, line=tok.line)
        return cond

    def _parse_binary(self, tier: int) -> ast.Expr:
        if tier >= len(_BINARY_TIERS):
            return self._parse_unary()
        left = self._parse_binary(tier + 1)
        while True:
            tok = self._peek()
            # instanceof sits at the relational tier.
            if _BINARY_TIERS[tier] == ("<", "<=", ">", ">=") and tok.is_keyword("instanceof"):
                self._next()
                type_name = self._expect_ident().text
                left = ast.InstanceOf(operand=left, type_name=type_name, line=tok.line)
                continue
            if tok.kind == "op" and tok.text in _BINARY_TIERS[tier]:
                self._next()
                right = self._parse_binary(tier + 1)
                left = ast.Binary(op=tok.text, left=left, right=right, line=tok.line)
                continue
            return left

    def _looks_like_cast(self) -> bool:
        """Heuristic for ``(Type) expr`` vs parenthesized expression.

        Called with the current token at ``(``.  A cast is assumed when the
        parentheses contain a type (primitive keyword, or identifier with
        optional ``[]``) and the token after ``)`` can start a unary
        expression.
        """
        if not self._peek().is_op("("):
            return False
        tok = self._peek(1)
        offset = 2
        if tok.kind == "keyword" and tok.text in ("int", "double", "boolean", "String"):
            pass
        elif tok.kind == "ident":
            pass
        else:
            return False
        while self._peek(offset).is_op("[") and self._peek(offset + 1).is_op("]"):
            offset += 2
        if not self._peek(offset).is_op(")"):
            return False
        after = self._peek(offset + 1)
        if after.kind in ("ident", "int", "double", "string", "char"):
            return True
        if after.kind == "keyword" and after.text in ("this", "new", "null", "true", "false"):
            return True
        if after.is_op("(") and tok.kind == "keyword":
            # "(int)(expr)" — only for primitive casts, to avoid treating
            # "(x)(...)" as a cast.
            return True
        return False

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "op" and tok.text in ("-", "!", "~"):
            self._next()
            operand = self._parse_unary()
            return ast.Unary(op=tok.text, operand=operand, line=tok.line)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self._next()
            target = self._parse_unary()
            if not isinstance(target, (ast.Name, ast.FieldAccess, ast.IndexExpr)):
                raise ParseError("invalid ++/-- target", tok.line, tok.col)
            return ast.IncDec(target=target, op=tok.text, prefix=True, line=tok.line)
        if self._looks_like_cast():
            self._next()  # "("
            target = self._parse_type()
            self._expect_op(")")
            operand = self._parse_unary()
            return ast.Cast(target=target, operand=operand, line=tok.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_op("."):
                self._next()
                name = self._expect_ident()
                if self._peek().is_op("("):
                    args = self._parse_args()
                    expr = ast.Call(receiver=expr, name=name.text, args=args, line=name.line)
                else:
                    expr = ast.FieldAccess(obj=expr, name=name.text, line=name.line)
            elif tok.is_op("["):
                self._next()
                index = self._parse_expr()
                self._expect_op("]")
                expr = ast.IndexExpr(array=expr, index=index, line=tok.line)
            elif tok.kind == "op" and tok.text in ("++", "--"):
                if not isinstance(expr, (ast.Name, ast.FieldAccess, ast.IndexExpr)):
                    raise ParseError("invalid ++/-- target", tok.line, tok.col)
                self._next()
                expr = ast.IncDec(target=expr, op=tok.text, prefix=False, line=tok.line)
            else:
                return expr

    def _parse_args(self) -> List[ast.Expr]:
        self._expect_op("(")
        args: List[ast.Expr] = []
        if not self._peek().is_op(")"):
            args.append(self._parse_expr())
            while self._accept_op(","):
                args.append(self._parse_expr())
        self._expect_op(")")
        return args

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "int":
            self._next()
            return ast.IntLit(value=int(tok.text), line=tok.line)
        if tok.kind == "double":
            self._next()
            return ast.DoubleLit(value=float(tok.text), line=tok.line)
        if tok.kind == "string":
            self._next()
            return ast.StringLit(value=tok.text, line=tok.line)
        if tok.kind == "char":
            self._next()
            return ast.IntLit(value=ord(tok.text), line=tok.line)
        if tok.is_keyword("true") or tok.is_keyword("false"):
            self._next()
            return ast.BoolLit(value=tok.text == "true", line=tok.line)
        if tok.is_keyword("null"):
            self._next()
            return ast.NullLit(line=tok.line)
        if tok.is_keyword("this"):
            self._next()
            return ast.ThisExpr(line=tok.line)
        if tok.is_keyword("super"):
            self._next()
            if self._peek().is_op("("):
                args = self._parse_args()
                return ast.SuperCall(name="<init>", args=args, line=tok.line)
            self._expect_op(".")
            name = self._expect_ident()
            args = self._parse_args()
            return ast.SuperCall(name=name.text, args=args, line=tok.line)
        if tok.is_keyword("new"):
            self._next()
            type_tok = self._peek()
            new_type = self._parse_type_name_for_new()
            if self._peek().is_op("["):
                self._next()
                length = self._parse_expr()
                self._expect_op("]")
                dims = 0
                while self._peek().is_op("[") and self._peek(1).is_op("]"):
                    self._next()
                    self._next()
                    dims += 1
                return ast.NewArray(
                    elem_type=ast.TypeRef(new_type, dims), length=length, line=tok.line
                )
            if new_type in ("int", "double", "boolean", "String"):
                raise ParseError(f"cannot instantiate {new_type}", type_tok.line, type_tok.col)
            args = self._parse_args()
            return ast.NewObject(type_name=new_type, args=args, line=tok.line)
        if tok.kind == "ident":
            self._next()
            if self._peek().is_op("("):
                args = self._parse_args()
                return ast.Call(receiver=None, name=tok.text, args=args, line=tok.line)
            return ast.Name(ident=tok.text, line=tok.line)
        if tok.is_op("("):
            self._next()
            expr = self._parse_expr()
            self._expect_op(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)

    def _parse_type_name_for_new(self) -> str:
        tok = self._peek()
        if tok.kind == "keyword" and tok.text in ("int", "double", "boolean", "String"):
            self._next()
            return tok.text
        return self._expect_ident().text


def parse(source: str) -> ast.CompilationUnitAst:
    """Parse MiniJava ``source`` into an AST."""
    return Parser(tokenize(source)).parse_program()
