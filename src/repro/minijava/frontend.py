"""MiniJava front-end driver: source text -> compiled :class:`Program`.

Compilation runs in two passes: first every method (including synthesized
constructors and ``<clinit>`` initializers) is registered as an empty shell
in the class table, then bodies are compiled.  This allows (mutual)
recursion and forward references between classes.

Responsibilities beyond parse/analyze/lower:

* constructors get the Java expansion — implicit ``super()`` call (when the
  superclass constructor is no-arg), then instance field initializers in
  declaration order, then the body;
* each class with static field initializers or ``static { }`` blocks gets a
  synthetic ``<clinit>`` method, which the image builder executes at *build
  time* (heap snapshotting; Sec. 2 of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from . import ast_nodes as ast
from .analysis import ClassTableBuilder, validate_loop_control
from .bytecode import ClassInfo, CompiledMethod, Program
from .codegen import compile_method_body
from .errors import SemanticError
from .parser import parse


def compile_source(source: str, main_class: str = "Main") -> Program:
    """Compile MiniJava ``source`` into a linked, executable :class:`Program`."""
    unit = parse(source)
    validate_loop_control(unit)
    program = Program()
    program.main_class = main_class
    decls = ClassTableBuilder(unit).build(program)

    # Pass 1: register method shells so bodies can reference any method.
    for name, decl in decls.items():
        _register_shells(program.get_class(name), decl)

    # Pass 2: compile bodies, superclasses first (implicit-super checks).
    order = sorted(decls, key=lambda name: len(program.get_class(name).mro()))
    for name in order:
        _compile_bodies(program, program.get_class(name), decls[name])
    return program


def _register_shells(cls: ClassInfo, decl: ast.ClassDecl) -> None:
    for method_decl in decl.methods:
        if method_decl.is_ctor:
            continue
        cls.methods[method_decl.name] = CompiledMethod(
            owner=cls.name,
            name=method_decl.name,
            param_types=[str(p.type) for p in method_decl.params],
            is_static=method_decl.is_static,
            is_ctor=False,
            returns_value=method_decl.return_type.name != "void"
            or method_decl.return_type.dims > 0,
            num_slots=0,
            line=method_decl.line,
        )
    ctor_decl = _find_ctor(decl)
    ctor_params = ctor_decl.params if ctor_decl else []
    cls.methods["<init>"] = CompiledMethod(
        owner=cls.name,
        name="<init>",
        param_types=[str(p.type) for p in ctor_params],
        is_static=False,
        is_ctor=True,
        returns_value=False,
        num_slots=0,
        line=ctor_decl.line if ctor_decl else decl.line,
    )
    if _needs_clinit(decl):
        cls.clinit = CompiledMethod(
            owner=cls.name,
            name="<clinit>",
            param_types=[],
            is_static=True,
            is_ctor=False,
            returns_value=False,
            num_slots=0,
            line=decl.line,
        )


def _needs_clinit(decl: ast.ClassDecl) -> bool:
    if decl.static_inits:
        return True
    return any(f.is_static and f.init is not None for f in decl.fields)


def _find_ctor(decl: ast.ClassDecl) -> Optional[ast.MethodDecl]:
    for method in decl.methods:
        if method.is_ctor:
            return method
    return None


def _compile_bodies(program: Program, cls: ClassInfo, decl: ast.ClassDecl) -> None:
    for method_decl in decl.methods:
        if method_decl.is_ctor:
            continue
        assert method_decl.body is not None
        compile_method_body(
            program,
            cls,
            cls.methods[method_decl.name],
            method_decl.params,
            method_decl.body.stmts,
        )
    _compile_ctor_body(program, cls, decl, _find_ctor(decl))
    if cls.clinit is not None:
        _compile_clinit_body(program, cls, decl)


def _compile_ctor_body(
    program: Program,
    cls: ClassInfo,
    decl: ast.ClassDecl,
    ctor_decl: Optional[ast.MethodDecl],
) -> None:
    params = ctor_decl.params if ctor_decl else []
    body_stmts: List[ast.Stmt] = list(ctor_decl.body.stmts) if ctor_decl else []

    parts: List[ast.Stmt] = []
    explicit_super = bool(body_stmts) and _is_super_ctor_call(body_stmts[0])
    if cls.superclass is not None:
        if explicit_super:
            parts.append(body_stmts.pop(0))
        else:
            _check_noarg_super(cls, decl.line)
            parts.append(
                ast.ExprStmt(
                    expr=ast.SuperCall(name="<init>", args=[], line=decl.line),
                    line=decl.line,
                )
            )
    elif explicit_super:
        raise SemanticError(f"class {cls.name} has no superclass", decl.line)

    for field_decl in decl.fields:
        if field_decl.is_static or field_decl.init is None:
            continue
        parts.append(
            ast.ExprStmt(
                expr=ast.Assign(
                    target=ast.FieldAccess(
                        obj=ast.ThisExpr(line=field_decl.line),
                        name=field_decl.name,
                        line=field_decl.line,
                    ),
                    op="=",
                    value=field_decl.init,
                    line=field_decl.line,
                ),
                line=field_decl.line,
            )
        )
    parts.extend(body_stmts)
    compile_method_body(program, cls, cls.methods["<init>"], list(params), parts)


def _is_super_ctor_call(stmt: ast.Stmt) -> bool:
    return (
        isinstance(stmt, ast.ExprStmt)
        and isinstance(stmt.expr, ast.SuperCall)
        and stmt.expr.name == "<init>"
    )


def _check_noarg_super(cls: ClassInfo, line: int) -> None:
    """An implicit super() is only valid if the superclass ctor takes no args."""
    parent = cls.superclass
    assert parent is not None
    ctor = parent.methods.get("<init>")
    if ctor is not None and ctor.param_types:
        raise SemanticError(
            f"class {cls.name}: superclass {parent.name} constructor requires "
            "arguments; write an explicit super(...) call",
            line,
        )


def _compile_clinit_body(program: Program, cls: ClassInfo, decl: ast.ClassDecl) -> None:
    parts: List[ast.Stmt] = []
    for field_decl in decl.fields:
        if not field_decl.is_static or field_decl.init is None:
            continue
        parts.append(
            ast.ExprStmt(
                expr=ast.Assign(
                    target=ast.FieldAccess(
                        obj=ast.Name(ident=cls.name, line=field_decl.line),
                        name=field_decl.name,
                        line=field_decl.line,
                    ),
                    op="=",
                    value=field_decl.init,
                    line=field_decl.line,
                ),
                line=field_decl.line,
            )
        )
    for static_init in decl.static_inits:
        parts.extend(static_init.body.stmts)
    assert cls.clinit is not None
    compile_method_body(program, cls, cls.clinit, [], parts)


def compile_sources(sources: Dict[str, str], main_class: str = "Main") -> Program:
    """Compile several MiniJava source files into one program.

    ``sources`` maps a file label (used only in error messages) to source
    text.  All classes share one namespace, like a single classpath.
    """
    combined: List[str] = []
    for label in sources:
        combined.append(f"// file: {label}\n{sources[label]}")
    return compile_source("\n".join(combined), main_class=main_class)
