"""Bytecode generation for MiniJava.

Lowers resolved ASTs to the stack bytecode of
:mod:`repro.minijava.bytecode`.  Name resolution (locals vs. fields vs.
statics vs. class references) happens here, with lexical block scoping.

Calling convention: *every* call pushes a result (void methods push null);
statement-position calls are followed by ``POP``.  This keeps stack
discipline decidable without full type inference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import ast_nodes as ast
from .analysis import BUILTINS
from .bytecode import ClassInfo, CompiledMethod, Instr, Program
from .errors import CompileError

_COMPOUND_TO_OP = {
    "+=": "ADD",
    "-=": "SUB",
    "*=": "MUL",
    "/=": "DIV",
    "%=": "MOD",
    "&=": "BAND",
    "|=": "BOR",
    "^=": "BXOR",
    "<<=": "SHL",
    ">>=": "SHR",
}

_BINARY_TO_OP = {
    "+": "ADD",
    "-": "SUB",
    "*": "MUL",
    "/": "DIV",
    "%": "MOD",
    "&": "BAND",
    "|": "BOR",
    "^": "BXOR",
    "<<": "SHL",
    ">>": "SHR",
    "==": "EQ",
    "!=": "NE",
    "<": "LT",
    "<=": "LE",
    ">": "GT",
    ">=": "GE",
}


class _Scope:
    """A stack of lexical scopes mapping local names to slots."""

    def __init__(self) -> None:
        self._frames: List[Dict[str, int]] = [{}]
        self.num_slots = 0

    def push(self) -> None:
        self._frames.append({})

    def pop(self) -> None:
        self._frames.pop()

    def declare(self, name: str, line: int) -> int:
        if name in self._frames[-1]:
            raise CompileError(f"duplicate local {name!r}", line)
        slot = self.num_slots
        self.num_slots += 1
        self._frames[-1][name] = slot
        return slot

    def lookup(self, name: str) -> Optional[int]:
        for frame in reversed(self._frames):
            if name in frame:
                return frame[name]
        return None


class MethodCompiler:
    """Compiles one method body to bytecode."""

    def __init__(
        self,
        program: Program,
        cls: ClassInfo,
        method: CompiledMethod,
    ) -> None:
        self._program = program
        self._cls = cls
        self._method = method
        self._code: List[Instr] = []
        self._scope = _Scope()
        # (break_patch_indices, continue_patch_indices) per enclosing loop
        self._loops: List[Tuple[List[int], List[int]]] = []
        if not method.is_static:
            self._scope.declare("this", method.line)

    # -- emission helpers ---------------------------------------------------

    def _emit(self, op: str, *args, line: int = 0) -> int:
        self._code.append(Instr(op, tuple(args), line))
        return len(self._code) - 1

    def _emit_jump(self, op: str, line: int = 0) -> int:
        """Emit a jump with a placeholder target; returns index for patching."""
        return self._emit(op, -1, line=line)

    def _patch(self, index: int, target: Optional[int] = None) -> None:
        if target is None:
            target = len(self._code)
        instr = self._code[index]
        self._code[index] = Instr(instr.op, (target,), instr.line)

    def _here(self) -> int:
        return len(self._code)

    # -- name resolution ----------------------------------------------------

    def _is_class_name(self, name: str) -> bool:
        return name in self._program.classes

    def _resolve_static_field(self, cls_name: str, field: str):
        cls = self._program.classes.get(cls_name)
        if cls is None:
            return None
        return cls.find_field(field, static=True)

    # -- declarations -------------------------------------------------------

    def declare_params(self, params: List[ast.Param]) -> None:
        for param in params:
            self._scope.declare(param.name, param.line)

    def finish(self) -> List[Instr]:
        self._emit("RET_VOID", line=self._method.line)
        self._method.num_slots = self._scope.num_slots
        self._method.code = self._code
        return self._code

    # -- statements -----------------------------------------------------------

    def compile_block(self, block: ast.Block) -> None:
        self._scope.push()
        for stmt in block.stmts:
            self.compile_stmt(stmt)
        self._scope.pop()

    def compile_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.compile_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            slot = self._scope.declare(stmt.name, stmt.line)
            stmt.slot = slot
            if stmt.init is not None:
                self.compile_expr(stmt.init, want=True)
            else:
                self._emit_default(stmt.type, stmt.line)
            self._emit("STORE", slot, line=stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            self.compile_expr(stmt.expr, want=False)
        elif isinstance(stmt, ast.If):
            self._compile_if(stmt)
        elif isinstance(stmt, ast.While):
            self._compile_while(stmt)
        elif isinstance(stmt, ast.For):
            self._compile_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.compile_expr(stmt.value, want=True)
                self._emit("RET_VAL", line=stmt.line)
            else:
                self._emit("RET_VOID", line=stmt.line)
        elif isinstance(stmt, ast.Break):
            if not self._loops:
                raise CompileError("break outside loop", stmt.line)
            self._loops[-1][0].append(self._emit_jump("JUMP", line=stmt.line))
        elif isinstance(stmt, ast.Continue):
            if not self._loops:
                raise CompileError("continue outside loop", stmt.line)
            self._loops[-1][1].append(self._emit_jump("JUMP", line=stmt.line))
        else:
            raise CompileError(f"cannot compile statement {type(stmt).__name__}", stmt.line)

    def _emit_default(self, type_ref: ast.TypeRef, line: int) -> None:
        if type_ref.dims == 0 and type_ref.name == "int":
            self._emit("CONST_INT", 0, line=line)
        elif type_ref.dims == 0 and type_ref.name == "double":
            self._emit("CONST_DOUBLE", 0.0, line=line)
        elif type_ref.dims == 0 and type_ref.name == "boolean":
            self._emit("CONST_BOOL", False, line=line)
        else:
            self._emit("CONST_NULL", line=line)

    def _compile_if(self, stmt: ast.If) -> None:
        assert stmt.cond is not None and stmt.then is not None
        self.compile_expr(stmt.cond, want=True)
        jmp_else = self._emit_jump("JMP_FALSE", line=stmt.line)
        self.compile_stmt(stmt.then)
        if stmt.otherwise is not None:
            jmp_end = self._emit_jump("JUMP", line=stmt.line)
            self._patch(jmp_else)
            self.compile_stmt(stmt.otherwise)
            self._patch(jmp_end)
        else:
            self._patch(jmp_else)

    def _compile_while(self, stmt: ast.While) -> None:
        assert stmt.cond is not None and stmt.body is not None
        top = self._here()
        self.compile_expr(stmt.cond, want=True)
        jmp_exit = self._emit_jump("JMP_FALSE", line=stmt.line)
        self._loops.append(([], []))
        self.compile_stmt(stmt.body)
        breaks, continues = self._loops.pop()
        for index in continues:
            self._patch(index, top)
        self._emit("JUMP", top, line=stmt.line)
        self._patch(jmp_exit)
        for index in breaks:
            self._patch(index)

    def _compile_for(self, stmt: ast.For) -> None:
        assert stmt.body is not None
        self._scope.push()
        if stmt.init is not None:
            self.compile_stmt(stmt.init)
        top = self._here()
        jmp_exit = None
        if stmt.cond is not None:
            self.compile_expr(stmt.cond, want=True)
            jmp_exit = self._emit_jump("JMP_FALSE", line=stmt.line)
        self._loops.append(([], []))
        self.compile_stmt(stmt.body)
        breaks, continues = self._loops.pop()
        update_start = self._here()
        for index in continues:
            self._patch(index, update_start)
        for update in stmt.update:
            self.compile_expr(update, want=False)
        self._emit("JUMP", top, line=stmt.line)
        if jmp_exit is not None:
            self._patch(jmp_exit)
        for index in breaks:
            self._patch(index)
        self._scope.pop()

    # -- expressions ----------------------------------------------------------

    def compile_expr(self, expr: ast.Expr, want: bool) -> None:
        line = expr.line
        if isinstance(expr, ast.IntLit):
            if want:
                self._emit("CONST_INT", expr.value, line=line)
        elif isinstance(expr, ast.DoubleLit):
            if want:
                self._emit("CONST_DOUBLE", expr.value, line=line)
        elif isinstance(expr, ast.BoolLit):
            if want:
                self._emit("CONST_BOOL", expr.value, line=line)
        elif isinstance(expr, ast.StringLit):
            if want:
                sid = self._program.intern_string(expr.value)
                self._emit("CONST_STR", sid, line=line)
        elif isinstance(expr, ast.NullLit):
            if want:
                self._emit("CONST_NULL", line=line)
        elif isinstance(expr, ast.ThisExpr):
            if self._method.is_static:
                raise CompileError("'this' in static context", line)
            if want:
                self._emit("LOAD", self._scope.lookup("this"), line=line)
        elif isinstance(expr, ast.Name):
            if want:
                self._compile_name_load(expr)
        elif isinstance(expr, ast.FieldAccess):
            self._compile_field_load(expr, want)
        elif isinstance(expr, ast.IndexExpr):
            assert expr.array is not None and expr.index is not None
            self.compile_expr(expr.array, want=True)
            self.compile_expr(expr.index, want=True)
            self._emit("ALOAD", line=line)
            if not want:
                self._emit("POP", line=line)
        elif isinstance(expr, ast.Call):
            self._compile_call(expr, want)
        elif isinstance(expr, ast.SuperCall):
            self._compile_super_call(expr, want)
        elif isinstance(expr, ast.NewObject):
            self._compile_new_object(expr, want)
        elif isinstance(expr, ast.NewArray):
            assert expr.length is not None
            self.compile_expr(expr.length, want=True)
            self._emit("NEWARRAY", str(expr.elem_type), line=line)
            if not want:
                self._emit("POP", line=line)
        elif isinstance(expr, ast.Unary):
            self._compile_unary(expr, want)
        elif isinstance(expr, ast.Binary):
            self._compile_binary(expr, want)
        elif isinstance(expr, ast.Conditional):
            self._compile_conditional(expr, want)
        elif isinstance(expr, ast.Cast):
            self._compile_cast(expr, want)
        elif isinstance(expr, ast.InstanceOf):
            assert expr.operand is not None
            self.compile_expr(expr.operand, want=True)
            self._emit("INSTANCEOF", expr.type_name, line=line)
            if not want:
                self._emit("POP", line=line)
        elif isinstance(expr, ast.Assign):
            self._compile_assign(expr, want)
        elif isinstance(expr, ast.IncDec):
            self._compile_incdec(expr, want)
        else:
            raise CompileError(f"cannot compile expression {type(expr).__name__}", line)

    # -- loads ----------------------------------------------------------------

    def _compile_name_load(self, expr: ast.Name) -> None:
        name, line = expr.ident, expr.line
        slot = self._scope.lookup(name)
        if slot is not None:
            self._emit("LOAD", slot, line=line)
            return
        if not self._method.is_static:
            field = self._cls.find_field(name, static=False)
            if field is not None:
                self._emit("LOAD", self._scope.lookup("this"), line=line)
                self._emit("GETFIELD", name, line=line)
                return
        static_field = self._cls.find_field(name, static=True)
        if static_field is not None:
            self._emit("GETSTATIC", static_field.declared_in, name, line=line)
            return
        raise CompileError(f"unknown name {name!r} in {self._method.signature}", line)

    def _compile_field_load(self, expr: ast.FieldAccess, want: bool) -> None:
        line = expr.line
        obj = expr.obj
        assert obj is not None
        # "ClassName.field" static access.
        if isinstance(obj, ast.Name) and self._scope.lookup(obj.ident) is None:
            if self._is_class_name(obj.ident):
                field = self._resolve_static_field(obj.ident, expr.name)
                if field is None:
                    raise CompileError(
                        f"unknown static field {obj.ident}.{expr.name}", line
                    )
                if want:
                    self._emit("GETSTATIC", field.declared_in, expr.name, line=line)
                return
        self.compile_expr(obj, want=True)
        if expr.name == "length":
            # Arrays and strings expose `.length`; both lower to ARRAYLEN.
            self._emit("ARRAYLEN", line=line)
        else:
            self._emit("GETFIELD", expr.name, line=line)
        if not want:
            self._emit("POP", line=line)

    # -- calls ------------------------------------------------------------------

    def _compile_call(self, expr: ast.Call, want: bool) -> None:
        line = expr.line
        argc = len(expr.args)
        receiver = expr.receiver

        if receiver is None:
            self._compile_unqualified_call(expr, want)
            return

        # "ClassName.method(...)" static call (unless shadowed by a local).
        if isinstance(receiver, ast.Name) and self._scope.lookup(receiver.ident) is None:
            if self._is_class_name(receiver.ident):
                target = self._resolve_static_target(receiver.ident, expr.name, line)
                for arg in expr.args:
                    self.compile_expr(arg, want=True)
                self._emit("CALL_STATIC", target, expr.name, argc, line=line)
                if not want:
                    self._emit("POP", line=line)
                return

        # Virtual call on a value (objects, strings, arrays-with-intrinsics).
        self.compile_expr(receiver, want=True)
        for arg in expr.args:
            self.compile_expr(arg, want=True)
        self._emit("CALL_VIRTUAL", expr.name, argc, line=line)
        if not want:
            self._emit("POP", line=line)

    def _resolve_static_target(self, cls_name: str, method: str, line: int) -> str:
        cls: Optional[ClassInfo] = self._program.classes.get(cls_name)
        while cls is not None:
            candidate = cls.methods.get(method)
            if candidate is not None and candidate.is_static:
                return cls.name
            cls = cls.superclass
        raise CompileError(f"unknown static method {cls_name}.{method}", line)

    def _compile_unqualified_call(self, expr: ast.Call, want: bool) -> None:
        line = expr.line
        argc = len(expr.args)
        name = expr.name
        # 1. static method of the enclosing class hierarchy
        cls: Optional[ClassInfo] = self._cls
        while cls is not None:
            candidate = cls.methods.get(name)
            if candidate is not None:
                if candidate.is_static:
                    for arg in expr.args:
                        self.compile_expr(arg, want=True)
                    self._emit("CALL_STATIC", cls.name, name, argc, line=line)
                else:
                    if self._method.is_static:
                        raise CompileError(
                            f"instance method {name} called from static context", line
                        )
                    self._emit("LOAD", self._scope.lookup("this"), line=line)
                    for arg in expr.args:
                        self.compile_expr(arg, want=True)
                    self._emit("CALL_VIRTUAL", name, argc, line=line)
                if not want:
                    self._emit("POP", line=line)
                return
            cls = cls.superclass
        # 2. builtin
        if name in BUILTINS:
            expected = BUILTINS[name]
            if argc != expected:
                raise CompileError(
                    f"builtin {name} expects {expected} args, got {argc}", line
                )
            for arg in expr.args:
                self.compile_expr(arg, want=True)
            self._emit("BUILTIN", name, argc, line=line)
            if not want:
                self._emit("POP", line=line)
            return
        raise CompileError(f"unknown function {name!r}", line)

    def _compile_super_call(self, expr: ast.SuperCall, want: bool) -> None:
        line = expr.line
        if self._method.is_static:
            raise CompileError("'super' in static context", line)
        if self._cls.superclass is None:
            raise CompileError(f"class {self._cls.name} has no superclass", line)
        self._emit("LOAD", self._scope.lookup("this"), line=line)
        for arg in expr.args:
            self.compile_expr(arg, want=True)
        self._emit(
            "CALL_SUPER", self._cls.superclass.name, expr.name, len(expr.args), line=line
        )
        if not want:
            self._emit("POP", line=line)

    def _compile_new_object(self, expr: ast.NewObject, want: bool) -> None:
        line = expr.line
        if expr.type_name not in self._program.classes:
            raise CompileError(f"unknown class {expr.type_name}", line)
        self._emit("NEW", expr.type_name, line=line)
        self._emit("DUP", line=line)
        for arg in expr.args:
            self.compile_expr(arg, want=True)
        self._emit("CALL_CTOR", expr.type_name, len(expr.args), line=line)
        if not want:
            self._emit("POP", line=line)

    # -- operators ----------------------------------------------------------------

    def _compile_unary(self, expr: ast.Unary, want: bool) -> None:
        assert expr.operand is not None
        self.compile_expr(expr.operand, want=True)
        op = {"-": "NEG", "!": "NOT", "~": "BNOT"}[expr.op]
        self._emit(op, line=expr.line)
        if not want:
            self._emit("POP", line=expr.line)

    def _compile_binary(self, expr: ast.Binary, want: bool) -> None:
        assert expr.left is not None and expr.right is not None
        line = expr.line
        if expr.op == "&&":
            self.compile_expr(expr.left, want=True)
            jmp_false = self._emit_jump("JMP_FALSE", line=line)
            self.compile_expr(expr.right, want=True)
            jmp_end = self._emit_jump("JUMP", line=line)
            self._patch(jmp_false)
            self._emit("CONST_BOOL", False, line=line)
            self._patch(jmp_end)
        elif expr.op == "||":
            self.compile_expr(expr.left, want=True)
            jmp_true = self._emit_jump("JMP_TRUE", line=line)
            self.compile_expr(expr.right, want=True)
            jmp_end = self._emit_jump("JUMP", line=line)
            self._patch(jmp_true)
            self._emit("CONST_BOOL", True, line=line)
            self._patch(jmp_end)
        else:
            self.compile_expr(expr.left, want=True)
            self.compile_expr(expr.right, want=True)
            self._emit(_BINARY_TO_OP[expr.op], line=line)
        if not want:
            self._emit("POP", line=line)

    def _compile_conditional(self, expr: ast.Conditional, want: bool) -> None:
        assert expr.cond is not None and expr.then is not None and expr.otherwise is not None
        line = expr.line
        self.compile_expr(expr.cond, want=True)
        jmp_else = self._emit_jump("JMP_FALSE", line=line)
        self.compile_expr(expr.then, want=want)
        jmp_end = self._emit_jump("JUMP", line=line)
        self._patch(jmp_else)
        self.compile_expr(expr.otherwise, want=want)
        self._patch(jmp_end)

    def _compile_cast(self, expr: ast.Cast, want: bool) -> None:
        assert expr.operand is not None
        line = expr.line
        self.compile_expr(expr.operand, want=True)
        target = expr.target
        if target.dims == 0 and target.name == "int":
            self._emit("D2I", line=line)
        elif target.dims == 0 and target.name == "double":
            self._emit("I2D", line=line)
        elif target.dims == 0 and target.name == "boolean":
            pass  # no-op cast
        else:
            self._emit("CHECKCAST", str(target), line=line)
        if not want:
            self._emit("POP", line=line)

    # -- assignment -----------------------------------------------------------------

    def _compile_assign(self, expr: ast.Assign, want: bool) -> None:
        target = expr.target
        value = expr.value
        assert target is not None and value is not None
        line = expr.line
        compound = _COMPOUND_TO_OP.get(expr.op)

        if isinstance(target, ast.Name):
            self._compile_assign_name(target, value, compound, want, line)
        elif isinstance(target, ast.FieldAccess):
            self._compile_assign_field(target, value, compound, want, line)
        elif isinstance(target, ast.IndexExpr):
            self._compile_assign_index(target, value, compound, want, line)
        else:
            raise CompileError("invalid assignment target", line)

    def _compile_assign_name(
        self,
        target: ast.Name,
        value: ast.Expr,
        compound: Optional[str],
        want: bool,
        line: int,
    ) -> None:
        name = target.ident
        slot = self._scope.lookup(name)
        if slot is not None:
            if compound:
                self._emit("LOAD", slot, line=line)
                self.compile_expr(value, want=True)
                self._emit(compound, line=line)
            else:
                self.compile_expr(value, want=True)
            if want:
                self._emit("DUP", line=line)
            self._emit("STORE", slot, line=line)
            return
        if not self._method.is_static and self._cls.find_field(name, static=False):
            this_slot = self._scope.lookup("this")
            self._emit("LOAD", this_slot, line=line)
            if compound:
                self._emit("DUP", line=line)
                self._emit("GETFIELD", name, line=line)
                self.compile_expr(value, want=True)
                self._emit(compound, line=line)
            else:
                self.compile_expr(value, want=True)
            if want:
                self._emit("DUP_X1", line=line)
            self._emit("PUTFIELD", name, line=line)
            return
        static_field = self._cls.find_field(name, static=True)
        if static_field is not None:
            owner = static_field.declared_in
            if compound:
                self._emit("GETSTATIC", owner, name, line=line)
                self.compile_expr(value, want=True)
                self._emit(compound, line=line)
            else:
                self.compile_expr(value, want=True)
            if want:
                self._emit("DUP", line=line)
            self._emit("PUTSTATIC", owner, name, line=line)
            return
        raise CompileError(f"unknown assignment target {name!r}", line)

    def _compile_assign_field(
        self,
        target: ast.FieldAccess,
        value: ast.Expr,
        compound: Optional[str],
        want: bool,
        line: int,
    ) -> None:
        obj = target.obj
        assert obj is not None
        # Static "ClassName.field = ..." (unless shadowed).
        if isinstance(obj, ast.Name) and self._scope.lookup(obj.ident) is None:
            if self._is_class_name(obj.ident):
                field = self._resolve_static_field(obj.ident, target.name)
                if field is None:
                    raise CompileError(
                        f"unknown static field {obj.ident}.{target.name}", line
                    )
                owner = field.declared_in
                if compound:
                    self._emit("GETSTATIC", owner, target.name, line=line)
                    self.compile_expr(value, want=True)
                    self._emit(compound, line=line)
                else:
                    self.compile_expr(value, want=True)
                if want:
                    self._emit("DUP", line=line)
                self._emit("PUTSTATIC", owner, target.name, line=line)
                return
        self.compile_expr(obj, want=True)
        if compound:
            self._emit("DUP", line=line)
            self._emit("GETFIELD", target.name, line=line)
            self.compile_expr(value, want=True)
            self._emit(compound, line=line)
        else:
            self.compile_expr(value, want=True)
        if want:
            self._emit("DUP_X1", line=line)
        self._emit("PUTFIELD", target.name, line=line)

    def _compile_assign_index(
        self,
        target: ast.IndexExpr,
        value: ast.Expr,
        compound: Optional[str],
        want: bool,
        line: int,
    ) -> None:
        assert target.array is not None and target.index is not None
        self.compile_expr(target.array, want=True)
        self.compile_expr(target.index, want=True)
        if compound:
            self._emit("DUP2", line=line)
            self._emit("ALOAD", line=line)
            self.compile_expr(value, want=True)
            self._emit(compound, line=line)
        else:
            self.compile_expr(value, want=True)
        if want:
            self._emit("DUP_X2", line=line)
        self._emit("ASTORE", line=line)

    # -- increment/decrement ------------------------------------------------------

    def _compile_incdec(self, expr: ast.IncDec, want: bool) -> None:
        target = expr.target
        assert target is not None
        line = expr.line
        op = "ADD" if expr.op == "++" else "SUB"

        if not want:
            # Lower to a compound assignment statement.
            compound = "+=" if expr.op == "++" else "-="
            assign = ast.Assign(
                target=target, op=compound, value=ast.IntLit(value=1, line=line), line=line
            )
            self._compile_assign(assign, want=False)
            return

        if isinstance(target, ast.Name):
            slot = self._scope.lookup(target.ident)
            if slot is not None:
                if expr.prefix:
                    self._emit("LOAD", slot, line=line)
                    self._emit("CONST_INT", 1, line=line)
                    self._emit(op, line=line)
                    self._emit("DUP", line=line)
                    self._emit("STORE", slot, line=line)
                else:
                    self._emit("LOAD", slot, line=line)
                    self._emit("DUP", line=line)
                    self._emit("CONST_INT", 1, line=line)
                    self._emit(op, line=line)
                    self._emit("STORE", slot, line=line)
                return
        # Fields/arrays/statics: value-producing form via general juggling.
        self._compile_incdec_lvalue(target, op, expr.prefix, line)

    def _compile_incdec_lvalue(
        self, target: ast.Expr, op: str, prefix: bool, line: int
    ) -> None:
        if isinstance(target, ast.Name):
            # Field of `this` or a static (locals handled by caller).
            name = target.ident
            if not self._method.is_static and self._cls.find_field(name, static=False):
                target = ast.FieldAccess(obj=ast.ThisExpr(line=line), name=name, line=line)
            else:
                static_field = self._cls.find_field(name, static=True)
                if static_field is None:
                    raise CompileError(f"unknown ++/-- target {name!r}", line)
                owner = static_field.declared_in
                self._emit("GETSTATIC", owner, name, line=line)
                if not prefix:
                    self._emit("DUP", line=line)
                self._emit("CONST_INT", 1, line=line)
                self._emit(op, line=line)
                if prefix:
                    self._emit("DUP", line=line)
                self._emit("PUTSTATIC", owner, name, line=line)
                return
        if isinstance(target, ast.FieldAccess):
            assert target.obj is not None
            self.compile_expr(target.obj, want=True)
            self._emit("DUP", line=line)
            self._emit("GETFIELD", target.name, line=line)  # obj val
            if not prefix:
                self._emit("DUP_X1", line=line)  # val obj val
            self._emit("CONST_INT", 1, line=line)
            self._emit(op, line=line)  # [val] obj val'
            if prefix:
                self._emit("DUP_X1", line=line)  # val' obj val'
            self._emit("PUTFIELD", target.name, line=line)
            return
        if isinstance(target, ast.IndexExpr):
            assert target.array is not None and target.index is not None
            self.compile_expr(target.array, want=True)
            self.compile_expr(target.index, want=True)
            self._emit("DUP2", line=line)
            self._emit("ALOAD", line=line)  # a i v
            if not prefix:
                self._emit("DUP_X2", line=line)  # v a i v
            self._emit("CONST_INT", 1, line=line)
            self._emit(op, line=line)
            if prefix:
                self._emit("DUP_X2", line=line)
            self._emit("ASTORE", line=line)
            return
        raise CompileError("invalid ++/-- target", line)


def compile_method_body(
    program: Program,
    cls: ClassInfo,
    method: CompiledMethod,
    decl_params: List[ast.Param],
    body_parts: List[ast.Stmt],
) -> None:
    """Compile statements into ``method.code`` (shared by methods & clinits)."""
    compiler = MethodCompiler(program, cls, method)
    compiler.declare_params(decl_params)
    for part in body_parts:
        compiler.compile_stmt(part)
    compiler.finish()
