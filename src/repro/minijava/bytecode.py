"""Stack bytecode for MiniJava.

The bytecode plays the role of Graal IR in the reproduction: the front-end
lowers MiniJava methods into this representation; the simulated Graal
mid-end (:mod:`repro.graal`) analyzes it for reachability and inlining; the
tracing profiler (:mod:`repro.profiling`) builds CFGs and Ball–Larus path
numbers over it; and the step interpreter (:mod:`repro.vm`) executes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# ---------------------------------------------------------------------------
# Opcodes
# ---------------------------------------------------------------------------

#: All opcodes with the simulated machine-code size (in bytes) each one
#: contributes to its compilation unit.  The sizes are loosely modeled on
#: x86-64 instruction sequences Graal would emit; what matters for the
#: reproduction is only that they are stable and roughly proportional.
OPCODE_SIZES: Dict[str, int] = {
    "CONST_INT": 5,
    "CONST_DOUBLE": 8,
    "CONST_BOOL": 3,
    "CONST_NULL": 3,
    "CONST_STR": 7,
    "CONST_OBJ": 7,
    "LOAD": 3,
    "STORE": 3,
    "GETFIELD": 6,
    "PUTFIELD": 6,
    "GETSTATIC": 7,
    "PUTSTATIC": 7,
    "NEWARRAY": 12,
    "ALOAD": 6,
    "ASTORE": 6,
    "ARRAYLEN": 4,
    "NEW": 14,
    "CALL_CTOR": 10,
    "CALL_STATIC": 8,
    "CALL_VIRTUAL": 12,
    "CALL_SUPER": 8,
    "BUILTIN": 10,
    "RET_VAL": 4,
    "RET_VOID": 3,
    "ADD": 3,
    "SUB": 3,
    "MUL": 4,
    "DIV": 8,
    "MOD": 8,
    "NEG": 3,
    "BAND": 3,
    "BOR": 3,
    "BXOR": 3,
    "SHL": 4,
    "SHR": 4,
    "BNOT": 3,
    "NOT": 4,
    "EQ": 5,
    "NE": 5,
    "LT": 5,
    "LE": 5,
    "GT": 5,
    "GE": 5,
    "I2D": 4,
    "D2I": 4,
    "STR_CONCAT": 10,
    "INSTANCEOF": 8,
    "CHECKCAST": 8,
    "JUMP": 5,
    "JMP_FALSE": 6,
    "JMP_TRUE": 6,
    "DUP": 2,
    "DUP2": 2,
    "DUP_X1": 2,
    "DUP_X2": 2,
    "POP": 2,
}

#: Opcodes that transfer control; these terminate basic blocks.
BRANCH_OPS = frozenset({"JUMP", "JMP_FALSE", "JMP_TRUE"})
RETURN_OPS = frozenset({"RET_VAL", "RET_VOID"})
CALL_OPS = frozenset({"CALL_CTOR", "CALL_STATIC", "CALL_VIRTUAL", "CALL_SUPER"})
#: Opcodes whose execution touches an image-heap object at runtime.
HEAP_ACCESS_OPS = frozenset(
    {"GETFIELD", "PUTFIELD", "ALOAD", "ASTORE", "GETSTATIC", "PUTSTATIC"}
)


@dataclass
class Instr:
    """One bytecode instruction: an opcode plus immediate arguments."""

    op: str
    args: Tuple = ()
    line: int = 0

    @property
    def size(self) -> int:
        """Simulated machine-code size of the instruction, in bytes."""
        return OPCODE_SIZES[self.op]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args = " ".join(str(a) for a in self.args)
        return f"{self.op} {args}".strip()


@dataclass
class CompiledMethod:
    """A MiniJava method lowered to bytecode."""

    owner: str
    name: str
    param_types: List[str]
    is_static: bool
    is_ctor: bool
    returns_value: bool
    num_slots: int
    code: List[Instr] = field(default_factory=list)
    line: int = 0

    @property
    def signature(self) -> str:
        """Stable signature used to match methods across builds."""
        return f"{self.owner}.{self.name}({','.join(self.param_types)})"

    @property
    def num_params(self) -> int:
        """Parameter count including the implicit receiver slot."""
        return len(self.param_types) + (0 if self.is_static else 1)

    def code_size(self) -> int:
        """Simulated machine-code size of the body, in bytes."""
        return sum(instr.size for instr in self.code)

    def called_signatures(self) -> List[Tuple[str, str, str]]:
        """Call sites as ``(kind, class_or_empty, method_name)`` triples."""
        sites: List[Tuple[str, str, str]] = []
        for instr in self.code:
            if instr.op == "CALL_STATIC":
                sites.append(("static", instr.args[0], instr.args[1]))
            elif instr.op == "CALL_VIRTUAL":
                sites.append(("virtual", "", instr.args[0]))
            elif instr.op == "CALL_SUPER":
                sites.append(("super", instr.args[0], instr.args[1]))
            elif instr.op == "CALL_CTOR":
                sites.append(("ctor", instr.args[0], "<init>"))
        return sites

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompiledMethod {self.signature} ({len(self.code)} instrs)>"


@dataclass
class FieldInfo:
    """A declared field (instance or static)."""

    name: str
    type_name: str
    is_static: bool
    is_final: bool
    declared_in: str = ""

    @property
    def signature(self) -> str:
        return f"{self.declared_in}.{self.name}"

    def default_value(self):
        """The Java default value for this field's declared type."""
        if self.type_name == "int":
            return 0
        if self.type_name == "double":
            return 0.0
        if self.type_name == "boolean":
            return False
        return None


class ClassInfo:
    """A compiled MiniJava class: fields, methods, and hierarchy links."""

    def __init__(self, name: str, superclass_name: Optional[str]) -> None:
        self.name = name
        self.superclass_name = superclass_name
        self.superclass: Optional["ClassInfo"] = None  # linked after all classes load
        self.instance_fields: List[FieldInfo] = []
        self.static_fields: List[FieldInfo] = []
        self.methods: Dict[str, CompiledMethod] = {}
        self.clinit: Optional[CompiledMethod] = None
        self.line = 0

    # -- hierarchy helpers --------------------------------------------------

    def mro(self) -> List["ClassInfo"]:
        """The class and its superclasses, most-derived first."""
        chain: List[ClassInfo] = []
        cls: Optional[ClassInfo] = self
        while cls is not None:
            chain.append(cls)
            cls = cls.superclass
        return chain

    def all_instance_fields(self) -> List[FieldInfo]:
        """Instance fields in layout order: superclass fields first."""
        fields: List[FieldInfo] = []
        for cls in reversed(self.mro()):
            fields.extend(cls.instance_fields)
        return fields

    def lookup_method(self, name: str) -> Optional[CompiledMethod]:
        """Virtual method lookup along the superclass chain."""
        for cls in self.mro():
            method = cls.methods.get(name)
            if method is not None:
                return method
        return None

    def find_field(self, name: str, static: bool) -> Optional[FieldInfo]:
        """Find a field (by kind) along the superclass chain."""
        for cls in self.mro():
            pool = cls.static_fields if static else cls.instance_fields
            for field_info in pool:
                if field_info.name == name:
                    return field_info
        return None

    def is_subclass_of(self, other_name: str) -> bool:
        return any(cls.name == other_name for cls in self.mro())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClassInfo {self.name}>"


class Program:
    """A fully compiled MiniJava program.

    This is the input to the simulated Native-Image build: classes, bytecode
    methods, and the string-literal table (literal strings become interned
    String objects in the image heap).
    """

    def __init__(self) -> None:
        self.classes: Dict[str, ClassInfo] = {}
        self.string_literals: List[str] = []
        self._string_ids: Dict[str, int] = {}
        self.main_class = "Main"

    def add_class(self, cls: ClassInfo) -> None:
        if cls.name in self.classes:
            raise ValueError(f"duplicate class {cls.name}")
        self.classes[cls.name] = cls

    def link(self) -> None:
        """Resolve superclass references; call after all classes are added."""
        for cls in self.classes.values():
            if cls.superclass_name is not None:
                parent = self.classes.get(cls.superclass_name)
                if parent is None:
                    raise ValueError(
                        f"class {cls.name} extends unknown class {cls.superclass_name}"
                    )
                cls.superclass = parent
        # Reject inheritance cycles.
        for cls in self.classes.values():
            seen = set()
            node: Optional[ClassInfo] = cls
            while node is not None:
                if node.name in seen:
                    raise ValueError(f"inheritance cycle through {node.name}")
                seen.add(node.name)
                node = node.superclass

    def intern_string(self, value: str) -> int:
        """Return the literal table index for ``value``, interning it."""
        if value in self._string_ids:
            return self._string_ids[value]
        index = len(self.string_literals)
        self.string_literals.append(value)
        self._string_ids[value] = index
        return index

    def get_class(self, name: str) -> ClassInfo:
        cls = self.classes.get(name)
        if cls is None:
            raise KeyError(f"unknown class {name}")
        return cls

    def entry_method(self) -> CompiledMethod:
        """The program entry point ``Main.main``."""
        main_cls = self.get_class(self.main_class)
        method = main_cls.methods.get("main")
        if method is None or not method.is_static:
            raise ValueError(f"{self.main_class}.main must be a static method")
        return method

    def all_methods(self) -> List[CompiledMethod]:
        """All methods (incl. clinits), in deterministic order."""
        methods: List[CompiledMethod] = []
        for name in sorted(self.classes):
            cls = self.classes[name]
            for method_name in sorted(cls.methods):
                methods.append(cls.methods[method_name])
            if cls.clinit is not None:
                methods.append(cls.clinit)
        return methods

    def method_by_signature(self, signature: str) -> Optional[CompiledMethod]:
        for method in self.all_methods():
            if method.signature == signature:
                return method
        return None
