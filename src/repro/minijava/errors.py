"""Error types raised by the MiniJava front-end and toolchain."""

from __future__ import annotations


class MiniJavaError(Exception):
    """Base class for all MiniJava front-end errors."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.line = line
        self.col = col
        if line:
            message = f"{line}:{col}: {message}"
        super().__init__(message)


class LexError(MiniJavaError):
    """Raised when the lexer encounters an invalid character or literal."""


class ParseError(MiniJavaError):
    """Raised when the parser encounters an unexpected token."""


class SemanticError(MiniJavaError):
    """Raised by semantic analysis (unknown names, duplicate members, ...)."""


class CompileError(MiniJavaError):
    """Raised by the bytecode compiler for constructs it cannot lower."""
