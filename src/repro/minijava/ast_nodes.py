"""AST node definitions for MiniJava.

Nodes are plain dataclasses.  Every node carries a ``line`` for diagnostics.
The tree is produced by :mod:`repro.minijava.parser`, resolved by
:mod:`repro.minijava.analysis`, and lowered to stack bytecode by
:mod:`repro.minijava.codegen`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class TypeRef:
    """A source-level type: a base name plus an array dimension count."""

    name: str  # "int", "double", "boolean", "String", "void", or a class name
    dims: int = 0

    @property
    def is_array(self) -> bool:
        return self.dims > 0

    @property
    def is_primitive(self) -> bool:
        return self.dims == 0 and self.name in ("int", "double", "boolean")

    def element(self) -> "TypeRef":
        if self.dims == 0:
            raise ValueError("not an array type")
        return TypeRef(self.name, self.dims - 1)

    def __str__(self) -> str:
        return self.name + "[]" * self.dims


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class DoubleLit(Expr):
    value: float = 0.0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class NullLit(Expr):
    pass


@dataclass
class Name(Expr):
    """An identifier: a local, a field of ``this``, or a class reference."""

    ident: str = ""


@dataclass
class ThisExpr(Expr):
    pass


@dataclass
class FieldAccess(Expr):
    obj: Optional[Expr] = None
    name: str = ""


@dataclass
class IndexExpr(Expr):
    array: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Call(Expr):
    """A method call.

    ``receiver`` is ``None`` for unqualified calls (resolved to a builtin, a
    static/instance method of the enclosing class); a :class:`Name` receiver
    may denote a class (static call) or a value (virtual call) — resolution
    happens in semantic analysis and is recorded in ``kind``.
    """

    receiver: Optional[Expr] = None
    name: str = ""
    args: List[Expr] = field(default_factory=list)
    # Filled by analysis: "builtin", "static", "virtual", "super", "local-virtual"
    kind: str = ""
    target_class: str = ""


@dataclass
class SuperCall(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class NewObject(Expr):
    type_name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class NewArray(Expr):
    elem_type: TypeRef = field(default_factory=lambda: TypeRef("int"))
    length: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Conditional(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    otherwise: Optional[Expr] = None


@dataclass
class Cast(Expr):
    target: TypeRef = field(default_factory=lambda: TypeRef("int"))
    operand: Optional[Expr] = None


@dataclass
class InstanceOf(Expr):
    operand: Optional[Expr] = None
    type_name: str = ""


@dataclass
class Assign(Expr):
    """Assignment expression: ``target op value`` where op may be compound."""

    target: Optional[Expr] = None  # Name, FieldAccess, or IndexExpr
    op: str = "="  # "=", "+=", "-=", ...
    value: Optional[Expr] = None


@dataclass
class IncDec(Expr):
    """Prefix or postfix ``++``/``--`` on an lvalue."""

    target: Optional[Expr] = None
    op: str = "++"
    prefix: bool = False


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    type: TypeRef = field(default_factory=lambda: TypeRef("int"))
    name: str = ""
    init: Optional[Expr] = None
    slot: int = -1  # assigned by analysis


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    update: List[Expr] = field(default_factory=list)
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------


@dataclass
class Param:
    type: TypeRef
    name: str
    line: int = 0


@dataclass
class FieldDecl:
    name: str
    type: TypeRef
    is_static: bool = False
    is_final: bool = False
    init: Optional[Expr] = None
    line: int = 0


@dataclass
class MethodDecl:
    name: str
    params: List[Param]
    return_type: TypeRef
    body: Optional[Block]
    is_static: bool = False
    is_ctor: bool = False
    line: int = 0
    # Filled by analysis:
    owner: str = ""
    num_slots: int = 0

    @property
    def signature(self) -> str:
        """Stable, human-readable signature used across builds for matching."""
        params = ",".join(str(p.type) for p in self.params)
        return f"{self.owner}.{self.name}({params})"


@dataclass
class StaticInit:
    body: Block
    line: int = 0


@dataclass
class ClassDecl:
    name: str
    superclass: Optional[str]
    fields: List[FieldDecl] = field(default_factory=list)
    methods: List[MethodDecl] = field(default_factory=list)
    static_inits: List[StaticInit] = field(default_factory=list)
    line: int = 0


@dataclass
class CompilationUnitAst:
    """A parsed source file: a list of class declarations."""

    classes: List[ClassDecl] = field(default_factory=list)
