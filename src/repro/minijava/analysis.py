"""Semantic analysis for MiniJava.

Builds the class table (:class:`~repro.minijava.bytecode.ClassInfo` skeletons)
from the parsed AST and performs structural checks: duplicate members, single
constructor per class, known superclasses, acyclic inheritance, and reserved
names.  Name resolution inside method bodies happens during bytecode
generation (:mod:`repro.minijava.codegen`), which owns lexical scoping.
"""

from __future__ import annotations

from typing import Dict, List

from . import ast_nodes as ast
from .bytecode import ClassInfo, FieldInfo, Program
from .errors import SemanticError

#: Names that cannot be used as class names (primitives and `void`).
RESERVED_TYPE_NAMES = frozenset({"int", "double", "boolean", "String", "void"})

#: Builtin functions callable without a receiver, mapped to their arity.
BUILTINS: Dict[str, int] = {
    "println": 1,
    "print": 1,
    "sqrt": 1,
    "pow": 2,
    "abs": 1,
    "floor": 1,
    "ceil": 1,
    "min": 2,
    "max": 2,
    "intOf": 1,
    "doubleOf": 1,
    "spawn": 2,
    "respond": 1,
    "resource": 2,
    "yieldThread": 0,
}


class ClassTableBuilder:
    """Builds and validates the class table for a parsed program."""

    def __init__(self, unit: ast.CompilationUnitAst) -> None:
        self._unit = unit

    def build(self, program: Program) -> Dict[str, ast.ClassDecl]:
        """Populate ``program`` with class skeletons; return AST decls by name."""
        decls: Dict[str, ast.ClassDecl] = {}
        for decl in self._unit.classes:
            self._check_class(decl)
            if decl.name in decls:
                raise SemanticError(f"duplicate class {decl.name}", decl.line)
            decls[decl.name] = decl
            program.add_class(self._build_skeleton(decl))
        program.link()
        return decls

    def _check_class(self, decl: ast.ClassDecl) -> None:
        if decl.name in RESERVED_TYPE_NAMES:
            raise SemanticError(f"class name {decl.name!r} is reserved", decl.line)
        seen_fields: Dict[str, int] = {}
        for field_decl in decl.fields:
            key = field_decl.name
            if key in seen_fields:
                raise SemanticError(
                    f"duplicate field {decl.name}.{field_decl.name}", field_decl.line
                )
            seen_fields[key] = field_decl.line
        seen_methods: Dict[str, int] = {}
        ctor_count = 0
        for method in decl.methods:
            if method.is_ctor:
                ctor_count += 1
                if ctor_count > 1:
                    raise SemanticError(
                        f"class {decl.name} declares more than one constructor "
                        "(MiniJava allows a single constructor per class)",
                        method.line,
                    )
                continue
            if method.name in seen_methods:
                raise SemanticError(
                    f"duplicate method {decl.name}.{method.name} "
                    "(MiniJava has no overloading)",
                    method.line,
                )
            seen_methods[method.name] = method.line
            if method.name in BUILTINS and method.is_static:
                # Allowed, but class methods shadow builtins; nothing to do.
                pass
        for method in decl.methods:
            method.owner = decl.name
            self._check_params(method)

    def _check_params(self, method: ast.MethodDecl) -> None:
        seen: set = set()
        for param in method.params:
            if param.name in seen:
                raise SemanticError(
                    f"duplicate parameter {param.name} in {method.owner}.{method.name}",
                    param.line,
                )
            seen.add(param.name)

    def _build_skeleton(self, decl: ast.ClassDecl) -> ClassInfo:
        cls = ClassInfo(decl.name, decl.superclass)
        cls.line = decl.line
        for field_decl in decl.fields:
            info = FieldInfo(
                name=field_decl.name,
                type_name=str(field_decl.type),
                is_static=field_decl.is_static,
                is_final=field_decl.is_final,
                declared_in=decl.name,
            )
            if field_decl.is_static:
                cls.static_fields.append(info)
            else:
                cls.instance_fields.append(info)
        return cls


def validate_loop_control(unit: ast.CompilationUnitAst) -> None:
    """Reject ``break``/``continue`` outside loops (cheap recursive walk)."""

    def walk(stmt: ast.Stmt, in_loop: bool, where: str) -> None:
        if isinstance(stmt, (ast.Break, ast.Continue)) and not in_loop:
            kind = "break" if isinstance(stmt, ast.Break) else "continue"
            raise SemanticError(f"{kind} outside loop in {where}", stmt.line)
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                walk(inner, in_loop, where)
        elif isinstance(stmt, ast.If):
            if stmt.then:
                walk(stmt.then, in_loop, where)
            if stmt.otherwise:
                walk(stmt.otherwise, in_loop, where)
        elif isinstance(stmt, (ast.While, ast.For)):
            body = stmt.body
            if body:
                walk(body, True, where)

    for decl in unit.classes:
        for method in decl.methods:
            if method.body is not None:
                walk(method.body, False, f"{decl.name}.{method.name}")
        for static_init in decl.static_inits:
            walk(static_init.body, False, f"{decl.name}.<clinit>")


def collect_builtin_uses(unit: ast.CompilationUnitAst) -> List[str]:
    """Best-effort list of builtin names referenced by the program (for tests)."""
    used: List[str] = []

    def walk_expr(expr) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Call):
            if expr.receiver is None and expr.name in BUILTINS:
                used.append(expr.name)
            walk_expr(expr.receiver)
            for arg in expr.args:
                walk_expr(arg)
            return
        for attr in ("obj", "array", "index", "operand", "left", "right", "value",
                     "target", "cond", "then", "otherwise", "length"):
            child = getattr(expr, attr, None)
            if isinstance(child, ast.Expr):
                walk_expr(child)
        for attr in ("args",):
            children = getattr(expr, attr, None)
            if isinstance(children, list):
                for child in children:
                    walk_expr(child)

    def walk_stmt(stmt) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                walk_stmt(inner)
        elif isinstance(stmt, ast.VarDecl):
            walk_expr(stmt.init)
        elif isinstance(stmt, ast.ExprStmt):
            walk_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            walk_expr(stmt.cond)
            walk_stmt(stmt.then)
            walk_stmt(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            walk_expr(stmt.cond)
            walk_stmt(stmt.body)
        elif isinstance(stmt, ast.For):
            walk_stmt(stmt.init)
            walk_expr(stmt.cond)
            for upd in stmt.update:
                walk_expr(upd)
            walk_stmt(stmt.body)
        elif isinstance(stmt, ast.Return):
            walk_expr(stmt.value)

    for decl in unit.classes:
        for method in decl.methods:
            walk_stmt(method.body)
        for static_init in decl.static_inits:
            walk_stmt(static_init.body)
        for field_decl in decl.fields:
            walk_expr(field_decl.init)
    return used
